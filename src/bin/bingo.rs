//! `bingo` — command-line front end to the focused crawler.
//!
//! ```text
//! bingo crawl  --out crawl.jsonl --engine engine.json [--seed N] [--authors N]
//!              [--budget-secs N] [--topic NAME]
//! bingo resume --out crawl.jsonl --engine engine.json [--budget-secs N] [--seed N]
//! bingo search --out crawl.jsonl --engine engine.json --query "..." [--topic-id N]
//!              [--rank cosine|confidence|authority|combined] [--top N]
//! bingo suggest --out crawl.jsonl --engine engine.json --topic-id N
//! ```
//!
//! `crawl` builds a portal world, trains from the top-2 author homepages,
//! runs a two-phase focused crawl, and writes both the crawl database and
//! the trained engine to disk. `resume` continues a saved crawl.
//! `search` and `suggest` postprocess a saved crawl offline.

use bingo::core::persist as engine_persist;
use bingo::graph::LinkSource;
use bingo::prelude::*;
use bingo::search::suggest_subclasses;
use bingo::store::persist as store_persist;
use bingo::webworld::fetch::host_of_url;
use std::sync::Arc;

fn arg(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn arg_or(flag: &str, default: &str) -> String {
    arg(flag).unwrap_or_else(|| default.to_string())
}

fn usage() -> ! {
    eprintln!(
        "usage: bingo <crawl|resume|search|suggest> --out <crawl.jsonl> --engine <engine.json> [options]\n\
         \n\
         crawl   --seed N --authors N --budget-secs N --topic NAME\n\
         resume  --budget-secs N --seed N\n\
         search  --query \"...\" [--topic-id N] [--rank cosine|confidence|authority|combined] [--top N]\n\
         suggest --topic-id N"
    );
    std::process::exit(2);
}

/// Rebuild the deterministic world a saved crawl ran against.
fn world_for(seed: u64, authors: usize) -> Arc<World> {
    Arc::new(WorldConfig::portal(seed, authors, 2).build())
}

/// Unwrap a fallible load/save, or exit with a clean one-line error —
/// a corrupt or missing database is an operator problem, not a crash.
fn or_exit<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {what}: {e}");
        std::process::exit(1);
    })
}

fn cmd_crawl() {
    let out = arg_or("--out", "crawl.jsonl");
    let engine_path = arg_or("--engine", "engine.json");
    let seed: u64 = arg_or("--seed", "2003").parse().expect("--seed");
    let authors: usize = arg_or("--authors", "1000").parse().expect("--authors");
    let budget_ms: u64 = arg_or("--budget-secs", "600")
        .parse::<u64>()
        .expect("--budget-secs")
        * 1000;
    let topic_name = arg_or("--topic", "database research");

    eprintln!("building world (seed {seed}, {authors} authors)...");
    let world = world_for(seed, authors);
    eprintln!(
        "world: {} pages on {} hosts",
        world.page_count(),
        world.host_count()
    );

    let mut engine = BingoEngine::new(EngineConfig {
        archetype_threshold: false,
        ..EngineConfig::default()
    });
    let topic = engine.add_topic(TopicTree::ROOT, &topic_name);
    let seeds: Vec<String> = world.authors()[..2]
        .iter()
        .map(|a| world.url_of(a.homepage))
        .collect();
    for url in &seeds {
        engine.add_training_url(&world, topic, url).expect("seed");
        eprintln!("seed: {url}");
    }
    let mut added = 0;
    for id in 0..world.page_count() as u64 {
        if matches!(world.true_topic(id), Some(3) | Some(4) | Some(5) | Some(6)) {
            if engine.add_others_url(&world, &world.url_of(id)).is_ok() {
                added += 1;
            }
            if added >= 50 {
                break;
            }
        }
    }
    engine.train().expect("training");

    let seed_hosts = seeds
        .iter()
        .map(|u| host_of_url(u).unwrap().to_string())
        .collect();
    let mut crawler = Crawler::new(
        world.clone(),
        CrawlConfig {
            allowed_hosts: Some(seed_hosts),
            ..CrawlConfig::default()
        },
        DocumentStore::new(),
    );
    for url in &seeds {
        crawler.add_seed(url, Some(topic.0));
    }
    eprintln!("learning phase...");
    engine.crawl_until(&mut crawler, budget_ms / 5, 0);
    engine.retrain(&mut crawler);
    eprintln!("harvesting...");
    engine.switch_to_harvesting(&mut crawler);
    engine.crawl_until(&mut crawler, budget_ms, 400);

    let stats = crawler.stats();
    eprintln!(
        "done: {} visited, {} stored, {} positively classified, {} hosts",
        stats.visited_urls, stats.stored_pages, stats.positively_classified, stats.visited_hosts
    );
    or_exit(
        store_persist::save(crawler.store(), &out),
        "cannot write crawl db",
    );
    or_exit(
        engine_persist::save_engine_to(&engine, &engine_path),
        "cannot write engine",
    );
    eprintln!("crawl database: {out}\nengine: {engine_path}");
    eprintln!("topic id for --topic-id: {}", topic.0);
}

fn cmd_resume() {
    let out = arg_or("--out", "crawl.jsonl");
    let engine_path = arg_or("--engine", "engine.json");
    let seed: u64 = arg_or("--seed", "2003").parse().expect("--seed");
    let authors: usize = arg_or("--authors", "1000").parse().expect("--authors");
    let extra_ms: u64 = arg_or("--budget-secs", "300")
        .parse::<u64>()
        .expect("--budget-secs")
        * 1000;

    let world = world_for(seed, authors);
    let store = or_exit(store_persist::load(&out), "cannot read crawl db");
    let mut engine = or_exit(
        engine_persist::load_engine_from(&engine_path),
        "cannot read engine",
    );
    eprintln!(
        "resuming: {} documents in the database, {} topics",
        store.document_count(),
        engine.tree.len() - 1
    );

    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default().harvesting(), store);
    crawler.resume_from_store();
    // Requeue the uncrawled successors of everything stored so far.
    let mut requeued = 0;
    for row in crawler.store().all_documents() {
        for succ in world.successors(row.id) {
            let url = world.url_of(succ);
            if !crawler.store().contains_url(&url) {
                crawler.boost_url(&url, row.topic, row.confidence.max(0.0));
                requeued += 1;
            }
        }
    }
    eprintln!("requeued {requeued} frontier URLs");
    let deadline = crawler.clock_ms() + extra_ms;
    engine.crawl_until(&mut crawler, deadline, 400);
    let stats = crawler.stats();
    eprintln!(
        "resumed session stored {} documents ({} total now)",
        stats.stored_pages,
        crawler.store().document_count()
    );
    or_exit(
        store_persist::save(crawler.store(), &out),
        "cannot write crawl db",
    );
    or_exit(
        engine_persist::save_engine_to(&engine, &engine_path),
        "cannot write engine",
    );
}

fn cmd_search() {
    let out = arg_or("--out", "crawl.jsonl");
    let engine_path = arg_or("--engine", "engine.json");
    let Some(query) = arg("--query") else { usage() };
    let top_k: usize = arg_or("--top", "10").parse().expect("--top");
    let ranking = match arg_or("--rank", "cosine").as_str() {
        "cosine" => RankingScheme::Cosine,
        "confidence" => RankingScheme::Confidence,
        "authority" => RankingScheme::Authority,
        "combined" => RankingScheme::Combined {
            cosine: 1.0,
            confidence: 0.5,
            authority: 0.5,
        },
        other => {
            eprintln!("unknown ranking {other}");
            usage()
        }
    };
    let filter = match arg("--topic-id") {
        Some(t) => TopicFilter::Exact(t.parse().expect("--topic-id")),
        None => TopicFilter::Any,
    };

    let store = or_exit(store_persist::load(&out), "cannot read crawl db");
    let engine = or_exit(
        engine_persist::load_engine_from(&engine_path),
        "cannot read engine",
    );
    let search = SearchEngine::build(&store);
    let hits = search.query(
        &engine.vocab,
        &query,
        &QueryOptions {
            filter,
            ranking,
            top_k,
        },
    );
    if hits.is_empty() {
        println!("no results for {query:?}");
        return;
    }
    for h in hits {
        println!("{:8.4}  {}  — {}", h.score, h.url, h.title);
    }
}

fn cmd_suggest() {
    let out = arg_or("--out", "crawl.jsonl");
    let engine_path = arg_or("--engine", "engine.json");
    let topic_id: u32 = arg_or("--topic-id", "1").parse().expect("--topic-id");
    let store = or_exit(store_persist::load(&out), "cannot read crawl db");
    let engine = or_exit(
        engine_persist::load_engine_from(&engine_path),
        "cannot read engine",
    );
    match suggest_subclasses(&store, &engine.vocab, topic_id, 2..=5, 5) {
        Some(suggestions) => {
            for (i, s) in suggestions.iter().enumerate() {
                println!(
                    "subclass {}: {} documents — suggested label: {}",
                    i + 1,
                    s.members.len(),
                    s.label.join(", ")
                );
            }
        }
        None => println!("not enough documents in topic {topic_id} for clustering"),
    }
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("crawl") => cmd_crawl(),
        Some("resume") => cmd_resume(),
        Some("search") => cmd_search(),
        Some("suggest") => cmd_suggest(),
        _ => usage(),
    }
}
