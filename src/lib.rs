//! # bingo — a reproduction of the BINGO! focused crawler (CIDR 2003)
//!
//! BINGO! ("Bookmark-Induced Gathering of Information") is a focused
//! crawler for *information portal generation* and *expert Web search*.
//! Unlike index-based search engines, it interleaves crawling, automatic
//! SVM classification into a user-provided topic tree,
//! mutual-information feature selection, HITS link analysis and
//! archetype-driven retraining, in two phases: a precision-oriented
//! *learning* phase and a recall-oriented *harvesting* phase.
//!
//! This facade crate re-exports the full workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`textproc`] | `bingo-textproc` | HTML parsing, Porter stemming, tf·idf, feature spaces, content handlers |
//! | [`ml`] | `bingo-ml` | linear SVM, ξα estimator, MI feature selection, Naive Bayes, meta classifier, k-means |
//! | [`graph`] | `bingo-graph` | link graph, HITS with Bharat-Henzinger weighting |
//! | [`store`] | `bingo-store` | embedded crawl database: flat tables, bulk loader, snapshots |
//! | [`webworld`] | `bingo-webworld` | deterministic synthetic web (the paper's live-Web substitute) |
//! | [`crawler`] | `bingo-crawler` | focused crawler: frontier, focusing rules, tunnelling, dedup, DNS, hosts |
//! | [`dist`] | `bingo-dist` | distributed crawl: coordinator/worker sharding, leased work journal, multi-node snapshots |
//! | [`core`] | `bingo-core` | the BINGO! engine: topic tree, per-topic models, archetypes, phases |
//! | [`search`] | `bingo-search` | local search engine: inverted index, ranking, feedback, clustering |
//! | [`serve`] | `bingo-serve` | portal serving: snapshot-swap live index queries during the crawl, load generation |
//!
//! See `examples/quickstart.rs` for an end-to-end portal crawl and
//! `DESIGN.md`/`EXPERIMENTS.md` for the paper-experiment mapping.

pub use bingo_core as core;
pub use bingo_crawler as crawler;
pub use bingo_dist as dist;
pub use bingo_graph as graph;
pub use bingo_ml as ml;
pub use bingo_search as search;
pub use bingo_serve as serve;
pub use bingo_store as store;
pub use bingo_textproc as textproc;
pub use bingo_webworld as webworld;

/// Most commonly used items in one import.
pub mod prelude {
    pub use bingo_core::{BingoEngine, EngineConfig, Phase, TopicId, TopicTree};
    pub use bingo_crawler::{CrawlConfig, CrawlStats, Crawler, FocusRule};
    pub use bingo_search::{LiveIndex, QueryOptions, RankingScheme, SearchEngine, TopicFilter};
    pub use bingo_serve::{PortalRequest, PortalResponse, PortalService};
    pub use bingo_store::DocumentStore;
    pub use bingo_textproc::{SparseVector, Vocabulary};
    pub use bingo_webworld::gen::WorldConfig;
    pub use bingo_webworld::World;
}
