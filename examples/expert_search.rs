//! Expert Web search: the ARIES needle-in-a-haystack query (§5.3).
//!
//! ```text
//! cargo run --release --example expert_search
//! ```
//!
//! Runs the full expert-search workflow — keyword bootstrap, seed
//! selection, a 10-virtual-minute focused crawl, and cosine-ranked
//! postprocessing — then applies one round of relevance feedback.

use bingo::prelude::*;
use bingo::search::apply_feedback;
use std::sync::Arc;

fn main() {
    let world = Arc::new(WorldConfig::expert(7).build());
    println!(
        "expert world: {} pages, {} hosts (ARIES scenario embedded)",
        world.page_count(),
        world.host_count()
    );

    // The seven training seeds the user picked from the bootstrap query
    // (Figure 4 of the paper).
    let seed_names = [
        "seed:bell-labs-slides",
        "seed:cmu-lecture",
        "seed:harvard-reading",
        "seed:brandeis-abstract",
        "mohan-page",
        "seed:stanford-seminar",
        "seed:vldb-paper",
    ];
    let mut engine = BingoEngine::new(EngineConfig::default());
    let topic = engine.add_topic(TopicTree::ROOT, "ARIES");
    println!("\ntraining seeds:");
    let mut seeds = Vec::new();
    for name in seed_names {
        let url = world.url_of(world.named_page(name).expect("scenario page"));
        engine.add_training_url(&world, topic, &url).expect("seed");
        println!("  {url}");
        seeds.push(url);
    }
    // Negatives from far-away categories.
    let mut added = 0;
    for id in 0..world.page_count() as u64 {
        if matches!(world.true_topic(id), Some(3) | Some(4)) {
            if engine.add_others_url(&world, &world.url_of(id)).is_ok() {
                added += 1;
            }
            if added >= 40 {
                break;
            }
        }
    }
    engine.train().expect("training");

    // The 10-virtual-minute focused crawl.
    let mut crawler = Crawler::new(
        world.clone(),
        CrawlConfig {
            max_depth: 0,
            ..CrawlConfig::default()
        },
        DocumentStore::new(),
    );
    for url in &seeds {
        crawler.add_seed(url, Some(topic.0));
    }
    engine.crawl_until(&mut crawler, 120_000, 0);
    engine.retrain(&mut crawler);
    engine.switch_to_harvesting(&mut crawler);
    engine.crawl_until(&mut crawler, 600_000, 0);
    println!(
        "\ncrawl: {} URLs visited, {} positively classified",
        crawler.stats().visited_urls,
        crawler.stats().positively_classified
    );

    // Postprocess: Figure 5's query.
    let search = SearchEngine::build(crawler.store());
    let opts = QueryOptions {
        filter: TopicFilter::Exact(topic.0),
        ranking: RankingScheme::Cosine,
        top_k: 10,
    };
    let hits = search.query(&engine.vocab, "source code release", &opts);
    println!("\ntop 10 for \"source code release\":");
    for h in &hits {
        println!("  {:.3}  {}", h.score, h.url);
    }

    // One round of relevance feedback: promote the top hit, reclassify.
    if let Some(best) = hits.first() {
        let report = apply_feedback(&mut engine, crawler.store(), topic, &[best.doc_id], &[]);
        println!(
            "\nrelevance feedback: promoted {}, reassigned {} documents",
            report.promoted, report.reassigned
        );
        let hits2 = search.query(&engine.vocab, "source code release", &opts);
        println!("top 10 after feedback:");
        for h in &hits2 {
            println!("  {:.3}  {}", h.score, h.url);
        }
    }
}
