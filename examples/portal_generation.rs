//! Information portal generation with a multi-topic tree (Figure 2).
//!
//! ```text
//! cargo run --release --example portal_generation
//! ```
//!
//! Builds the paper's example directory layout (competing topics at each
//! level), trains per-node classifiers, runs a focused crawl over all
//! topics at once, and then asks the cluster analysis to suggest
//! subclasses for the most heterogeneous topic.

use bingo::prelude::*;
use bingo::search::suggest_subclasses;
use bingo::webworld::gen::{TopicConfig, WorldConfig};
use bingo::webworld::PageKind;
use std::sync::Arc;

fn main() {
    // A web with two research communities plus noise.
    let mut cfg = WorldConfig::small_test(2024);
    cfg.topics = vec![
        TopicConfig::new("dbresearch", "database_research", 120, 4),
        TopicConfig::new("datamining", "data_mining", 120, 4),
        TopicConfig::new("sports", "sports", 120, 4),
        TopicConfig::new("arts", "arts", 80, 3),
    ];
    cfg.noise_topics = vec![2, 3];
    let world = Arc::new(cfg.build());

    // The topic tree: two competing research topics under the root
    // (siblings provide each other's negative examples).
    let mut engine = BingoEngine::new(EngineConfig {
        archetype_threshold: false,
        ..EngineConfig::default()
    });
    let db = engine.add_topic(TopicTree::ROOT, "database research");
    let mining = engine.add_topic(TopicTree::ROOT, "data mining");
    println!("topic tree:");
    for id in engine.tree.ids() {
        println!("  {}", engine.tree.path(id));
    }

    // Seed each topic with a few on-topic content pages ("bookmarks").
    let mut seeds = Vec::new();
    for (topic, true_topic) in [(db, 0u32), (mining, 1u32)] {
        let mut count = 0;
        for id in 0..world.page_count() as u64 {
            if world.true_topic(id) == Some(true_topic) && world.page(id).kind == PageKind::Content
            {
                let url = world.url_of(id);
                if engine.add_training_url(&world, topic, &url).is_ok() {
                    seeds.push((url, topic));
                    count += 1;
                }
                if count >= 3 {
                    break;
                }
            }
        }
    }
    // OTHERS: sports/arts pages.
    let mut added = 0;
    for id in 0..world.page_count() as u64 {
        if matches!(world.true_topic(id), Some(2) | Some(3)) {
            if engine.add_others_url(&world, &world.url_of(id)).is_ok() {
                added += 1;
            }
            if added >= 30 {
                break;
            }
        }
    }
    engine.train().expect("training");

    // Crawl both topics at once.
    let mut crawler = Crawler::new(
        world.clone(),
        CrawlConfig {
            max_depth: 0,
            ..CrawlConfig::default()
        },
        DocumentStore::new(),
    );
    for (url, topic) in &seeds {
        crawler.add_seed(url, Some(topic.0));
    }
    engine.crawl_until(&mut crawler, 200_000, 0);
    engine.retrain(&mut crawler);
    engine.switch_to_harvesting(&mut crawler);
    engine.crawl_until(&mut crawler, 1_500_000, 0);

    println!("\nper-topic portal contents:");
    for (topic, name) in [(db, "database research"), (mining, "data mining")] {
        let docs = crawler.store().topic_documents(topic.0);
        println!("  {name}: {} documents", docs.len());
    }

    // Cluster analysis: suggest subclasses for the database topic.
    if let Some(suggestions) = suggest_subclasses(crawler.store(), &engine.vocab, db.0, 2..=4, 5) {
        println!("\nsuggested subclasses for 'database research':");
        for (i, s) in suggestions.iter().enumerate() {
            println!(
                "  subclass {}: {} docs, label = {:?}",
                i + 1,
                s.members.len(),
                s.label
            );
        }
    }
}
