//! The overnight-crawl workflow (§1.2): "we would expect the human to
//! spend a few minutes for carefully specifying her information demand
//! and setting up an overnight crawl, and another few minutes for
//! looking at the results the next morning."
//!
//! ```text
//! cargo run --release --example overnight_workflow
//! ```
//!
//! Session 1 trains an engine, crawls briefly, and persists both the
//! crawl database and the trained engine. Session 2 — a fresh process in
//! real use — restores both, resumes the crawl without refetching, and
//! postprocesses the combined result.

use bingo::core::persist as engine_persist;
use bingo::graph::LinkSource;
use bingo::prelude::*;
use bingo::store::persist as store_persist;
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join("bingo-overnight-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let db_path = dir.join("crawl.jsonl");
    let engine_path = dir.join("engine.json");

    // ---------------- Session 1: the evening setup -------------------
    let world = Arc::new(WorldConfig::small_test(2026).build());
    let mut engine = BingoEngine::new(EngineConfig {
        archetype_threshold: false,
        ..EngineConfig::default()
    });
    let topic = engine.add_topic(TopicTree::ROOT, "database research");
    for a in &world.authors()[..2] {
        engine
            .add_training_url(&world, topic, &world.url_of(a.homepage))
            .expect("seed");
    }
    let mut added = 0;
    for id in 0..world.page_count() as u64 {
        if matches!(world.true_topic(id), Some(2) | Some(3)) {
            if engine.add_others_url(&world, &world.url_of(id)).is_ok() {
                added += 1;
            }
            if added >= 25 {
                break;
            }
        }
    }
    engine.train().expect("training");

    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
    for a in &world.authors()[..2] {
        crawler.add_seed(&world.url_of(a.homepage), Some(topic.0));
    }
    engine.crawl_until(&mut crawler, 60_000, 0);
    engine.retrain(&mut crawler);
    engine.switch_to_harvesting(&mut crawler);
    engine.crawl_until(&mut crawler, 200_000, 0);
    println!(
        "session 1: stored {} documents, {} positively classified",
        crawler.stats().stored_pages,
        crawler.stats().positively_classified
    );

    store_persist::save(crawler.store(), &db_path).expect("save crawl db");
    engine_persist::save_engine_to(&engine, &engine_path).expect("save engine");
    println!(
        "persisted to {} and {}",
        db_path.display(),
        engine_path.display()
    );
    drop(crawler);
    drop(engine);

    // ---------------- Session 2: the next morning --------------------
    let store = store_persist::load(&db_path).expect("load crawl db");
    let mut engine = engine_persist::load_engine_from(&engine_path).expect("load engine");
    println!(
        "\nsession 2: restored {} documents, {} training docs",
        store.document_count(),
        engine.tree.node(topic).training.len()
    );

    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default().harvesting(), store);
    crawler.resume_from_store();
    // Refill the frontier with uncrawled successors of the stored pages.
    for row in crawler.store().all_documents() {
        for succ in world.successors(row.id) {
            crawler.boost_url(&world.url_of(succ), row.topic, row.confidence.max(0.0));
        }
    }
    let before = crawler.store().document_count();
    let deadline = crawler.clock_ms() + 2_000_000;
    engine.crawl_until(&mut crawler, deadline, 300);
    println!(
        "resumed crawl added {} documents ({} total)",
        crawler.store().document_count() - before,
        crawler.store().document_count()
    );

    // Morning postprocessing over the combined result.
    let search = SearchEngine::build(crawler.store());
    let hits = search.query(
        &engine.vocab,
        "query optimization index",
        &QueryOptions {
            filter: TopicFilter::Exact(topic.0),
            ranking: RankingScheme::Combined {
                cosine: 1.0,
                confidence: 0.5,
                authority: 0.5,
            },
            top_k: 5,
        },
    );
    println!("\ntop results for \"query optimization index\":");
    for h in hits {
        println!("  {:.3}  {}  — {}", h.score, h.url, h.title);
    }

    std::fs::remove_file(&db_path).ok();
    std::fs::remove_file(&engine_path).ok();
}
