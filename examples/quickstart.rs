//! Quickstart: a minimal single-topic focused crawl.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small synthetic web, trains a "database research" classifier
//! from two researcher homepages, runs a two-phase focused crawl, and
//! prints the crawl statistics and the top results.

use bingo::prelude::*;
use std::sync::Arc;

fn main() {
    // 1. A small deterministic synthetic web (the live-Web substitute).
    let world = Arc::new(WorldConfig::small_test(42).build());
    println!(
        "world: {} pages on {} hosts, {} authors in the directory",
        world.page_count(),
        world.host_count(),
        world.authors().len()
    );

    // 2. The topic tree: a single topic seeded from two "bookmarks" —
    //    the homepages of the two most prolific researchers.
    let mut engine = BingoEngine::new(EngineConfig {
        archetype_threshold: false, // tiny seed set, as in the paper §5.2
        ..EngineConfig::default()
    });
    let topic = engine.add_topic(TopicTree::ROOT, "database research");
    let seeds: Vec<String> = world.authors()[..2]
        .iter()
        .map(|a| world.url_of(a.homepage))
        .collect();
    for url in &seeds {
        engine.add_training_url(&world, topic, url).expect("seed");
        println!("seed: {url}");
    }

    // 3. Negative examples for the virtual OTHERS class: far-away pages
    //    (sports, entertainment) — the Yahoo-categories trick of §3.1.
    let mut added = 0;
    for id in 0..world.page_count() as u64 {
        if matches!(world.true_topic(id), Some(2) | Some(3)) {
            if engine.add_others_url(&world, &world.url_of(id)).is_ok() {
                added += 1;
            }
            if added >= 30 {
                break;
            }
        }
    }
    engine.train().expect("initial training");

    // 4. Learning phase: sharp focus, depth-first, seed domains only.
    let seed_hosts = seeds
        .iter()
        .map(|u| bingo::webworld::fetch::host_of_url(u).unwrap().to_string())
        .collect();
    let config = CrawlConfig {
        allowed_hosts: Some(seed_hosts),
        ..CrawlConfig::default()
    };
    let mut crawler = Crawler::new(world.clone(), config, DocumentStore::new());
    for url in &seeds {
        crawler.add_seed(url, Some(topic.0));
    }
    engine.crawl_until(&mut crawler, 120_000, 0);
    let report = engine.retrain(&mut crawler);
    println!(
        "learning phase: {} pages stored, {} archetypes promoted",
        crawler.stats().stored_pages,
        report.promoted.iter().map(|&(_, n)| n).sum::<usize>()
    );

    // 5. Harvesting phase: soft focus, best-first, unrestricted.
    engine.switch_to_harvesting(&mut crawler);
    engine.crawl_until(&mut crawler, 1_500_000, 0);
    let stats = crawler.stats();
    println!("\ncrawl summary:");
    println!("  visited URLs:          {}", stats.visited_urls);
    println!("  stored pages:          {}", stats.stored_pages);
    println!("  extracted links:       {}", stats.extracted_links);
    println!("  positively classified: {}", stats.positively_classified);
    println!("  visited hosts:         {}", stats.visited_hosts);
    println!("  max crawling depth:    {}", stats.max_depth);
    println!("  duplicates dismissed:  {}", stats.duplicates);
    println!("  fetch errors:          {}", stats.fetch_errors);

    // 6. Query the result with the local search engine.
    let search = SearchEngine::build(crawler.store());
    let hits = search.query(
        &engine.vocab,
        "transaction recovery logging",
        &QueryOptions {
            filter: TopicFilter::Exact(topic.0),
            ranking: RankingScheme::Combined {
                cosine: 1.0,
                confidence: 0.5,
                authority: 0.5,
            },
            top_k: 5,
        },
    );
    println!("\ntop results for \"transaction recovery logging\":");
    for h in hits {
        println!("  {:.3}  {}", h.score, h.url);
    }
}
