//! End-to-end integration: the full portal-generation workflow through
//! the public facade — world generation, two-phase focused crawl,
//! retraining, result storage, snapshot persistence, and local search.

use bingo::prelude::*;
use bingo::store::persist;
use bingo::webworld::fetch::host_of_url;
use std::sync::Arc;

fn build_trained(world: &Arc<World>) -> (BingoEngine, TopicId) {
    let mut engine = BingoEngine::new(EngineConfig {
        archetype_threshold: false,
        ..EngineConfig::default()
    });
    let topic = engine.add_topic(TopicTree::ROOT, "database research");
    for a in &world.authors()[..2] {
        engine
            .add_training_url(world, topic, &world.url_of(a.homepage))
            .unwrap();
    }
    let mut added = 0;
    for id in 0..world.page_count() as u64 {
        if matches!(world.true_topic(id), Some(2) | Some(3)) {
            if engine.add_others_url(world, &world.url_of(id)).is_ok() {
                added += 1;
            }
            if added >= 30 {
                break;
            }
        }
    }
    engine.train().unwrap();
    (engine, topic)
}

#[test]
fn full_portal_workflow() {
    let world = Arc::new(WorldConfig::small_test(1234).build());
    let (mut engine, topic) = build_trained(&world);
    let seeds: Vec<String> = world.authors()[..2]
        .iter()
        .map(|a| world.url_of(a.homepage))
        .collect();

    // Learning phase within seed domains.
    let seed_hosts = seeds
        .iter()
        .map(|u| host_of_url(u).unwrap().to_string())
        .collect();
    let mut crawler = Crawler::new(
        world.clone(),
        CrawlConfig {
            allowed_hosts: Some(seed_hosts),
            ..CrawlConfig::default()
        },
        DocumentStore::new(),
    );
    for url in &seeds {
        crawler.add_seed(url, Some(topic.0));
    }
    engine.crawl_until(&mut crawler, 150_000, 0);
    let learning_stored = crawler.stats().stored_pages;
    assert!(
        learning_stored > 5,
        "learning phase stored {learning_stored}"
    );

    let report = engine.retrain(&mut crawler);
    assert!(!report.promoted.is_empty(), "no archetypes promoted");
    assert!(report.hubs_boosted > 0, "no hubs boosted");

    // Harvesting.
    engine.switch_to_harvesting(&mut crawler);
    engine.crawl_until(&mut crawler, 2_000_000, 300);
    let stats = crawler.stats().clone();
    assert!(stats.stored_pages > learning_stored * 2);
    assert!(stats.positively_classified > 30);
    assert!(stats.visited_hosts >= 5);
    assert!(stats.extracted_links > stats.stored_pages);

    // Focus quality: most positively classified pages are truly on topic.
    let mut correct = 0u32;
    let mut wrong = 0u32;
    crawler.store().for_each_document(|row| {
        if row.topic == Some(topic.0) {
            match world.true_topic(row.id) {
                Some(0) => correct += 1,
                Some(_) => wrong += 1,
                None => {}
            }
        }
    });
    assert!(
        correct as f32 / (correct + wrong).max(1) as f32 > 0.7,
        "precision too low: {correct}/{}",
        correct + wrong
    );

    // Author recall: at least a few directory authors found.
    let mut urls: Vec<(f32, String)> = Vec::new();
    crawler.store().for_each_document(|row| {
        if row.topic == Some(topic.0) {
            urls.push((row.confidence, row.url.clone()));
        }
    });
    urls.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    let ranked: Vec<String> = urls.into_iter().map(|(_, u)| u).collect();
    let eval = bingo::webworld::dblp::evaluate_found_authors(
        &ranked,
        world.authors(),
        10,
        &[ranked.len()],
    );
    let (_, _, found_all) = eval[0];
    assert!(found_all >= 5, "only {found_all} authors found");

    // Snapshot persistence round trip of the crawl database.
    let mut buf = Vec::new();
    persist::write_snapshot(crawler.store(), &mut buf).unwrap();
    let restored = persist::read_snapshot(&buf[..]).unwrap();
    assert_eq!(restored.document_count(), crawler.store().document_count());
    assert_eq!(
        restored.topic_documents(topic.0).len(),
        crawler.store().topic_documents(topic.0).len()
    );

    // The local search engine works over the restored database.
    let search = SearchEngine::build(&restored);
    let hits = search.query(
        &engine.vocab,
        "database transaction query",
        &QueryOptions {
            filter: TopicFilter::Exact(topic.0),
            ranking: RankingScheme::Cosine,
            top_k: 10,
        },
    );
    assert!(!hits.is_empty(), "search over restored snapshot is empty");
}

#[test]
fn harvesting_beats_learning_scope() {
    let world = Arc::new(WorldConfig::small_test(555).build());
    let (mut engine, topic) = build_trained(&world);
    let seeds: Vec<String> = world.authors()[..2]
        .iter()
        .map(|a| world.url_of(a.homepage))
        .collect();

    // Learning-only crawl (sharp, domain-restricted) vs. full two-phase:
    // harvesting must reach strictly more hosts.
    let run = |harvest: bool| {
        let (mut engine2, _t) = build_trained(&world);
        let seed_hosts = seeds
            .iter()
            .map(|u| host_of_url(u).unwrap().to_string())
            .collect();
        let mut crawler = Crawler::new(
            world.clone(),
            CrawlConfig {
                allowed_hosts: Some(seed_hosts),
                ..CrawlConfig::default()
            },
            DocumentStore::new(),
        );
        for url in &seeds {
            crawler.add_seed(url, Some(topic.0));
        }
        engine2.crawl_until(&mut crawler, 150_000, 0);
        engine2.retrain(&mut crawler);
        if harvest {
            engine2.switch_to_harvesting(&mut crawler);
            engine2.crawl_until(&mut crawler, 1_000_000, 0);
        }
        crawler.stats().clone()
    };
    let _ = &mut engine;
    let learn_only = run(false);
    let two_phase = run(true);
    assert!(two_phase.visited_hosts > learn_only.visited_hosts);
    assert!(two_phase.positively_classified > learn_only.positively_classified);
}
