//! Hierarchical classification over a multi-level topic tree — the
//! Figure 2 example: `mathematics (algebra, stochastics)`, `agriculture`,
//! `arts`. Section 2.3's motivating observation: "theorem" discriminates
//! mathematics from agriculture and arts but is useless for algebra vs.
//! stochastics, where "field" works instead — topic-specific feature
//! selection at every level makes the top-down descent work.

use bingo::prelude::*;
use bingo::webworld::gen::{TopicConfig, WorldConfig};
use bingo::webworld::PageKind;
use std::sync::Arc;

/// World: algebra (0), stochastics (1), agriculture (2), arts (3),
/// sports (4, OTHERS material).
fn math_world(seed: u64) -> Arc<World> {
    let mut cfg = WorldConfig::small_test(seed);
    cfg.topics = vec![
        TopicConfig::new("algebra", "algebra", 80, 3),
        TopicConfig::new("stochastics", "stochastics", 80, 3),
        TopicConfig::new("agriculture", "agriculture", 80, 3),
        TopicConfig::new("arts", "arts", 80, 3),
        TopicConfig::new("sports", "sports", 60, 2),
    ];
    cfg.author_directory = None;
    cfg.noise_topics = vec![4];
    cfg.related_topics = vec![(0, 1)]; // the two math branches blend
    Arc::new(cfg.build())
}

fn pages_of(world: &World, topic: u32, skip: usize, take: usize) -> Vec<u64> {
    (0..world.page_count() as u64)
        .filter(|&id| {
            world.true_topic(id) == Some(topic)
                && world.page(id).secondary_topic.is_none()
                && world.page(id).kind == PageKind::Content
        })
        .skip(skip)
        .take(take)
        .collect()
}

fn train_figure2_engine(world: &Arc<World>) -> (BingoEngine, [TopicId; 5]) {
    let mut engine = BingoEngine::new(EngineConfig::default());
    let math = engine.add_topic(TopicTree::ROOT, "mathematics");
    let agri = engine.add_topic(TopicTree::ROOT, "agriculture");
    let arts = engine.add_topic(TopicTree::ROOT, "arts");
    let algebra = engine.add_topic(math, "algebra");
    let stochastics = engine.add_topic(math, "stochastics");

    // Training: leaves get their own pages; mathematics is trained from
    // its subtree (children's documents), per the engine's
    // subtree-training rule.
    for (topic, world_topic) in [(algebra, 0u32), (stochastics, 1), (agri, 2), (arts, 3)] {
        for id in pages_of(world, world_topic, 0, 6) {
            engine
                .add_training_url(world, topic, &world.url_of(id))
                .expect("training page");
        }
    }
    // OTHERS: sports pages.
    for id in pages_of(world, 4, 0, 15) {
        engine.add_others_url(world, &world.url_of(id)).ok();
    }
    engine.train().expect("hierarchical training");
    (engine, [math, agri, arts, algebra, stochastics])
}

#[test]
fn descends_to_the_correct_leaf() {
    let world = math_world(321);
    let (mut engine, [math, agri, arts, algebra, stochastics]) = train_figure2_engine(&world);

    // Sports hosts may be dead/flaky; classify only fetchable pages.
    let classify_topic = |engine: &mut BingoEngine, id: u64| -> Option<Option<u32>> {
        engine
            .analyze_url(&world, &world.url_of(id))
            .ok()
            .map(|(_, _, f)| engine.classify(&f).topic)
    };

    // Held-out pages of each world topic must land in the right node.
    let expectations = [(0u32, algebra), (1, stochastics), (2, agri), (3, arts)];
    for (world_topic, expected) in expectations {
        let mut correct = 0;
        let mut total = 0;
        for id in pages_of(&world, world_topic, 6, 12) {
            if let Some(topic) = classify_topic(&mut engine, id) {
                total += 1;
                if topic == Some(expected.0) {
                    correct += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            correct * 2 > total,
            "world topic {world_topic}: only {correct}/{total} reached node {expected:?}"
        );
    }
    // Nothing should stop at the inner mathematics node for clean pages
    // very often — but landing there is legal for ambiguous ones; just
    // check sports pages are rejected outright.
    let mut rejected = 0;
    let mut total = 0;
    for id in pages_of(&world, 4, 15, 40) {
        if let Some(topic) = classify_topic(&mut engine, id) {
            total += 1;
            if topic.is_none() {
                rejected += 1;
            }
        }
    }
    assert!(total > 0);
    assert!(
        rejected * 2 > total,
        "sports pages leaked into the tree: {rejected}/{total}"
    );
    let _ = math;
}

#[test]
fn blended_math_pages_stay_inside_mathematics() {
    let world = math_world(654);
    let (mut engine, [math, _agri, _arts, algebra, stochastics]) = train_figure2_engine(&world);

    // Pages blending algebra and stochastics vocabulary: wherever they
    // land, it must be within the mathematics subtree (or rejected), and
    // a decent share must be accepted somewhere.
    let blended: Vec<u64> = (0..world.page_count() as u64)
        .filter(|&id| {
            matches!(world.true_topic(id), Some(0) | Some(1))
                && world.page(id).secondary_topic.is_some()
                && world.page(id).kind == PageKind::Content
        })
        .take(12)
        .collect();
    assert!(!blended.is_empty(), "no blended pages generated");
    let math_subtree = [math.0, algebra.0, stochastics.0];
    let mut inside = 0;
    let mut outside = 0;
    for id in &blended {
        let (_, _, f) = engine.analyze_url(&world, &world.url_of(*id)).unwrap();
        match engine.classify(&f).topic {
            Some(t) if math_subtree.contains(&t) => inside += 1,
            Some(_) => outside += 1,
            None => {}
        }
    }
    assert!(inside > 0, "no blended math page accepted anywhere");
    assert!(
        outside <= inside / 3,
        "blended math pages leaked outside mathematics: {outside} vs {inside}"
    );
}

#[test]
fn crawl_with_hierarchical_tree_populates_leaves() {
    let world = math_world(987);
    let (mut engine, [_math, _agri, _arts, algebra, stochastics]) = train_figure2_engine(&world);

    let mut crawler = Crawler::new(
        world.clone(),
        CrawlConfig {
            max_depth: 0,
            ..CrawlConfig::default()
        },
        DocumentStore::new(),
    );
    for (topic, world_topic) in [(algebra, 0u32), (stochastics, 1)] {
        for id in pages_of(&world, world_topic, 0, 2) {
            crawler.add_seed(&world.url_of(id), Some(topic.0));
        }
    }
    engine.crawl_until(&mut crawler, 300_000, 0);
    engine.switch_to_harvesting(&mut crawler);
    engine.crawl_until(&mut crawler, 1_500_000, 0);

    let algebra_docs = crawler.store().topic_documents(algebra.0);
    let stochastics_docs = crawler.store().topic_documents(stochastics.0);
    assert!(
        algebra_docs.len() > 5,
        "algebra leaf too empty: {}",
        algebra_docs.len()
    );
    assert!(
        stochastics_docs.len() > 5,
        "stochastics leaf too empty: {}",
        stochastics_docs.len()
    );
    // Purity per leaf against ground truth.
    for (docs, want) in [(&algebra_docs, 0u32), (&stochastics_docs, 1)] {
        let mut ok = 0;
        let mut labeled = 0;
        for &d in docs.iter() {
            if let Some(t) = world.true_topic(d) {
                labeled += 1;
                if t == want {
                    ok += 1;
                }
            }
        }
        assert!(
            ok * 3 >= labeled * 2,
            "leaf for world topic {want} impure: {ok}/{labeled}"
        );
    }
}
