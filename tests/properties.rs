//! Property-based tests of the core data structures and invariants,
//! spanning crates through the public facade.

use bingo::crawler::frontier::{Frontier, QueueEntry};
use bingo::crawler::Dedup;
use bingo::ml::svm::{LinearSvm, SvmConfig};
use bingo::ml::{Classifier, TrainingSet};
use bingo::textproc::stem::porter_stem;
use bingo::textproc::tfidf::CorpusStats;
use bingo::textproc::vocab::{TermId, Vocabulary};
use bingo::textproc::SparseVector;
use proptest::prelude::*;

fn sparse_vec() -> impl Strategy<Value = SparseVector> {
    proptest::collection::vec((0u32..500, -10.0f32..10.0), 0..40).prop_map(SparseVector::from_pairs)
}

proptest! {
    // ---- Sparse vector algebra --------------------------------------

    #[test]
    fn dot_product_is_commutative(a in sparse_vec(), b in sparse_vec()) {
        prop_assert!((a.dot(&b) - b.dot(&a)).abs() < 1e-3);
    }

    #[test]
    fn cosine_is_bounded(a in sparse_vec(), b in sparse_vec()) {
        let c = a.cosine(&b);
        prop_assert!((-1.0001..=1.0001).contains(&c), "cosine {c}");
    }

    #[test]
    fn norm_matches_self_dot(a in sparse_vec()) {
        prop_assert!((a.norm().powi(2) - a.dot(&a)).abs() < 1e-2 * (1.0 + a.dot(&a)));
    }

    #[test]
    fn add_scaled_is_linear(a in sparse_vec(), b in sparse_vec(), k in -5.0f32..5.0) {
        let c = a.add_scaled(&b, k);
        // Check on a few probe indices.
        for idx in [0u32, 7, 123, 499] {
            let expect = a.get(idx) + k * b.get(idx);
            prop_assert!((c.get(idx) - expect).abs() < 1e-3,
                "index {idx}: {} vs {expect}", c.get(idx));
        }
    }

    #[test]
    fn entries_sorted_unique_nonzero(a in sparse_vec()) {
        for w in a.entries().windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        prop_assert!(a.entries().iter().all(|&(_, v)| v != 0.0));
    }

    #[test]
    fn normalized_is_unit_or_empty(a in sparse_vec()) {
        let n = a.normalized();
        if a.is_empty() {
            prop_assert!(n.is_empty());
        } else {
            prop_assert!((n.norm() - 1.0).abs() < 1e-3);
        }
    }

    // ---- Porter stemmer ---------------------------------------------

    #[test]
    fn stemmer_never_grows_words(word in "[a-z]{1,20}") {
        let stem = porter_stem(&word);
        prop_assert!(stem.len() <= word.len(), "{word} -> {stem}");
        prop_assert!(!stem.is_empty());
        prop_assert!(stem.is_ascii());
    }

    #[test]
    fn stemmer_is_deterministic(word in "[a-z]{1,20}") {
        prop_assert_eq!(porter_stem(&word), porter_stem(&word));
    }

    // ---- Vocabulary ---------------------------------------------------

    #[test]
    fn vocabulary_intern_lookup_roundtrip(words in proptest::collection::vec("[a-z]{1,10}", 1..50)) {
        let mut v = Vocabulary::new();
        let ids: Vec<TermId> = words.iter().map(|w| v.intern(w)).collect();
        for (w, &id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.lookup(w), Some(id));
            prop_assert_eq!(v.term(id), w.as_str());
        }
        // Interning again returns identical ids.
        for (w, &id) in words.iter().zip(&ids) {
            prop_assert_eq!(v.intern(w), id);
        }
    }

    // ---- tf·idf --------------------------------------------------------

    #[test]
    fn idf_is_monotone_in_rarity(
        df_counts in proptest::collection::vec(1u32..50, 2..10),
    ) {
        let mut stats = CorpusStats::new();
        let max_df = *df_counts.iter().max().unwrap();
        // Build documents such that term t appears in df_counts[t] docs.
        for doc in 0..max_df {
            let terms: Vec<TermId> = df_counts
                .iter()
                .enumerate()
                .filter(|&(_, &df)| doc < df)
                .map(|(t, _)| TermId(t as u32))
                .collect();
            stats.add_document(terms);
        }
        for (t1, &df1) in df_counts.iter().enumerate() {
            for (t2, &df2) in df_counts.iter().enumerate() {
                if df1 < df2 {
                    prop_assert!(
                        stats.idf(TermId(t1 as u32)) >= stats.idf(TermId(t2 as u32)),
                        "rarer term must have >= idf"
                    );
                }
            }
        }
    }

    // ---- Frontier -------------------------------------------------------

    #[test]
    fn frontier_pops_in_priority_order(
        priorities in proptest::collection::vec(0.0f32..100.0, 1..60),
    ) {
        let mut f = Frontier::new(1, 1000, 100);
        for (i, &p) in priorities.iter().enumerate() {
            let mut e = QueueEntry::seed(&format!("http://h/p{i}"), Some(0));
            e.priority = p;
            f.push(e);
        }
        let mut last = f32::INFINITY;
        let mut popped = 0;
        while let Some(e) = f.pop() {
            prop_assert!(e.priority <= last + 1e-4,
                "priority order violated: {} after {last}", e.priority);
            last = e.priority;
            popped += 1;
        }
        prop_assert_eq!(popped, priorities.len());
    }

    #[test]
    fn frontier_capacity_never_exceeded(
        n in 1usize..200,
    ) {
        let mut f = Frontier::new(1, 20, 5);
        for i in 0..n {
            let mut e = QueueEntry::seed(&format!("http://h/p{i}"), Some(0));
            e.priority = (i % 17) as f32;
            f.push(e);
        }
        prop_assert!(f.len() <= 25 + 5, "len {}", f.len());
    }

    #[test]
    fn frontier_priority_is_total_order_under_ties(
        // Few distinct priorities → many ties; the pop order must still
        // be deterministic (a total order, not a partial one).
        priorities in proptest::collection::vec(0u8..4, 1..50),
    ) {
        let build = || {
            let mut f = Frontier::new(1, 1000, 100);
            for (i, &p) in priorities.iter().enumerate() {
                let mut e = QueueEntry::seed(&format!("http://h/p{i}"), Some(0));
                e.priority = p as f32;
                f.push(e);
            }
            f
        };
        let drain = |mut f: Frontier| {
            let mut urls = Vec::new();
            let mut last = f32::INFINITY;
            while let Some(e) = f.pop() {
                prop_assert!(e.priority <= last + 1e-4, "order violated");
                last = e.priority;
                urls.push(e.url);
            }
            Ok(urls)
        };
        let a = drain(build())?;
        let b = drain(build())?;
        prop_assert_eq!(a.len(), priorities.len());
        prop_assert_eq!(a, b);
    }

    // ---- Dedup ---------------------------------------------------------

    #[test]
    fn dedup_url_marking_is_idempotent(urls in proptest::collection::vec("[a-z]{1,12}", 1..40)) {
        let mut d = Dedup::new();
        let mut first: std::collections::HashSet<String> = Default::default();
        for u in &urls {
            let fresh = d.mark_url(u);
            prop_assert_eq!(fresh, first.insert(u.clone()));
        }
    }

    #[test]
    fn dedup_signatures_stable_under_path_alias_permutation(
        responses in proptest::collection::vec(
            (0u32..5, "/[a-z]{1,8}", 50u64..60), 1..30),
        rot in 0usize..30,
    ) {
        // The same set of (IP, path, size) responses — e.g. path aliases
        // of one another — produces identical fingerprint state no
        // matter the order the crawler encounters them in.
        let mark_all = |order: &[(u32, String, u64)]| {
            let mut d = Dedup::new();
            for (ip, path, size) in order {
                d.mark_response(*ip, path, *size);
            }
            d.snapshot()
        };
        let forward = mark_all(&responses);
        let mut permuted = responses.clone();
        let rot = rot % permuted.len();
        permuted.rotate_left(rot);
        permuted.reverse();
        let backward = mark_all(&permuted);
        prop_assert_eq!(format!("{forward:?}"), format!("{backward:?}"));
    }

    // ---- Circuit breaker ------------------------------------------------

    #[test]
    fn breaker_never_closes_without_successful_probe(
        ops in proptest::collection::vec((0u8..3, 1u64..2000), 1..80),
    ) {
        use bingo::crawler::hosts::{BreakerConfig, BreakerState, HostManager};
        let mut m = HostManager::with_config(BreakerConfig {
            failure_threshold: 2,
            base_backoff_ms: 100,
            max_backoff_ms: 1000,
            jitter_permille: 250,
            max_open_cycles: 3,
        });
        let mut now = 0u64;
        for &(op, dt) in &ops {
            now += dt;
            let before = m.breaker_state("h");
            match op {
                0 => { m.record_failure("h", now); }
                1 => { m.record_success("h"); }
                _ => { m.decide("h", now); }
            }
            let after = m.breaker_state("h");
            // The only path back to Closed is a successful probe from
            // HalfOpen: an Open breaker can never jump straight to
            // Closed, and nothing resurrects a Dead host.
            if matches!(before, BreakerState::Open { .. }) {
                prop_assert_ne!(after, BreakerState::Closed);
            }
            if before == BreakerState::Dead {
                prop_assert_eq!(after, BreakerState::Dead);
            }
            if before == BreakerState::HalfOpen && after == BreakerState::Closed {
                prop_assert_eq!(op, 1);
            }
        }
    }

    // ---- SVM -------------------------------------------------------------

    #[test]
    fn svm_separates_disjoint_supports(seed in 0u64..500) {
        // Positives on features 0..10, negatives on 10..20.
        let mut set = TrainingSet::new();
        for i in 0..12u32 {
            let f = i % 10;
            set.push(SparseVector::from_pairs(vec![(f, 1.0), (20, 0.1)]), true);
            set.push(SparseVector::from_pairs(vec![(10 + f, 1.0), (20, 0.1)]), false);
        }
        let model = LinearSvm::new(SvmConfig { seed, ..SvmConfig::default() })
            .train(&set)
            .unwrap();
        for (x, label) in &set.examples {
            prop_assert_eq!(model.decide(x).accept(), *label);
        }
    }
}
