#!/usr/bin/env sh
# CI gate: format, build, test, lint, bench regression.
#
# The workspace is fully self-contained: every external crate (rand,
# serde, proptest, criterion, ...) is a vendored path dependency under
# vendor/, so all commands run offline and reproduce on a network-less
# machine. No registry access, no lockfile churn.
#
# BENCH_GATE_MODE controls the final step: "full" (default) runs the
# baseline-sized scenarios, "smoke" the reduced CI sizes, "skip"
# disables the bench gate (e.g. on heavily loaded shared runners).
# The gate covers six scenarios (crawl, classify, pipeline, recovery,
# serve, scale) against the checked-in BENCH_<scenario>.json baselines;
# the serve scenario additionally proves the snapshot-swap live index
# answers queries identically to a batch rebuild while gating portal
# QPS and latency percentiles, and the scale scenario crawls a
# million-page paged world (in full mode) through the segmented store
# and spillable frontier, failing the gate if peak-RSS growth leaves
# its fixed budget (rss_within_budget). Use `-- --only crawl,serve` to
# run a subset.
#
# BINGO_CRASH_SEEDS picks the seed matrix for the crash-recovery sweep
# (every byte budget of a checkpoint write, a store segment seal, and
# every frontier spill-file boundary is crashed and recovered); the
# default widens the in-repo test default for CI coverage.
set -eu

cd "$(dirname "$0")"

BENCH_GATE_MODE="${BENCH_GATE_MODE:-full}"
BINGO_CRASH_SEEDS="${BINGO_CRASH_SEEDS:-1,2,3,11,12,13}"
STEP_TIMINGS=""

# step NAME CMD... — announce, run, and time one CI step.
step() {
    name="$1"
    shift
    echo "==> $name"
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    STEP_TIMINGS="${STEP_TIMINGS}${name}: $((end - start))s\n"
}

step "cargo fmt --check" cargo fmt --all -- --check

step "cargo build --release" cargo build --release --offline --workspace

step "cargo test" cargo test -q --offline --workspace

step "crash matrix (seeds $BINGO_CRASH_SEEDS)" \
    env BINGO_CRASH_SEEDS="$BINGO_CRASH_SEEDS" \
    cargo test -q --offline -p bingo-crawler --test crash

step "segment crash matrix (seeds $BINGO_CRASH_SEEDS)" \
    env BINGO_CRASH_SEEDS="$BINGO_CRASH_SEEDS" \
    cargo test -q --offline -p bingo-store --test segment_crash

step "cargo clippy -D warnings" \
    cargo clippy --offline --workspace --all-targets -- -D warnings

step "cargo doc -D warnings" \
    env RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps

case "$BENCH_GATE_MODE" in
full)
    step "bench_gate (full)" \
        cargo run --release --offline -p bingo-bench --bin bench_gate
    ;;
smoke)
    step "bench_gate (smoke)" \
        cargo run --release --offline -p bingo-bench --bin bench_gate -- --smoke
    ;;
skip)
    echo "==> bench_gate skipped (BENCH_GATE_MODE=skip)"
    ;;
*)
    echo "error: unknown BENCH_GATE_MODE '$BENCH_GATE_MODE' (full|smoke|skip)" >&2
    exit 2
    ;;
esac

echo "==> ci.sh: all green"
printf "%b" "$STEP_TIMINGS" | sed 's/^/    /'
