#!/usr/bin/env sh
# CI gate: build, test, lint.
#
# The workspace is fully self-contained: every external crate (rand,
# serde, proptest, criterion, ...) is a vendored path dependency under
# vendor/, so all commands run offline and reproduce on a network-less
# machine. No registry access, no lockfile churn.
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --offline --workspace

echo "==> cargo clippy -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "==> ci.sh: all green"
