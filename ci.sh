#!/usr/bin/env sh
# CI gate: format, build, test, lint, crash matrix, bench regression.
#
# The workspace is fully self-contained: every external crate (rand,
# serde, proptest, criterion, ...) is a vendored path dependency under
# vendor/, so all commands run offline and reproduce on a network-less
# machine. No registry access, no lockfile churn.
#
# This script is the single local entry point AND the unit the GitHub
# workflows are built from. CI job layout (.github/workflows/):
#
#   ci.yml (every push/PR) — four parallel jobs sharing one cargo
#   cache, each invoking this script with a CI_STEPS selector:
#     lint   -> CI_STEPS=lint  ./ci.sh   (fmt, clippy, rustdoc)
#     test   -> CI_STEPS=test  ./ci.sh   (release build + full tests)
#     crash  -> CI_STEPS=crash ./ci.sh   (crash-recovery matrices)
#     bench  -> CI_STEPS=bench ./ci.sh   (bench gate, smoke mode;
#               uploads telemetry and writes a baseline-vs-actual
#               diff table to $GITHUB_STEP_SUMMARY on failure)
#   nightly.yml (cron + manual) — full-mode bench gate including the
#   million-page scale scenario, plus a wider crash-seed matrix.
#
# CI_STEPS selects which steps run, as a comma-separated list of
#   lint | test | crash | bench
# (default: all of them, in local-friendly order). Examples:
#   CI_STEPS=lint ./ci.sh
#   CI_STEPS=test,crash ./ci.sh
#
# BENCH_GATE_MODE controls the bench step: "full" (default) runs the
# baseline-sized scenarios, "smoke" the reduced CI sizes, "skip"
# disables the bench gate (e.g. on heavily loaded shared runners).
# BENCH_GATE_ONLY (optional) restricts the gate to a comma-separated
# scenario subset — nightly.yml uses it to give the hour-plus 10M-page
# scale scenario its own job while the rest of the full gate runs in
# parallel.
# The gate covers eight scenarios (crawl, classify, pipeline, recovery,
# serve, scale, scale10m, dist) against the checked-in
# BENCH_<scenario>.json baselines; the serve scenario additionally
# proves the snapshot-swap live index answers queries identically to a
# batch rebuild while gating portal QPS and latency percentiles, the
# scale scenarios crawl paged worlds (a million and ten million pages
# in full mode) through the segmented store and the spill/compaction
# layers, failing the gate if peak-RSS growth leaves the fixed budget
# (rss_within_budget), and the dist scenario runs a multi-node
# coordinator/worker crawl through seeded node kills plus a process
# kill, gating exact calm-set convergence, kill/requeue coverage, and
# recovery wall time. Use `-- --only crawl,serve` to run a subset.
#
# BINGO_CRASH_SEEDS picks the seed matrix for the crash-recovery sweep
# (every byte budget of a checkpoint write, a store segment seal, every
# frontier spill-file boundary, the lease journal, and every file
# boundary of the two-phase distributed snapshot commit is crashed and
# recovered); the default widens the in-repo test default for CI
# coverage. BINGO_NODE_KILL_SEEDS picks the seed matrix for the
# node-kill chaos sweep (each seed: generated fault plan, mid-crawl
# process kill, resume must converge to the calm page set); nightly.yml
# fans much wider slices of both through the crash step.
set -eu

cd "$(dirname "$0")"

BENCH_GATE_MODE="${BENCH_GATE_MODE:-full}"
BENCH_GATE_ONLY="${BENCH_GATE_ONLY:-}"
BINGO_CRASH_SEEDS="${BINGO_CRASH_SEEDS:-1,2,3,11,12,13}"
BINGO_NODE_KILL_SEEDS="${BINGO_NODE_KILL_SEEDS:-41,42,43}"
CI_STEPS="${CI_STEPS:-lint,test,crash,bench}"
STEP_TIMINGS=""
CI_OK=0

# Always print whatever step timings we have — also when a step fails
# under `set -eu` (the whole point of the trap: previously a failing
# step aborted before the summary and all timings were lost).
print_timings() {
    if [ "$CI_OK" = 1 ]; then
        echo "==> ci.sh: all green ($CI_STEPS)"
    else
        echo "==> ci.sh: FAILED (partial timings below)" >&2
    fi
    if [ -n "$STEP_TIMINGS" ]; then
        printf "%b" "$STEP_TIMINGS" | sed 's/^/    /'
    fi
}
trap print_timings EXIT

# step NAME CMD... — announce, run, and time one CI step.
step() {
    name="$1"
    shift
    echo "==> $name"
    start=$(date +%s)
    "$@"
    end=$(date +%s)
    STEP_TIMINGS="${STEP_TIMINGS}${name}: $((end - start))s\n"
}

# wants NAME — does CI_STEPS include this step?
wants() {
    case ",$CI_STEPS," in
    *",$1,"*) return 0 ;;
    *) return 1 ;;
    esac
}

for s in $(printf '%s' "$CI_STEPS" | tr ',' ' '); do
    case "$s" in
    lint | test | crash | bench) ;;
    *)
        echo "error: unknown CI_STEPS entry '$s' (lint|test|crash|bench)" >&2
        exit 2
        ;;
    esac
done

if wants lint; then
    step "cargo fmt --check" cargo fmt --all -- --check
fi

if wants test; then
    step "cargo build --release" cargo build --release --offline --workspace

    step "cargo test" cargo test -q --offline --workspace
fi

if wants crash; then
    step "crash matrix (seeds $BINGO_CRASH_SEEDS)" \
        env BINGO_CRASH_SEEDS="$BINGO_CRASH_SEEDS" \
        cargo test -q --offline -p bingo-crawler --test crash

    step "segment crash matrix (seeds $BINGO_CRASH_SEEDS)" \
        env BINGO_CRASH_SEEDS="$BINGO_CRASH_SEEDS" \
        cargo test -q --offline -p bingo-store --test segment_crash

    step "dist crash matrix (seeds $BINGO_CRASH_SEEDS)" \
        env BINGO_CRASH_SEEDS="$BINGO_CRASH_SEEDS" \
        cargo test -q --offline -p bingo-dist --test dist_crash

    step "node-kill chaos (seeds $BINGO_NODE_KILL_SEEDS)" \
        env BINGO_NODE_KILL_SEEDS="$BINGO_NODE_KILL_SEEDS" \
        cargo test -q --offline -p bingo-dist --test dist_chaos
fi

if wants lint; then
    step "cargo clippy -D warnings" \
        cargo clippy --offline --workspace --all-targets -- -D warnings

    step "cargo doc -D warnings" \
        env RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps
fi

if wants bench; then
    # Optional scenario subset; bench_gate rejects unknown/empty lists.
    set -- --
    if [ -n "$BENCH_GATE_ONLY" ]; then
        set -- -- --only "$BENCH_GATE_ONLY"
    fi
    case "$BENCH_GATE_MODE" in
    full)
        step "bench_gate (full${BENCH_GATE_ONLY:+, --only $BENCH_GATE_ONLY})" \
            cargo run --release --offline -p bingo-bench --bin bench_gate "$@"
        ;;
    smoke)
        step "bench_gate (smoke${BENCH_GATE_ONLY:+, --only $BENCH_GATE_ONLY})" \
            cargo run --release --offline -p bingo-bench --bin bench_gate "$@" --smoke
        ;;
    skip)
        echo "==> bench_gate skipped (BENCH_GATE_MODE=skip)"
        ;;
    *)
        echo "error: unknown BENCH_GATE_MODE '$BENCH_GATE_MODE' (full|smoke|skip)" >&2
        exit 2
        ;;
    esac
fi

CI_OK=1
