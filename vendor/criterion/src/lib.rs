//! Offline vendored stand-in for `criterion`.
//!
//! Benchmarks keep their real criterion shape (`criterion_group!`,
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`, ...)
//! but each routine is executed exactly once and its wall-clock time
//! printed. That keeps `cargo bench` useful as a coarse timing probe
//! and — because `[[bench]]` targets default to `test = true`, so
//! `cargo test` executes these binaries — keeps the test suite fast.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported for benches that use
/// `criterion::black_box` instead of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Workload volume attached to a benchmark group for throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Hint for `iter_batched` input reuse; ignored by this harness.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier, possibly parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Types accepted as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs the measured routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` (one execution in this harness).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// Time `routine` on one input built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed = start.elapsed();
    }

    /// Like [`Bencher::iter_batched`], passing the input by `&mut`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut input = setup();
        let start = Instant::now();
        black_box(routine(&mut input));
        self.elapsed = start.elapsed();
    }
}

fn report(group: &str, id: &str, elapsed: Duration, throughput: Option<Throughput>) {
    let label = if group.is_empty() {
        id.to_owned()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) if elapsed.as_secs_f64() > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if elapsed.as_secs_f64() > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / elapsed.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("bench {label:<50} {elapsed:>12?}{rate}");
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness always runs once.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; this harness always runs once.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Attach a throughput volume to subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        report(&self.name, &id.into_id(), bencher.elapsed, self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(&self.name, &id.into_id(), bencher.elapsed, self.throughput);
        self
    }

    /// End the group (all reporting already happened inline).
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility with criterion's CLI handling.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        report("", &id.into_id(), bencher.elapsed, None);
        self
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_each_routine_once() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &n| {
            b.iter_batched(|| n, |x| runs += x, BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(runs, 8);
    }
}
