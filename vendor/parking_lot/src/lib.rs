//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives behind parking_lot's
//! non-poisoning API: `lock()`/`read()`/`write()` return guards directly
//! instead of `Result`s. A panicked holder simply passes the data on
//! (poison is swallowed), which matches parking_lot's observable
//! behavior closely enough for this workspace.

use std::sync::{self, TryLockError};

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot's infallible guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard (blocks; never errors).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard (blocks; never errors).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's infallible guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (blocks; never errors).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(&*m.lock(), "ab");
    }
}
