//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the serialization contract the workspace actually relies on,
//! built around a JSON value tree instead of serde's visitor machinery:
//!
//! - [`Serialize`] converts a value into a [`Value`] tree,
//! - [`Deserialize`] reconstructs a value from a [`Value`] tree,
//! - the `derive` feature re-exports `#[derive(Serialize, Deserialize)]`
//!   from the vendored `serde_derive` proc-macro crate (named-field
//!   structs, newtype/tuple structs, and externally-tagged enums, with
//!   `#[serde(skip)]` support),
//! - [`Value`] knows how to print and parse JSON text (used by the
//!   vendored `serde_json` facade).
//!
//! Determinism matters more than speed here: map entries are emitted in
//! sorted key order and sets in sorted element order, so snapshot files
//! are byte-identical across runs.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error (a message, like `serde_json`'s).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON document tree.
///
/// Unsigned and signed integers are distinct variants so `u64` values
/// (e.g. full-range dedup fingerprints) round-trip exactly instead of
/// being squeezed through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric payload widened to `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Numeric payload as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::I64(n) => Some(*n),
            Value::F64(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entry list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// `(key, value)` of a single-entry object (externally-tagged enums).
    pub fn as_single_entry(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Object(entries) if entries.len() == 1 => {
                Some((entries[0].0.as_str(), &entries[0].1))
            }
            _ => None,
        }
    }

    // ---- JSON text output ------------------------------------------

    /// Append compact JSON text to `out`.
    pub fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(n) => write_f64(*n, out),
            Value::Str(s) => write_escaped(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Append pretty-printed JSON text (two-space indent) to `out`.
    pub fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(entries) if !entries.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    // ---- JSON text input -------------------------------------------

    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse_json(input: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::custom(format!(
                "trailing characters at byte {}",
                p.pos
            )));
        }
        Ok(value)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_f64(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; serde_json emits null too.
        out.push_str("null");
        return;
    }
    let s = format!("{n}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        // Keep the float/integer distinction visible in the text.
        out.push_str(".0");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!("invalid token at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::custom("recursion depth exceeded"));
        }
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value(depth + 1)?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error::custom(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected input at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in number"))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if n <= i64::MAX as u64 + 1 {
                        return Ok(Value::I64((n as i64).wrapping_neg()));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number '{text}'")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut chunk_start = self.pos;
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    out.push_str(self.utf8_chunk(chunk_start)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.utf8_chunk(chunk_start)?);
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                    chunk_start = self.pos;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn utf8_chunk(&self, start: usize) -> Result<&'a str, Error> {
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid utf-8 in string"))
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let code =
            u32::from_str_radix(text, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }
}

// ---- Serialize / Deserialize ---------------------------------------

/// Convert a value into a [`Value`] tree.
pub trait Serialize {
    /// The [`Value`] representation of `self`.
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse `self` out of `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {v}")))
    }
}

macro_rules! unsigned_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
unsigned_impls!(u8, u16, u32, u64, usize);

macro_rules! signed_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::I64(n)
                } else {
                    Value::U64(n as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v}")))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
signed_impls!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Round-trip of a non-finite float (serialized as null).
            Value::Null => Ok(f64::NAN),
            _ => v
                .as_f64()
                .ok_or_else(|| Error::custom(format!("expected number, got {v}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact; the narrowing cast on deserialize recovers
        // the original f32 bit-for-bit (for finite values).
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! tuple_impls {
    ($(($len:literal => $($idx:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected {}-tuple, got {} elements",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )+};
}
tuple_impls!(
    (1 => 0 A),
    (2 => 0 A, 1 B),
    (3 => 0 A, 1 B, 2 C),
    (4 => 0 A, 1 B, 2 C, 3 D),
);

/// Types usable as JSON object keys (strings and integers).
pub trait MapKey: Sized {
    /// Encode as a JSON object key.
    fn to_key(&self) -> String;
    /// Decode from a JSON object key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse()
                    .map_err(|_| Error::custom(format!("invalid integer key '{s}'")))
            }
        }
    )*};
}
int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + Eq + Hash,
    V: Deserialize,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v}")))?;
        let mut map = HashMap::with_capacity_and_hasher(entries.len(), S::default());
        for (k, item) in entries {
            map.insert(K::from_key(k)?, V::from_value(item)?);
        }
        Ok(map)
    }
}

impl<T: Serialize + Ord, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::to_value).collect())
    }
}

impl<T, S> Deserialize for HashSet<T, S>
where
    T: Deserialize + Eq + Hash,
    S: BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?;
        let mut set = HashSet::with_capacity_and_hasher(items.len(), S::default());
        for item in items {
            set.insert(T::from_value(item)?);
        }
        Ok(set)
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Key order is already sorted; JSON keys are the MapKey encoding,
        // which is order-preserving for strings (the only keys the
        // workspace uses with BTreeMap).
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: MapKey + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {v}")))?;
        let mut map = BTreeMap::new();
        for (k, item) in entries {
            map.insert(K::from_key(k)?, V::from_value(item)?);
        }
        Ok(map)
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {v}")))?;
        let mut set = BTreeSet::new();
        for item in items {
            set.insert(T::from_value(item)?);
        }
        Ok(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        Value::parse_json(&v.to_string()).unwrap()
    }

    #[test]
    fn scalar_round_trips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::U64(u64::MAX),
            Value::I64(-42),
            Value::F64(0.5),
            Value::F64(1.0),
            Value::Str("he\"llo\n\\ wörld \u{1F600}".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
    }

    #[test]
    fn nested_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::U64(1), Value::Null])),
            (
                "b".into(),
                Value::Object(vec![("x".into(), Value::F64(-2.5))]),
            ),
        ]);
        assert_eq!(roundtrip(&v), v);
        let mut pretty = String::new();
        v.write_pretty(&mut pretty, 0);
        assert_eq!(Value::parse_json(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse_json("not json").is_err());
        assert!(Value::parse_json("{\"a\":1,}").is_err());
        assert!(Value::parse_json("[1 2]").is_err());
        assert!(Value::parse_json("{\"a\":1} x").is_err());
    }

    #[test]
    fn containers_round_trip() {
        let mut m: HashMap<u32, u64> = HashMap::new();
        m.insert(7, u64::MAX);
        m.insert(1, 3);
        let v = m.to_value();
        // Sorted key order for deterministic output.
        assert_eq!(v.to_string(), "{\"1\":3,\"7\":18446744073709551615}");
        let back: HashMap<u32, u64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);

        let s: HashSet<(u32, u64)> = [(2, 9), (1, 8)].into_iter().collect();
        let back: HashSet<(u32, u64)> = Deserialize::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn f32_round_trip_is_exact() {
        for f in [0.1f32, -3.25, 1e-20, f32::MAX, 0.3] {
            let v = f.to_value();
            let back = f32::from_value(&roundtrip(&v)).unwrap();
            assert_eq!(back.to_bits(), f.to_bits());
        }
    }
}
