//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: [`Rng`] with `gen`,
//! `gen_bool` and `gen_range`, [`SeedableRng::seed_from_u64`], and the
//! [`rngs::StdRng`]/[`rngs::SmallRng`] generator types. Both generators
//! are xoshiro256++ seeded through splitmix64 — deterministic across
//! platforms and plenty good for synthetic-world generation and tests.
//! Streams do **not** match the real `rand` crate's output; everything in
//! this workspace only relies on determinism per seed, not on specific
//! values.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Element types uniformly samplable from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Ranges samplable by [`Rng::gen_range`]. The element type is a direct
/// type parameter and there is a single blanket impl per range shape
/// (as in the real `rand`), so integer-literal ranges infer their type
/// from how the sampled value is used.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_inclusive(low, high, rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "empty range in gen_range");
                let span = (high as i128).wrapping_sub(low as i128) as u64;
                // Multiply-shift rejection-free mapping is fine here: the
                // workspace samples tiny spans where the bias (< 2^-64 per
                // unit) is irrelevant.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(v as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low <= high, "empty inclusive range in gen_range");
                let span = (high as i128).wrapping_sub(low as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * (span as u128 + 1)) >> 64) as u64;
                low.wrapping_add(v as $t)
            }
        }
    )*};
}
int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                assert!(low < high, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                // The endpoint has measure zero; reuse the half-open draw.
                assert!(low <= high, "empty inclusive range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                low + unit * (high - low)
            }
        }
    )*};
}
float_uniform!(f32, f64);

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Uniform value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for v in &mut s {
            *v = splitmix64(&mut sm);
        }
        // All-zero state would be degenerate; splitmix cannot produce it
        // from any seed, but guard anyway.
        if s.iter().all(|&v| v == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Deterministic general-purpose generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Small fast generator; identical engine in this vendored build.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Distinct stream from StdRng for the same seed.
            SmallRng(Xoshiro256::from_u64(seed ^ 0xA076_1D64_78BD_642F))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
