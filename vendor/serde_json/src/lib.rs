//! Offline vendored stand-in for `serde_json`.
//!
//! A thin JSON text front-end over the vendored `serde` crate's value
//! tree: `to_string`/`to_string_pretty`/`to_writer`, `from_str`/
//! `from_reader`, the [`json!`] macro, and a re-exported [`Value`].

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;

pub use serde::Value;

/// Error produced by JSON serialization or parsing.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_compact(&mut out);
    Ok(out)
}

/// Serialize `value` to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.to_value().write_pretty(&mut out, 0);
    Ok(out)
}

/// Serialize `value` as compact JSON into `writer`.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Deserialize a `T` from a complete JSON document.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = Value::parse_json(input)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize a `T` from a reader holding one JSON document.
pub fn from_reader<R: io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Convert any serializable value into a [`Value`] (used by [`json!`]).
#[doc(hidden)]
pub fn __to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Build a [`Value`] from JSON-like syntax: objects, arrays, `null`,
/// and arbitrary serializable Rust expressions as leaves.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => {{
        #[allow(unused_mut)]
        let mut __arr: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::from([]);
        $crate::json_elems!(__arr; $($tt)*);
        $crate::Value::Array(__arr)
    }};
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __obj: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
            ::std::vec::Vec::from([]);
        $crate::json_entries!(__obj; $($tt)*);
        $crate::Value::Object(__obj)
    }};
    ($other:expr) => { $crate::__to_value(&$other) };
}

/// Internal: munch `"key": value` pairs of a [`json!`] object.
#[doc(hidden)]
#[macro_export]
macro_rules! json_entries {
    ($obj:ident; ) => {};
    ($obj:ident; $key:tt : null $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::Value::Null));
        $crate::json_entries!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:tt : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_entries!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:tt : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $obj.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_entries!($obj; $($($rest)*)?);
    };
    ($obj:ident; $key:tt : $value:expr , $($rest:tt)*) => {
        $obj.push(($key.to_string(), $crate::__to_value(&$value)));
        $crate::json_entries!($obj; $($rest)*);
    };
    ($obj:ident; $key:tt : $value:expr) => {
        $obj.push(($key.to_string(), $crate::__to_value(&$value)));
    };
}

/// Internal: munch the elements of a [`json!`] array.
#[doc(hidden)]
#[macro_export]
macro_rules! json_elems {
    ($arr:ident; ) => {};
    ($arr:ident; null $(, $($rest:tt)*)?) => {
        $arr.push($crate::Value::Null);
        $crate::json_elems!($arr; $($($rest)*)?);
    };
    ($arr:ident; { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!({ $($inner)* }));
        $crate::json_elems!($arr; $($($rest)*)?);
    };
    ($arr:ident; [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $arr.push($crate::json!([ $($inner)* ]));
        $crate::json_elems!($arr; $($($rest)*)?);
    };
    ($arr:ident; $value:expr , $($rest:tt)*) => {
        $arr.push($crate::__to_value(&$value));
        $crate::json_elems!($arr; $($rest)*);
    };
    ($arr:ident; $value:expr) => {
        $arr.push($crate::__to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let rows = vec![vec!["a".to_string()], vec!["b".to_string()]];
        let v = json!({
            "name": "x",
            "count": 3u64,
            "nested": { "pi": 3.5, "none": null },
            "rows": rows,
            "list": [1u32, 2u32, { "deep": true }],
        });
        let text = v.to_string();
        assert!(text.contains("\"count\":3"));
        assert!(text.contains("\"pi\":3.5"));
        assert!(text.contains("\"none\":null"));
        assert!(text.contains("\"deep\":true"));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_round_trip() {
        let v = json!({ "msg": "line1\nline2 \"quoted\" ümlaut" });
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({ "a": [1u8, 2u8], "b": { "c": false } });
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn from_str_rejects_garbage() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\":1} trailing").is_err());
    }
}
