//! Offline vendored stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls for the vendored `serde`
//! crate's value-tree traits. The input item is parsed directly from the
//! `proc_macro` token stream (no syn/quote available offline) and the
//! impl is emitted as source text.
//!
//! Supported shapes — exactly what this workspace derives:
//! - structs with named fields (`#[serde(skip)]` honored: omitted on
//!   serialize, `Default::default()` on deserialize),
//! - newtype and tuple structs (newtype is transparent, tuples are
//!   arrays),
//! - enums with unit, newtype, tuple, and struct variants, externally
//!   tagged (`"Variant"` / `{"Variant": ...}`).
//!
//! Generics and non-`skip` serde attributes are rejected with a
//! `compile_error!` so misuse fails loudly instead of silently.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => match mode {
            Mode::Ser => gen_serialize(&item),
            Mode::De => gen_deserialize(&item),
        },
        Err(msg) => format!("::std::compile_error!({msg:?});"),
    };
    code.parse()
        .unwrap_or_else(|e| panic!("vendored serde_derive produced invalid code: {e}"))
}

// ---- item model -----------------------------------------------------

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<bool>), // per-field skip flags
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---- token cursor ---------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            toks: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.bump() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consume leading attributes; report whether `#[serde(skip)]` was
    /// among them. Non-`skip` serde attributes are an error.
    fn skip_attrs(&mut self) -> Result<bool, String> {
        let mut skip = false;
        loop {
            let is_attr = matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#');
            if !is_attr {
                return Ok(skip);
            }
            self.pos += 1;
            let group = match self.bump() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => return Err(format!("malformed attribute: {other:?}")),
            };
            let toks: Vec<TokenTree> = group.stream().into_iter().collect();
            let is_serde =
                matches!(toks.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
            if !is_serde {
                continue; // doc comments, #[default], other derives' helpers
            }
            let inner = match toks.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
                _ => return Err("malformed #[serde(...)] attribute".to_string()),
            };
            for tok in inner {
                match &tok {
                    TokenTree::Ident(id) if id.to_string() == "skip" => skip = true,
                    TokenTree::Punct(p) if p.as_char() == ',' => {}
                    other => {
                        return Err(format!(
                            "vendored serde_derive only supports #[serde(skip)], found {other}"
                        ))
                    }
                }
            }
        }
    }

    /// Consume an optional `pub` / `pub(...)` visibility.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            self.pos += 1;
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.pos += 1;
            }
        }
    }

    /// Consume type (or expression) tokens up to a top-level `,`,
    /// tracking `<`/`>` nesting so generic arguments don't end the field.
    fn skip_until_comma(&mut self) {
        let mut angle = 0i32;
        while let Some(tok) = self.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

// ---- parsing --------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.skip_attrs()?;
    c.skip_vis();
    let keyword = c.expect_ident()?;
    let name = c.expect_ident()?;
    if matches!(c.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generics (type {name})"
        ));
    }
    let kind = match keyword.as_str() {
        "struct" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Kind::NamedStruct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let skips = parse_tuple_fields(g.stream())?;
                Kind::TupleStruct(skips)
            }
            _ => return Err(format!("unsupported struct shape for {name}")),
        },
        "enum" => match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("malformed enum {name}")),
        },
        other => return Err(format!("cannot derive for `{other}` items")),
    };
    Ok(Item { name, kind })
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let skip = c.skip_attrs()?;
        if c.at_end() {
            break;
        }
        c.skip_vis();
        let name = c.expect_ident()?;
        if !c.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        c.skip_until_comma();
        c.eat_punct(',');
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Result<Vec<bool>, String> {
    let mut c = Cursor::new(stream);
    let mut skips = Vec::new();
    while !c.at_end() {
        let skip = c.skip_attrs()?;
        if c.at_end() {
            break;
        }
        c.skip_vis();
        c.skip_until_comma();
        c.eat_punct(',');
        skips.push(skip);
    }
    Ok(skips)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.skip_attrs()?;
        if c.at_end() {
            break;
        }
        let name = c.expect_ident()?;
        let kind = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = parse_tuple_fields(g.stream())?.len();
                c.pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.pos += 1;
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        if c.eat_punct('=') {
            c.skip_until_comma(); // explicit discriminant
        }
        c.eat_punct(',');
        variants.push(Variant { name, kind });
    }
    Ok(variants)
}

// ---- codegen: Serialize --------------------------------------------

const VALUE: &str = "::serde::Value";
const TO_VALUE: &str = "::serde::Serialize::to_value";
const FROM_VALUE: &str = "::serde::Deserialize::from_value";

fn entries_literal(pairs: &[(String, String)]) -> String {
    // Typed binding so an empty entry list still infers.
    let mut out = String::from(
        "{ let __entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::from([",
    );
    for (key, value_expr) in pairs {
        out.push_str(&format!(
            "(::std::string::String::from({key:?}), {value_expr}),"
        ));
    }
    out.push_str(&format!("]); {VALUE}::Object(__entries) }}"));
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let pairs: Vec<(String, String)> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| (f.name.clone(), format!("{TO_VALUE}(&self.{})", f.name)))
                .collect();
            entries_literal(&pairs)
        }
        Kind::TupleStruct(skips) => {
            let live: Vec<usize> = (0..skips.len()).filter(|&i| !skips[i]).collect();
            if live.len() == 1 {
                format!("{TO_VALUE}(&self.{})", live[0])
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|i| format!("{TO_VALUE}(&self.{i})"))
                    .collect();
                format!(
                    "{VALUE}::Array(::std::vec::Vec::from([{}]))",
                    items.join(",")
                )
            }
        }
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        arms.push_str(&format!(
                            "{name}::{vname} => {VALUE}::Str(::std::string::String::from({vname:?})),"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            format!("{TO_VALUE}(__f0)")
                        } else {
                            let items: Vec<String> =
                                binds.iter().map(|b| format!("{TO_VALUE}({b})")).collect();
                            format!(
                                "{VALUE}::Array(::std::vec::Vec::from([{}]))",
                                items.join(",")
                            )
                        };
                        let entry = entries_literal(&[(vname.clone(), inner)]);
                        arms.push_str(&format!("{name}::{vname}({}) => {entry},", binds.join(",")));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pairs: Vec<(String, String)> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| (f.name.clone(), format!("{TO_VALUE}({})", f.name)))
                            .collect();
                        let inner = entries_literal(&pairs);
                        let entry = entries_literal(&[(vname.clone(), inner)]);
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => {entry},",
                            binds.join(",")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

// ---- codegen: Deserialize ------------------------------------------

fn named_field_init(fields: &[Field], source: &str, context: &str) -> String {
    let mut init = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            init.push_str(&format!("{fname}: ::std::default::Default::default(),"));
        } else {
            let missing = format!("missing field `{fname}` in {context}");
            init.push_str(&format!(
                "{fname}: match {source}.get({fname:?}) {{\
                 ::std::option::Option::Some(__x) => {FROM_VALUE}(__x)?,\
                 ::std::option::Option::None => return ::std::result::Result::Err(\
                 ::serde::Error::custom({missing:?})),\
                 }},"
            ));
        }
    }
    init
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let init = named_field_init(fields, "__v", name);
            format!("::std::result::Result::Ok({name} {{ {init} }})")
        }
        Kind::TupleStruct(skips) => {
            if skips.len() == 1 && !skips[0] {
                format!("::std::result::Result::Ok({name}({FROM_VALUE}(__v)?))")
            } else {
                let live_count = skips.iter().filter(|&&s| !s).count();
                let err = format!("expected {live_count}-element array for {name}");
                let mut init = String::new();
                let mut idx = 0usize;
                for skip in skips {
                    if *skip {
                        init.push_str("::std::default::Default::default(),");
                    } else {
                        init.push_str(&format!("{FROM_VALUE}(&__items[{idx}])?,"));
                        idx += 1;
                    }
                }
                format!(
                    "{{ let __items = __v.as_array().ok_or_else(|| ::serde::Error::custom({err:?}))?;\
                     if __items.len() != {live_count} {{\
                     return ::std::result::Result::Err(::serde::Error::custom({err:?})); }}\
                     ::std::result::Result::Ok({name}({init})) }}"
                )
            }
        }
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                    }
                    VariantKind::Tuple(arity) => {
                        let expr = if *arity == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vname}({FROM_VALUE}(__inner)?))"
                            )
                        } else {
                            let err = format!("expected {arity}-element array for {name}::{vname}");
                            let items: Vec<String> = (0..*arity)
                                .map(|i| format!("{FROM_VALUE}(&__items[{i}])?"))
                                .collect();
                            format!(
                                "{{ let __items = __inner.as_array().ok_or_else(|| \
                                 ::serde::Error::custom({err:?}))?;\
                                 if __items.len() != {arity} {{\
                                 return ::std::result::Result::Err(::serde::Error::custom({err:?})); }}\
                                 ::std::result::Result::Ok({name}::{vname}({})) }}",
                                items.join(",")
                            )
                        };
                        data_arms.push_str(&format!("{vname:?} => {expr},"));
                    }
                    VariantKind::Named(fields) => {
                        let init = named_field_init(fields, "__inner", &format!("{name}::{vname}"));
                        data_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {init} }}),"
                        ));
                    }
                }
            }
            let unknown_unit = format!("unknown variant `{{}}` of {name}");
            let unknown_data = format!("unknown variant `{{}}` of {name}");
            let expected = format!("expected string or single-entry object for enum {name}");
            format!(
                "if let ::std::option::Option::Some(__name) = __v.as_str() {{\
                 return match __name {{ {unit_arms} __other => ::std::result::Result::Err(\
                 ::serde::Error::custom(::std::format!({unknown_unit:?}, __other))), }};\
                 }}\
                 if let ::std::option::Option::Some((__key, __inner)) = __v.as_single_entry() {{\
                 return match __key {{ {data_arms} __other => ::std::result::Result::Err(\
                 ::serde::Error::custom(::std::format!({unknown_data:?}, __other))), }};\
                 }}\
                 ::std::result::Result::Err(::serde::Error::custom({expected:?}))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
