//! Offline vendored stand-in for `proptest`.
//!
//! Implements the strategy combinators and macros this workspace's
//! property tests use: numeric range strategies, regex-subset string
//! strategies, `Just`, `any::<T>()`, tuples, `collection::vec`,
//! `option::of`, `prop_oneof!`, `.prop_map(..)`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its inputs via the assertion message and its case seed), and input
//! generation is deterministic per test name, so failures reproduce
//! exactly across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::rc::Rc;

/// RNG handed to strategies (deterministic per test and case).
pub type TestRng = StdRng;

/// How a test case ended short of success.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// The generated inputs don't satisfy a `prop_assume!` precondition.
    Reject(String),
}

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (the `with_cases` subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one `proptest!`-generated test.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

impl TestRunner {
    /// Runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Run cases until `config.cases` succeed; panic on the first
    /// failure. Rejected cases (via `prop_assume!`) are retried, with a
    /// bounded attempt budget so a never-satisfied assumption cannot
    /// loop forever.
    pub fn run_cases<F>(&mut self, body: &mut F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let name_seed = fnv1a(self.name.as_bytes());
        let max_attempts = (self.config.cases as u64) * 10 + 100;
        let mut successes = 0u32;
        let mut rejects = 0u64;
        for attempt in 0..max_attempts {
            if successes >= self.config.cases {
                return;
            }
            let mut rng =
                StdRng::seed_from_u64(name_seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match body(&mut rng) {
                Ok(()) => successes += 1,
                Err(TestCaseError::Reject(_)) => rejects += 1,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest failure in `{}` (case attempt {attempt}): {msg}",
                    self.name
                ),
            }
        }
        if successes == 0 && rejects > 0 {
            panic!(
                "proptest `{}`: every generated input was rejected by prop_assume!",
                self.name
            );
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---- Strategy core --------------------------------------------------

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy (`prop_oneof!` arms, heterogeneous storage).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased arms (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one arm.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.arms.len());
        self.arms[idx].sample(rng)
    }
}

// Numeric ranges are strategies over their element type.
macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! range_incl_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_incl_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($($s:ident),+);+ $(;)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.sample(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    A;
    A, B;
    A, B, C;
    A, B, C, D;
    A, B, C, D, E;
    A, B, C, D, E, F;
);

// ---- any::<T>() -----------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_bool(0.5)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e9f64..1.0e9)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e9f32..1.0e9)
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

// ---- string strategies (regex subset) -------------------------------

/// `&str` regex patterns are strategies producing matching `String`s.
///
/// Supported subset (everything the workspace's tests use): literal
/// characters, `.`, `[...]` classes with ranges, and `{m}` / `{m,n}`
/// repetition.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported regex pattern {self:?}: {e}"));
        let mut out = String::new();
        for atom in &atoms {
            let count = if atom.min == atom.max {
                atom.min
            } else {
                rng.gen_range(atom.min..=atom.max)
            };
            for _ in 0..count {
                out.push(atom.chars[rng.gen_range(0..atom.chars.len())]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

// '.' matches any printable ASCII character here (real proptest draws
// from all of char; ASCII keeps failure output readable and is enough
// for the text-processing properties under test).
fn dot_chars() -> Vec<char> {
    (0x20u8..0x7f).map(|b| b as char).collect()
}

fn parse_pattern(pattern: &str) -> Result<Vec<Atom>, String> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let set = match c {
            '.' => dot_chars(),
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let item = chars.next().ok_or("unterminated class")?;
                    match item {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let hi = chars.next().unwrap();
                            let lo = prev.take().unwrap();
                            if lo as u32 > hi as u32 {
                                return Err(format!("bad range {lo}-{hi}"));
                            }
                            // `lo` itself is already in the set.
                            for code in (lo as u32 + 1)..=(hi as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    set.push(ch);
                                }
                            }
                        }
                        other => {
                            set.push(other);
                            prev = Some(other);
                        }
                    }
                }
                if set.is_empty() {
                    return Err("empty character class".to_string());
                }
                set
            }
            '\\' => vec![chars.next().ok_or("trailing backslash")?],
            '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                return Err(format!("unsupported regex metacharacter '{c}'"));
            }
            literal => vec![literal],
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            loop {
                let d = chars.next().ok_or("unterminated repetition")?;
                if d == '}' {
                    break;
                }
                spec.push(d);
            }
            if let Some((lo, hi)) = spec.split_once(',') {
                let lo: usize = lo.trim().parse().map_err(|_| "bad repetition")?;
                let hi: usize = hi.trim().parse().map_err(|_| "bad repetition")?;
                (lo, hi)
            } else {
                let n: usize = spec.trim().parse().map_err(|_| "bad repetition")?;
                (n, n)
            }
        } else {
            (1, 1)
        };
        if min > max {
            return Err("repetition min exceeds max".to_string());
        }
        atoms.push(Atom {
            chars: set,
            min,
            max,
        });
    }
    Ok(atoms)
}

// ---- collection / option modules ------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Element-count bounds for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_exclusive: r.end.max(r.start + 1),
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<V>`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Output of [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

// ---- macros ---------------------------------------------------------

/// Define property tests: optional `#![proptest_config(..)]`, then
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal: expand each test item of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; ) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __runner = $crate::TestRunner::new(__config, stringify!($name));
            __runner.run_cases(&mut |__rng: &mut $crate::TestRng|
                -> ::std::result::Result<(), $crate::TestCaseError> {
                $(let $arg = $crate::Strategy::sample(&($strat), __rng);)*
                $body
                ::std::result::Result::Ok(())
            });
        }
        $crate::__proptest_items!($cfg; $($rest)*);
    };
}

/// Assert a condition inside `proptest!`, failing the case (not
/// panicking directly) so the runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values are equal inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

/// Assert two values differ inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The usual glob-import surface.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        use rand::SeedableRng;
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::sample(&".{0,40}", &mut rng);
            assert!(t.len() <= 40);
            let u = Strategy::sample(&"[a-zA-Z0-9 .,]{0,10}", &mut rng);
            assert!(u
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '.' || c == ','));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_bounds(
            xs in crate::collection::vec(0u32..10, 2..5),
            flag in any::<bool>(),
            opt in crate::option::of(0u32..3),
            word in "[ab]{2,4}",
        ) {
            prop_assert!((2..5).contains(&xs.len()));
            prop_assert!(xs.iter().all(|&x| x < 10));
            let _ = flag;
            if let Some(v) = opt {
                prop_assert!(v < 3);
            }
            prop_assert!((2..=4).contains(&word.len()));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..5).prop_map(|n| n * 2),
                Just(99u32),
            ],
        ) {
            prop_assert!(v == 99 || v < 10);
            prop_assert_eq!(v % 2 == 0, v != 99);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest failure")]
    fn failing_property_panics() {
        let mut runner = crate::TestRunner::new(ProptestConfig::with_cases(8), "always_fails");
        runner.run_cases(&mut |_rng| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn deterministic_across_runs() {
        use rand::SeedableRng;
        let sample = || {
            let mut rng = crate::TestRng::seed_from_u64(42);
            let strat = crate::collection::vec((0u32..100, "[a-z]{1,5}"), 1..10);
            Strategy::sample(&strat, &mut rng)
        };
        assert_eq!(sample(), sample());
    }
}
