//! Offline vendored stand-in for `crossbeam`.
//!
//! Only the `channel` module's multi-producer/multi-consumer unbounded
//! channel is implemented — the one piece this workspace uses. Backed by
//! a `Mutex<VecDeque>` plus `Condvar` (std's `mpsc::Receiver` is not
//! cloneable, so it cannot serve as the MPMC backend).

/// MPMC channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Sending half; cloneable.
    pub struct Sender<T>(Arc<Shared<T>>);

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T>(Arc<Shared<T>>);

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails only when every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                // Wake blocked receivers so they can observe disconnect.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.ready.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.queue.lock().unwrap_or_else(|e| e.into_inner());
            match state.items.pop_front() {
                Some(item) => Ok(item),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of queued values right now.
        pub fn len(&self) -> usize {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fifo_then_disconnect() {
        let (tx, rx) = channel::unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn mpmc_across_threads() {
        let (tx, rx) = channel::unbounded::<u64>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let total: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, (0..100).sum());
    }
}
