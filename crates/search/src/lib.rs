//! The local search engine for result postprocessing (Section 3.6).
//!
//! "The result of a BINGO! crawl may be a database with several million
//! documents. The human user needs additional assistance for filtering
//! and analyzing such result sets." This crate provides:
//!
//! * an inverted index over the crawl database ([`index`]),
//! * exact and topic-filtered keyword search with relevance ranking by
//!   cosine similarity, classifier confidence, HITS authority, or any
//!   weighted linear combination ([`rank`]),
//! * interactive relevance feedback: promote result documents to
//!   training data, retrain, re-classify the filtered set
//!   ([`feedback`]),
//! * cluster analysis suggesting new subclasses with tentative labels
//!   from the most characteristic cluster terms ([`cluster`]).

pub mod cluster;
pub mod feedback;
pub mod index;
pub mod live;
pub mod metrics;
pub mod rank;

pub use cluster::{suggest_subclasses, SubclassSuggestion};
pub use feedback::apply_feedback;
pub use index::{InvertedIndex, TermIndex};
pub use live::{IndexReader, IndexSnapshot, LiveIndex, LiveIndexObs};
pub use metrics::SearchMetrics;
pub use rank::{RankingScheme, SearchHit, TopicFilter};

use bingo_obs::WallTimer;
use bingo_store::DocumentStore;
use bingo_textproc::Vocabulary;

/// The search engine over a crawl result database.
pub struct SearchEngine {
    store: DocumentStore,
    index: InvertedIndex,
    metrics: Option<SearchMetrics>,
}

/// Query options.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Topic filter: exact, vague (subtree + borderline), or none.
    pub filter: TopicFilter,
    /// Ranking scheme.
    pub ranking: RankingScheme,
    /// Number of results.
    pub top_k: usize,
}

impl QueryOptions {
    /// Exact filtering at one topic node.
    pub fn exact_topic(topic: u32) -> Self {
        QueryOptions {
            filter: TopicFilter::Exact(topic),
            ..Default::default()
        }
    }
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions {
            filter: TopicFilter::Any,
            ranking: RankingScheme::Cosine,
            top_k: 10,
        }
    }
}

impl SearchEngine {
    /// Build the index over a crawl database.
    pub fn build(store: &DocumentStore) -> Self {
        SearchEngine::build_instrumented(store, None)
    }

    /// Build the index, optionally recording index size and build cost
    /// (and, later, query volume/latency) into `metrics`.
    pub fn build_instrumented(store: &DocumentStore, metrics: Option<SearchMetrics>) -> Self {
        let timer = WallTimer::start();
        let index = InvertedIndex::build(store);
        if let Some(m) = &metrics {
            timer.observe_ms(&m.index_build_wall_ms);
            m.index_docs.set(index.doc_count() as i64);
            m.index_terms.set(index.term_count() as i64);
        }
        SearchEngine {
            store: store.clone(),
            index,
            metrics,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// Keyword query with the given options. The query is tokenized and
    /// stemmed with the crawl's shared vocabulary; unknown terms are
    /// ignored.
    pub fn query(&self, vocab: &Vocabulary, text: &str, opts: &QueryOptions) -> Vec<SearchHit> {
        let timer = WallTimer::start();
        let query_terms = index::analyze_query(vocab, text);
        let hits = rank::rank(
            &self.store,
            &self.index,
            &query_terms,
            &opts.filter,
            opts.ranking,
            opts.top_k,
        );
        if let Some(m) = &self.metrics {
            m.queries.inc();
            m.hits_per_query.observe(hits.len() as u64);
            timer.observe_us(&m.query_wall_us);
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_store::DocumentRow;
    use bingo_textproc::{analyze_html, MimeType};

    /// A small crawl database: three ARIES docs (topic 1), two sports
    /// docs (topic 2), linked so that doc 1 is the authority.
    pub(crate) fn sample_store() -> (DocumentStore, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let store = DocumentStore::new();
        let texts: [(u64, u32, Option<u32>, f32, &str); 5] = [
            (
                1,
                1,
                Some(1),
                0.9,
                "aries recovery algorithm source code release logging",
            ),
            (
                2,
                2,
                Some(1),
                0.7,
                "aries logging recovery checkpoint undo redo",
            ),
            (
                3,
                3,
                Some(1),
                0.2,
                "recovery manager buffer transactions release",
            ),
            (
                4,
                4,
                Some(2),
                0.8,
                "football season championship team players",
            ),
            (5, 5, Some(2), 0.5, "basketball game score stadium release"),
        ];
        for (id, host, topic, conf, text) in texts {
            let doc = analyze_html(&format!("<p>{text}</p>"), &mut vocab);
            store
                .insert_document(DocumentRow {
                    id,
                    url: format!("http://h{host}.example/d{id}.html"),
                    host,
                    mime: MimeType::Html,
                    depth: 1,
                    title: format!("doc {id}"),
                    topic,
                    confidence: conf,
                    term_freqs: doc.term_freqs.iter().map(|&(t, f)| (t.0, f)).collect(),
                    size: text.len(),
                    fetched_at: 0,
                })
                .unwrap();
        }
        // Docs 2 and 3 (different hosts) point at doc 1: the authority.
        for from in [2u64, 3] {
            store.insert_link(bingo_store::LinkRow {
                from,
                to: 1,
                to_url: "http://h1.example/d1.html".into(),
            });
        }
        (store, vocab)
    }

    #[test]
    fn cosine_query_finds_relevant_docs() {
        let (store, vocab) = sample_store();
        let engine = SearchEngine::build(&store);
        let hits = engine.query(&vocab, "aries recovery", &QueryOptions::default());
        assert!(!hits.is_empty());
        assert!(hits[0].doc_id == 1 || hits[0].doc_id == 2);
        // Sports docs don't match at all.
        assert!(hits.iter().all(|h| h.doc_id != 4));
    }

    #[test]
    fn topic_filter_restricts_results() {
        let (store, vocab) = sample_store();
        let engine = SearchEngine::build(&store);
        let opts = QueryOptions {
            filter: TopicFilter::Exact(2),
            ..Default::default()
        };
        // "release" appears in topics 1 and 2; filter keeps only topic 2.
        let hits = engine.query(&vocab, "release", &opts);
        assert!(!hits.is_empty());
        assert!(hits.iter().all(|h| [4, 5].contains(&h.doc_id)));
    }

    #[test]
    fn confidence_ranking_orders_by_classifier() {
        let (store, vocab) = sample_store();
        let engine = SearchEngine::build(&store);
        let opts = QueryOptions {
            filter: TopicFilter::Exact(1),
            ranking: RankingScheme::Confidence,
            top_k: 3,
        };
        let hits = engine.query(&vocab, "recovery", &opts);
        let ids: Vec<u64> = hits.iter().map(|h| h.doc_id).collect();
        assert_eq!(ids, vec![1, 2, 3], "descending confidence 0.9/0.7/0.2");
    }

    #[test]
    fn authority_ranking_prefers_linked_doc() {
        let (store, vocab) = sample_store();
        let engine = SearchEngine::build(&store);
        let opts = QueryOptions {
            filter: TopicFilter::Exact(1),
            ranking: RankingScheme::Authority,
            top_k: 3,
        };
        let hits = engine.query(&vocab, "recovery", &opts);
        assert_eq!(hits[0].doc_id, 1, "doc 1 has all in-links");
    }

    #[test]
    fn combined_ranking_mixes_components() {
        let (store, vocab) = sample_store();
        let engine = SearchEngine::build(&store);
        let opts = QueryOptions {
            filter: TopicFilter::Exact(1),
            ranking: RankingScheme::Combined {
                cosine: 1.0,
                confidence: 1.0,
                authority: 1.0,
            },
            top_k: 3,
        };
        let hits = engine.query(&vocab, "aries recovery", &opts);
        assert_eq!(hits[0].doc_id, 1, "best on all three components");
        // Components are reported for trial-and-error experimentation.
        assert!(hits[0].cosine > 0.0);
        assert!(hits[0].confidence > 0.0);
        assert!(hits[0].authority > 0.0);
    }

    #[test]
    fn unknown_query_terms_yield_empty() {
        let (store, vocab) = sample_store();
        let engine = SearchEngine::build(&store);
        let hits = engine.query(&vocab, "zebrafish genomics", &QueryOptions::default());
        assert!(hits.is_empty());
    }

    #[test]
    fn top_k_truncates() {
        let (store, vocab) = sample_store();
        let engine = SearchEngine::build(&store);
        let opts = QueryOptions {
            top_k: 1,
            ..Default::default()
        };
        let hits = engine.query(&vocab, "recovery release", &opts);
        assert_eq!(hits.len(), 1);
    }
}
