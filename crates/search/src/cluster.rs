//! Cluster-based subclass suggestion (Section 3.6).
//!
//! "For information portal generation, a typical problem is that the
//! results in a given class are heterogeneous. BINGO! can perform a
//! cluster analysis on the results of one class and suggest creating new
//! subclasses with tentative labels automatically drawn from the most
//! characteristic terms of these subclasses. The user can experiment
//! with different numbers of clusters, or BINGO! can choose the number
//! of clusters such that an entropy-based cluster impurity measure is
//! minimized."

use bingo_graph::PageId;
use bingo_ml::kmeans::choose_k_by_impurity;
use bingo_store::DocumentStore;
use bingo_textproc::{SparseVector, TermId, Vocabulary};

/// One suggested subclass.
#[derive(Debug, Clone)]
pub struct SubclassSuggestion {
    /// Tentative label: the most characteristic stems of the cluster.
    pub label: Vec<String>,
    /// Member documents.
    pub members: Vec<PageId>,
}

/// Cluster the documents of `topic` and suggest subclasses. `k_range`
/// bounds the number-of-clusters search; the entropy-impurity-minimizing
/// k wins. Returns `None` when the class holds too few documents.
pub fn suggest_subclasses(
    store: &DocumentStore,
    vocab: &Vocabulary,
    topic: u32,
    k_range: std::ops::RangeInclusive<usize>,
    label_terms: usize,
) -> Option<Vec<SubclassSuggestion>> {
    let doc_ids = store.topic_documents(topic);
    if doc_ids.len() < *k_range.start() {
        return None;
    }
    let vectors: Vec<SparseVector> = doc_ids
        .iter()
        .filter_map(|&id| store.document(id))
        .map(|row| {
            SparseVector::from_pairs(
                row.term_freqs
                    .iter()
                    .map(|&(t, f)| (t, (1.0 + (f as f32).ln())))
                    .collect(),
            )
            .normalized()
        })
        .collect();

    let (_k, result) = choose_k_by_impurity(&vectors, k_range, 0.05, 42)?;

    let mut suggestions: Vec<SubclassSuggestion> = (0..result.centroids.len())
        .map(|c| SubclassSuggestion {
            label: result
                .label_features(c, label_terms)
                .into_iter()
                .filter(|&f| (f as usize) < vocab.len())
                .map(|f| vocab.term(TermId(f)).to_string())
                .collect(),
            members: Vec::new(),
        })
        .collect();
    for (i, &cluster) in result.assignments.iter().enumerate() {
        suggestions[cluster].members.push(doc_ids[i]);
    }
    suggestions.retain(|s| !s.members.is_empty());
    Some(suggestions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_store::DocumentRow;
    use bingo_textproc::{analyze_html, MimeType};

    /// A heterogeneous "database research" class: half the docs are about
    /// recovery, half about data mining.
    fn heterogeneous_store() -> (DocumentStore, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let store = DocumentStore::new();
        let mut add = |id: u64, text: &str| {
            let doc = analyze_html(&format!("<p>{text}</p>"), &mut vocab);
            store
                .insert_document(DocumentRow {
                    id,
                    url: format!("http://h/d{id}"),
                    host: 1,
                    mime: MimeType::Html,
                    depth: 0,
                    title: String::new(),
                    topic: Some(1),
                    confidence: 0.5,
                    term_freqs: doc.term_freqs.iter().map(|&(t, f)| (t.0, f)).collect(),
                    size: 0,
                    fetched_at: 0,
                })
                .unwrap();
        };
        for i in 0..6 {
            add(
                i,
                &format!("recovery logging checkpoint aries undo redo transactions {i}"),
            );
            add(
                100 + i,
                &format!("mining clustering patterns knowledge discovery datasets olap {i}"),
            );
        }
        (store, vocab)
    }

    #[test]
    fn suggests_two_topical_subclasses() {
        let (store, vocab) = heterogeneous_store();
        let suggestions = suggest_subclasses(&store, &vocab, 1, 1..=4, 4).unwrap();
        assert_eq!(suggestions.len(), 2, "two latent subtopics");
        // Each cluster's label must be topically pure.
        for s in &suggestions {
            let text = s.label.join(" ");
            let is_recovery = text.contains("recoveri") || text.contains("log");
            let is_mining = text.contains("mine") || text.contains("cluster");
            assert!(
                is_recovery ^ is_mining,
                "mixed or empty label: {:?}",
                s.label
            );
            assert_eq!(s.members.len(), 6);
        }
    }

    #[test]
    fn too_few_documents_yields_none() {
        let store = DocumentStore::new();
        let vocab = Vocabulary::new();
        assert!(suggest_subclasses(&store, &vocab, 1, 2..=3, 3).is_none());
    }
}
