//! Inverted index over the crawl database.

use bingo_graph::PageId;
use bingo_store::DocumentStore;
use bingo_textproc::fxhash::FxHashMap;
use bingo_textproc::{porter_stem, Tokenizer, Vocabulary};

/// The read interface the ranking code needs from an index: document
/// frequencies, postings and precomputed norms. Implemented by the batch
/// [`InvertedIndex`] and by the live snapshot index
/// ([`crate::live::IndexSnapshot`]), so both answer queries through the
/// same [`crate::rank::rank`] path with identical scoring.
pub trait TermIndex {
    /// Number of indexed documents.
    fn doc_count(&self) -> u64;

    /// Number of documents containing `term` (0 when unknown).
    fn df(&self, term: u32) -> u64;

    /// L2 norm of a document's tf·idf vector (0 when not indexed).
    fn norm(&self, doc: PageId) -> f32;

    /// Visit every `(doc, tf)` posting of `term`. Each indexed document
    /// appears at most once per term; visit order is unspecified.
    fn for_each_posting(&self, term: u32, f: &mut dyn FnMut(PageId, u32));

    /// Logarithmically dampened idf of a term. The single definition
    /// both implementations share — norms and query weights must agree.
    fn idf(&self, term: u32) -> f32 {
        let df = self.df(term) as f32;
        if df == 0.0 {
            0.0
        } else {
            (1.0 + self.doc_count() as f32 / df).ln()
        }
    }
}

/// Weight of one term occurrence under the index's tf·idf scheme.
pub(crate) fn tf_weight(tf: u32, idf: f32) -> f32 {
    (1.0 + (tf as f32).ln()) * idf
}

/// L2 norm of one document's tf·idf vector, accumulated in the row's
/// stored term order. Both the batch build and the live snapshot index
/// use this exact routine, so incrementally built indexes are
/// bit-identical to a batch rebuild (float addition is not associative —
/// a shared accumulation order is what makes the equivalence exact).
pub(crate) fn doc_norm<I: TermIndex + ?Sized>(index: &I, term_freqs: &[(u32, u32)]) -> f32 {
    let mut sq = 0.0f32;
    for &(term, tf) in term_freqs {
        let w = tf_weight(tf, index.idf(term));
        sq += w * w;
    }
    sq.sqrt()
}

/// Term → postings index with idf and document norms, built once from the
/// crawl result database.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    /// term (feature index) → `(doc, tf)` postings.
    postings: FxHashMap<u32, Vec<(PageId, u32)>>,
    /// Per-document L2 norm of the tf·idf vector.
    norms: FxHashMap<PageId, f32>,
    doc_count: u64,
}

impl InvertedIndex {
    /// Build from all documents in the store.
    pub fn build(store: &DocumentStore) -> Self {
        let mut postings: FxHashMap<u32, Vec<(PageId, u32)>> = FxHashMap::default();
        let mut doc_count = 0u64;
        store.for_each_document(|row| {
            doc_count += 1;
            for &(term, tf) in &row.term_freqs {
                postings.entry(term).or_default().push((row.id, tf));
            }
        });
        for list in postings.values_mut() {
            list.sort_unstable_by_key(|&(d, _)| d);
        }
        let mut index = InvertedIndex {
            postings,
            norms: FxHashMap::default(),
            doc_count,
        };
        // Norms under the same weighting used at query time, accumulated
        // doc-major in stored term order (see [`doc_norm`]) so the live
        // snapshot index can reproduce them bit-for-bit.
        let mut norms: FxHashMap<PageId, f32> = FxHashMap::default();
        store.for_each_document(|row| {
            norms.insert(row.id, doc_norm(&index, &row.term_freqs));
        });
        index.norms = norms;
        index
    }

    /// Documents containing `term`, with raw frequencies.
    pub fn postings(&self, term: u32) -> &[(PageId, u32)] {
        self.postings
            .get(&term)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Logarithmically dampened idf of a term.
    pub fn idf(&self, term: u32) -> f32 {
        let df = self.postings(term).len() as f32;
        if df == 0.0 {
            0.0
        } else {
            (1.0 + self.doc_count as f32 / df).ln()
        }
    }

    /// L2 norm of a document's tf·idf vector.
    pub fn norm(&self, doc: PageId) -> f32 {
        self.norms.get(&doc).copied().unwrap_or(0.0)
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }
}

impl TermIndex for InvertedIndex {
    fn doc_count(&self) -> u64 {
        self.doc_count
    }

    fn df(&self, term: u32) -> u64 {
        self.postings(term).len() as u64
    }

    fn norm(&self, doc: PageId) -> f32 {
        InvertedIndex::norm(self, doc)
    }

    fn for_each_posting(&self, term: u32, f: &mut dyn FnMut(PageId, u32)) {
        for &(doc, tf) in self.postings(term) {
            f(doc, tf);
        }
    }
}

/// Tokenize and stem a query, resolving terms against the crawl's shared
/// vocabulary. Unknown terms are dropped ("a query is a vector too").
pub fn analyze_query(vocab: &Vocabulary, text: &str) -> Vec<u32> {
    analyze_query_with(|stem| vocab.lookup(stem).map(|id| id.0), text)
}

/// [`analyze_query`] over an arbitrary stem → term-id resolver, so the
/// portal service can resolve against a live [`SharedVocabulary`]
/// (through [`bingo_textproc::TermLookup`]) without snapshotting it per
/// query. Resolved ids are sorted and deduplicated, making downstream
/// score accumulation order-canonical.
///
/// [`SharedVocabulary`]: bingo_textproc::SharedVocabulary
pub fn analyze_query_with<F: FnMut(&str) -> Option<u32>>(mut resolve: F, text: &str) -> Vec<u32> {
    let tokenizer = Tokenizer::default();
    let mut terms: Vec<u32> = tokenizer
        .tokens(text)
        .filter_map(|t| resolve(&porter_stem(&t)))
        .collect();
    terms.sort_unstable();
    terms.dedup();
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample_store;

    #[test]
    fn postings_and_counts() {
        let (store, vocab) = sample_store();
        let idx = InvertedIndex::build(&store);
        assert_eq!(idx.doc_count(), 5);
        assert!(idx.term_count() > 10);
        let aries = vocab.lookup("ari").or_else(|| vocab.lookup("aries"));
        let aries = aries.expect("aries stem interned").0;
        let docs: Vec<u64> = idx.postings(aries).iter().map(|&(d, _)| d).collect();
        assert_eq!(docs, vec![1, 2]);
    }

    #[test]
    fn idf_orders_rarity() {
        let (store, vocab) = sample_store();
        let idx = InvertedIndex::build(&store);
        // "recovery" (3 docs) must have lower idf than "football" (1 doc).
        let recov = vocab
            .lookup(&bingo_textproc::porter_stem("recovery"))
            .unwrap()
            .0;
        let foot = vocab
            .lookup(&bingo_textproc::porter_stem("football"))
            .unwrap()
            .0;
        assert!(idx.idf(foot) > idx.idf(recov));
        assert_eq!(idx.idf(9_999_999), 0.0);
    }

    #[test]
    fn norms_are_positive_for_indexed_docs() {
        let (store, _vocab) = sample_store();
        let idx = InvertedIndex::build(&store);
        for d in 1..=5u64 {
            assert!(idx.norm(d) > 0.0, "doc {d} norm");
        }
        assert_eq!(idx.norm(999), 0.0);
    }

    #[test]
    fn query_analysis_stems_and_dedups() {
        let (_store, vocab) = sample_store();
        let q = analyze_query(&vocab, "Recovery RECOVERIES recovery!");
        assert_eq!(q.len(), 1);
        let unknown = analyze_query(&vocab, "zebrafish");
        assert!(unknown.is_empty());
    }
}
