//! Inverted index over the crawl database.

use bingo_graph::PageId;
use bingo_store::DocumentStore;
use bingo_textproc::fxhash::FxHashMap;
use bingo_textproc::{porter_stem, Tokenizer, Vocabulary};

/// Term → postings index with idf and document norms, built once from the
/// crawl result database.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    /// term (feature index) → `(doc, tf)` postings.
    postings: FxHashMap<u32, Vec<(PageId, u32)>>,
    /// Per-document L2 norm of the tf·idf vector.
    norms: FxHashMap<PageId, f32>,
    doc_count: u64,
}

impl InvertedIndex {
    /// Build from all documents in the store.
    pub fn build(store: &DocumentStore) -> Self {
        let mut postings: FxHashMap<u32, Vec<(PageId, u32)>> = FxHashMap::default();
        let mut doc_count = 0u64;
        store.for_each_document(|row| {
            doc_count += 1;
            for &(term, tf) in &row.term_freqs {
                postings.entry(term).or_default().push((row.id, tf));
            }
        });
        for list in postings.values_mut() {
            list.sort_unstable_by_key(|&(d, _)| d);
        }
        let mut index = InvertedIndex {
            postings,
            norms: FxHashMap::default(),
            doc_count,
        };
        // Norms under the same weighting used at query time.
        let mut norms: FxHashMap<PageId, f32> = FxHashMap::default();
        for (&term, list) in &index.postings {
            let idf = index.idf(term);
            for &(doc, tf) in list {
                let w = (1.0 + (tf as f32).ln()) * idf;
                *norms.entry(doc).or_insert(0.0) += w * w;
            }
        }
        for v in norms.values_mut() {
            *v = v.sqrt();
        }
        index.norms = norms;
        index
    }

    /// Documents containing `term`, with raw frequencies.
    pub fn postings(&self, term: u32) -> &[(PageId, u32)] {
        self.postings
            .get(&term)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Logarithmically dampened idf of a term.
    pub fn idf(&self, term: u32) -> f32 {
        let df = self.postings(term).len() as f32;
        if df == 0.0 {
            0.0
        } else {
            (1.0 + self.doc_count as f32 / df).ln()
        }
    }

    /// L2 norm of a document's tf·idf vector.
    pub fn norm(&self, doc: PageId) -> f32 {
        self.norms.get(&doc).copied().unwrap_or(0.0)
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }
}

/// Tokenize and stem a query, resolving terms against the crawl's shared
/// vocabulary. Unknown terms are dropped ("a query is a vector too").
pub fn analyze_query(vocab: &Vocabulary, text: &str) -> Vec<u32> {
    let tokenizer = Tokenizer::default();
    let mut terms: Vec<u32> = tokenizer
        .tokens(text)
        .filter_map(|t| vocab.lookup(&porter_stem(&t)).map(|id| id.0))
        .collect();
    terms.sort_unstable();
    terms.dedup();
    terms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::sample_store;

    #[test]
    fn postings_and_counts() {
        let (store, vocab) = sample_store();
        let idx = InvertedIndex::build(&store);
        assert_eq!(idx.doc_count(), 5);
        assert!(idx.term_count() > 10);
        let aries = vocab.lookup("ari").or_else(|| vocab.lookup("aries"));
        let aries = aries.expect("aries stem interned").0;
        let docs: Vec<u64> = idx.postings(aries).iter().map(|&(d, _)| d).collect();
        assert_eq!(docs, vec![1, 2]);
    }

    #[test]
    fn idf_orders_rarity() {
        let (store, vocab) = sample_store();
        let idx = InvertedIndex::build(&store);
        // "recovery" (3 docs) must have lower idf than "football" (1 doc).
        let recov = vocab
            .lookup(&bingo_textproc::porter_stem("recovery"))
            .unwrap()
            .0;
        let foot = vocab
            .lookup(&bingo_textproc::porter_stem("football"))
            .unwrap()
            .0;
        assert!(idx.idf(foot) > idx.idf(recov));
        assert_eq!(idx.idf(9_999_999), 0.0);
    }

    #[test]
    fn norms_are_positive_for_indexed_docs() {
        let (store, _vocab) = sample_store();
        let idx = InvertedIndex::build(&store);
        for d in 1..=5u64 {
            assert!(idx.norm(d) > 0.0, "doc {d} norm");
        }
        assert_eq!(idx.norm(999), 0.0);
    }

    #[test]
    fn query_analysis_stems_and_dedups() {
        let (_store, vocab) = sample_store();
        let q = analyze_query(&vocab, "Recovery RECOVERIES recovery!");
        assert_eq!(q.len(), 1);
        let unknown = analyze_query(&vocab, "zebrafish");
        assert!(unknown.is_empty());
    }
}
