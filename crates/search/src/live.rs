//! Incremental, snapshot-swappable inverted index.
//!
//! The batch [`InvertedIndex`](crate::InvertedIndex) answers queries only
//! *after* a crawl; the portal front end needs answers *during* one. This
//! module provides the epoch/snapshot-swap design ROADMAP item 2 calls
//! for:
//!
//! * Writers ([`LiveIndex::ingest`], typically fed through the store's
//!   [`bingo_store::IndexTee`] hook) accumulate rows into a pending
//!   batch under a writer mutex the query path never touches.
//! * [`LiveIndex::commit`] seals the pending rows into an immutable
//!   [`Segment`], recomputes global document frequencies and norms, and
//!   publishes a fresh [`IndexSnapshot`] by swapping an `Arc` and then
//!   bumping an atomic epoch counter.
//! * Readers hold an [`IndexReader`], which caches `(epoch, Arc)`. The
//!   steady-state query path is one `Acquire` load of the epoch plus an
//!   `Arc` clone — lock-free; a reader takes the (brief) publication
//!   mutex only on the query *after* a commit, to re-fetch the `Arc`.
//!   No `RwLock` is ever held across a query.
//!
//! Segments share their postings via `Arc`, so a commit never copies
//! previously indexed postings. What a commit does recompute is every
//! document norm: idf depends on the global document count, so all
//! tf·idf norms change whenever the corpus grows. That makes commits
//! O(total postings) — amortized by committing per bulk-load batch
//! rather than per document — and buys exact equivalence with a batch
//! rebuild (see [`IndexSnapshot`] and the `live_equivalence` test).

use crate::index::{doc_norm, TermIndex};
use bingo_graph::PageId;
use bingo_obs::{Counter, Gauge, Histogram, Registry, WallTimer};
use bingo_store::{DocumentRow, IndexTee};
use bingo_textproc::fxhash::FxHashMap;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable batch of indexed documents: the rows in arrival order
/// (doc-major, each row's term list in stored order — the norm
/// accumulation order) plus term-major postings for the query path.
#[derive(Debug, Default)]
pub struct Segment {
    rows: Vec<(PageId, Vec<(u32, u32)>)>,
    postings: FxHashMap<u32, Vec<(PageId, u32)>>,
}

impl Segment {
    fn from_rows(rows: Vec<(PageId, Vec<(u32, u32)>)>) -> Self {
        let mut postings: FxHashMap<u32, Vec<(PageId, u32)>> = FxHashMap::default();
        for (doc, tfs) in &rows {
            for &(term, tf) in tfs {
                postings.entry(term).or_default().push((*doc, tf));
            }
        }
        for list in postings.values_mut() {
            list.sort_unstable_by_key(|&(d, _)| d);
        }
        Segment { rows, postings }
    }

    /// Documents in this segment.
    pub fn doc_count(&self) -> usize {
        self.rows.len()
    }
}

/// One published, immutable index state. Queries resolve entirely
/// against a single snapshot, so every query sees one consistent corpus
/// (never a half-committed batch) no matter how many commits land while
/// it runs.
///
/// Snapshots implement [`TermIndex`] with the same idf formula and the
/// same doc-major norm accumulation as the batch build, so a snapshot
/// over segments `S1..Sn` scores identically (bit-for-bit) to
/// `InvertedIndex::build` over the union of their rows.
#[derive(Debug, Default)]
pub struct IndexSnapshot {
    epoch: u64,
    segments: Vec<Arc<Segment>>,
    df: FxHashMap<u32, u64>,
    norms: FxHashMap<PageId, f32>,
    doc_count: u64,
}

impl IndexSnapshot {
    /// Publication epoch: 0 for the empty initial snapshot, then +1 per
    /// commit.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of sealed segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Number of distinct terms with postings.
    pub fn term_count(&self) -> usize {
        self.df.len()
    }
}

impl TermIndex for IndexSnapshot {
    fn doc_count(&self) -> u64 {
        self.doc_count
    }

    fn df(&self, term: u32) -> u64 {
        self.df.get(&term).copied().unwrap_or(0)
    }

    fn norm(&self, doc: PageId) -> f32 {
        self.norms.get(&doc).copied().unwrap_or(0.0)
    }

    fn for_each_posting(&self, term: u32, f: &mut dyn FnMut(PageId, u32)) {
        for seg in &self.segments {
            if let Some(list) = seg.postings.get(&term) {
                for &(doc, tf) in list {
                    f(doc, tf);
                }
            }
        }
    }
}

/// Writer-side state, guarded by one mutex that queries never take.
#[derive(Debug)]
struct Writer {
    pending: Vec<(PageId, Vec<(u32, u32)>)>,
    segments: Vec<Arc<Segment>>,
    df: FxHashMap<u32, u64>,
    doc_count: u64,
}

#[derive(Debug)]
struct SharedIndex {
    /// Epoch of the currently published snapshot. Bumped with `Release`
    /// *after* `current` is replaced, so a reader observing a new epoch
    /// is guaranteed to fetch a snapshot at least that new.
    epoch: AtomicU64,
    current: Mutex<Arc<IndexSnapshot>>,
    writer: Mutex<Writer>,
    commit_every: usize,
}

/// Handle over the shared live index; cheap to clone. See the module
/// docs for the writer/reader protocol.
#[derive(Debug, Clone)]
pub struct LiveIndex {
    shared: Arc<SharedIndex>,
    obs: Option<LiveIndexObs>,
}

impl LiveIndex {
    /// Empty live index. `commit_every > 0` auto-commits whenever that
    /// many rows are pending after an [`ingest`](LiveIndex::ingest);
    /// `commit_every == 0` leaves publication entirely to explicit
    /// [`commit`](LiveIndex::commit) calls.
    pub fn new(commit_every: usize) -> Self {
        LiveIndex {
            shared: Arc::new(SharedIndex {
                epoch: AtomicU64::new(0),
                current: Mutex::new(Arc::new(IndexSnapshot::default())),
                writer: Mutex::new(Writer {
                    pending: Vec::new(),
                    segments: Vec::new(),
                    df: FxHashMap::default(),
                    doc_count: 0,
                }),
                commit_every,
            }),
            obs: None,
        }
    }

    /// Same index, with ingest/commit activity recorded through `obs`.
    pub fn with_obs(mut self, obs: LiveIndexObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Stage rows for the next commit. Safe from any number of writer
    /// threads; readers are unaffected until a commit publishes.
    pub fn ingest(&self, rows: &[DocumentRow]) {
        let commit_now = {
            let mut w = self.shared.writer.lock();
            w.pending
                .extend(rows.iter().map(|r| (r.id, r.term_freqs.clone())));
            if let Some(o) = &self.obs {
                o.ingested.add(rows.len() as u64);
                o.pending.set(w.pending.len() as i64);
            }
            self.shared.commit_every > 0 && w.pending.len() >= self.shared.commit_every
        };
        if commit_now {
            self.commit();
        }
    }

    /// Seal pending rows into a segment and publish a new snapshot.
    /// Returns the epoch of the snapshot current after the call (a
    /// no-op, without an epoch bump, when nothing is pending).
    pub fn commit(&self) -> u64 {
        let timer = WallTimer::start();
        let mut w = self.shared.writer.lock();
        if w.pending.is_empty() {
            return self.shared.epoch.load(Ordering::Acquire);
        }
        let rows = std::mem::take(&mut w.pending);
        w.doc_count += rows.len() as u64;
        for (_, tfs) in &rows {
            for &(term, _) in tfs {
                *w.df.entry(term).or_insert(0) += 1;
            }
        }
        w.segments.push(Arc::new(Segment::from_rows(rows)));

        let epoch = self.shared.epoch.load(Ordering::Acquire) + 1;
        let mut snapshot = IndexSnapshot {
            epoch,
            segments: w.segments.clone(),
            df: w.df.clone(),
            norms: FxHashMap::default(),
            doc_count: w.doc_count,
        };
        // Norms are global (idf moves with doc_count), so recompute all
        // of them doc-major — the exact accumulation the batch build
        // uses.
        let mut norms = FxHashMap::default();
        for seg in &snapshot.segments {
            for (doc, tfs) in &seg.rows {
                norms.insert(*doc, doc_norm(&snapshot, tfs));
            }
        }
        snapshot.norms = norms;
        let docs = snapshot.doc_count;

        *self.shared.current.lock() = Arc::new(snapshot);
        self.shared.epoch.store(epoch, Ordering::Release);
        if let Some(o) = &self.obs {
            o.commits.inc();
            o.epoch.set(epoch as i64);
            o.docs.set(docs as i64);
            o.pending.set(0);
            timer.observe_us(&o.commit_wall_us);
        }
        epoch
    }

    /// A reader handle for one querying thread.
    pub fn reader(&self) -> IndexReader {
        let current = self.shared.current.lock().clone();
        IndexReader {
            shared: Arc::clone(&self.shared),
            cached_epoch: current.epoch(),
            cached: current,
        }
    }

    /// Epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::Acquire)
    }

    /// Rows staged but not yet committed.
    pub fn pending_docs(&self) -> usize {
        self.shared.writer.lock().pending.len()
    }
}

/// The store-side hook: attach via
/// `DocumentStore::with_tee(Arc::new(live.clone()))` and every accepted
/// insert — single or bulk-loader batch, from any crawler thread — is
/// staged automatically.
impl IndexTee for LiveIndex {
    fn on_insert(&self, rows: &[DocumentRow]) {
        self.ingest(rows);
    }
}

/// Per-thread read handle: caches the last snapshot and re-fetches it
/// only when the published epoch moves.
#[derive(Debug, Clone)]
pub struct IndexReader {
    shared: Arc<SharedIndex>,
    cached_epoch: u64,
    cached: Arc<IndexSnapshot>,
}

impl IndexReader {
    /// Current snapshot. Steady state (no commit since the last call)
    /// is one atomic load plus an `Arc` clone.
    pub fn snapshot(&mut self) -> Arc<IndexSnapshot> {
        let epoch = self.shared.epoch.load(Ordering::Acquire);
        if epoch != self.cached_epoch {
            let current = self.shared.current.lock().clone();
            self.cached_epoch = current.epoch();
            self.cached = current;
        }
        Arc::clone(&self.cached)
    }
}

/// Metric handles for a live index. Deterministic under a deterministic
/// ingest/commit schedule, except the volatile commit-latency histogram.
#[derive(Clone)]
pub struct LiveIndexObs {
    /// Commits that published a new snapshot.
    pub commits: Counter,
    /// Rows staged via ingest.
    pub ingested: Counter,
    /// Epoch of the latest published snapshot.
    pub epoch: Gauge,
    /// Documents in the latest published snapshot.
    pub docs: Gauge,
    /// Rows currently staged for the next commit.
    pub pending: Gauge,
    /// Wall-clock commit latency, microseconds (volatile).
    pub commit_wall_us: Arc<Histogram>,
}

impl std::fmt::Debug for LiveIndexObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LiveIndexObs")
    }
}

impl LiveIndexObs {
    /// Register the live-index metrics in `registry`.
    pub fn new(registry: &Registry) -> Self {
        LiveIndexObs {
            commits: registry.counter("search.live.commits"),
            ingested: registry.counter("search.live.ingested"),
            epoch: registry.gauge("search.live.epoch"),
            docs: registry.gauge("search.live.docs"),
            pending: registry.gauge("search.live.pending"),
            commit_wall_us: registry.wall_histogram("search.live.commit_wall_us"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{analyze_query, InvertedIndex};
    use crate::rank::{rank, RankingScheme, TopicFilter};
    use crate::tests::sample_store;
    use bingo_store::DocumentStore;

    fn ingest_all(live: &LiveIndex, store: &DocumentStore, batch: usize) {
        let mut rows = store.all_documents();
        rows.sort_unstable_by_key(|r| r.id);
        for chunk in rows.chunks(batch) {
            live.ingest(chunk);
            live.commit();
        }
    }

    #[test]
    fn empty_index_answers_empty() {
        let live = LiveIndex::new(0);
        let mut reader = live.reader();
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(TermIndex::doc_count(&*snap), 0);
        assert_eq!(snap.df(7), 0);
        assert_eq!(snap.idf(7), 0.0);
    }

    #[test]
    fn commit_publishes_and_bumps_epoch() {
        let (store, _vocab) = sample_store();
        let live = LiveIndex::new(0);
        let mut reader = live.reader();
        live.ingest(&store.all_documents());
        assert_eq!(reader.snapshot().epoch(), 0, "nothing published yet");
        assert_eq!(live.pending_docs(), 5);
        let epoch = live.commit();
        assert_eq!(epoch, 1);
        assert_eq!(live.commit(), 1, "empty commit is a no-op");
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(TermIndex::doc_count(&*snap), 5);
        assert_eq!(live.pending_docs(), 0);
    }

    #[test]
    fn reader_holds_stable_snapshot_across_commits() {
        let (store, _vocab) = sample_store();
        let mut rows = store.all_documents();
        rows.sort_unstable_by_key(|r| r.id);
        let live = LiveIndex::new(0);
        live.ingest(&rows[..2]);
        live.commit();
        let mut reader = live.reader();
        let old = reader.snapshot();
        live.ingest(&rows[2..]);
        live.commit();
        assert_eq!(TermIndex::doc_count(&*old), 2, "held snapshot is immutable");
        assert_eq!(TermIndex::doc_count(&*reader.snapshot()), 5);
    }

    #[test]
    fn auto_commit_every_n_rows() {
        let (store, _vocab) = sample_store();
        let mut rows = store.all_documents();
        rows.sort_unstable_by_key(|r| r.id);
        let live = LiveIndex::new(2);
        for row in rows {
            live.ingest(std::slice::from_ref(&row));
        }
        assert_eq!(live.epoch(), 2, "two auto-commits at 2 and 4 rows");
        assert_eq!(live.pending_docs(), 1);
        live.commit();
        assert_eq!(live.epoch(), 3);
    }

    #[test]
    fn incremental_matches_batch_exactly() {
        let (store, vocab) = sample_store();
        let batch = InvertedIndex::build(&store);
        for chunk in [1usize, 2, 5] {
            let live = LiveIndex::new(0);
            ingest_all(&live, &store, chunk);
            let snap = live.reader().snapshot();
            assert_eq!(TermIndex::doc_count(&*snap), batch.doc_count());
            assert_eq!(snap.term_count(), batch.term_count());
            for d in 1..=5u64 {
                assert_eq!(
                    snap.norm(d),
                    batch.norm(d),
                    "norm of doc {d}, chunk {chunk}"
                );
            }
            for q in ["aries recovery", "release", "football season", "basketball"] {
                let terms = analyze_query(&vocab, q);
                let a = rank(
                    &store,
                    &batch,
                    &terms,
                    &TopicFilter::Any,
                    RankingScheme::Cosine,
                    10,
                );
                let b = rank(
                    &store,
                    &*snap,
                    &terms,
                    &TopicFilter::Any,
                    RankingScheme::Cosine,
                    10,
                );
                let ids_a: Vec<u64> = a.iter().map(|h| h.doc_id).collect();
                let ids_b: Vec<u64> = b.iter().map(|h| h.doc_id).collect();
                assert_eq!(ids_a, ids_b, "query {q:?}, chunk {chunk}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.score, y.score, "query {q:?}, chunk {chunk}");
                }
            }
        }
    }

    #[test]
    fn store_tee_feeds_live_index() {
        let live = LiveIndex::new(0);
        let (src, _vocab) = sample_store();
        let store = DocumentStore::new().with_tee(Arc::new(live.clone()));
        let mut rows = src.all_documents();
        rows.sort_unstable_by_key(|r| r.id);
        store.insert_documents(rows.clone());
        assert_eq!(live.pending_docs(), 5);
        // Duplicate rows are rejected by the store and never staged.
        store.insert_documents(rows);
        assert_eq!(live.pending_docs(), 5);
        live.commit();
        assert_eq!(TermIndex::doc_count(&*live.reader().snapshot()), 5);
    }

    #[test]
    fn obs_records_commits() {
        let registry = Registry::new();
        let obs = LiveIndexObs::new(&registry);
        let (store, _vocab) = sample_store();
        let live = LiveIndex::new(0).with_obs(obs);
        live.ingest(&store.all_documents());
        live.commit();
        let snap = registry.snapshot();
        assert_eq!(snap.counters["search.live.commits"], 1);
        assert_eq!(snap.counters["search.live.ingested"], 5);
        assert_eq!(snap.gauges["search.live.epoch"], 1);
        assert_eq!(snap.gauges["search.live.docs"], 5);
        assert_eq!(snap.gauges["search.live.pending"], 0);
        assert!(snap.volatile.contains("search.live.commit_wall_us"));
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let live = LiveIndex::new(8);
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for t in 0..2u64 {
                let live = live.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        let id = t * 1000 + i;
                        live.ingest(&[DocumentRow {
                            id,
                            url: format!("http://h/{id}"),
                            host: 1,
                            mime: bingo_textproc::MimeType::Html,
                            depth: 0,
                            title: String::new(),
                            topic: None,
                            confidence: 0.0,
                            term_freqs: vec![(id as u32 % 50, 1), (1000 + id as u32 % 7, 2)],
                            size: 10,
                            fetched_at: 0,
                        }]);
                    }
                });
            }
            for _ in 0..2 {
                let live = live.clone();
                let stop = &stop;
                s.spawn(move || {
                    let mut reader = live.reader();
                    let mut last_epoch = 0;
                    let mut last_docs = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let snap = reader.snapshot();
                        // Snapshots only move forward, and always pair a
                        // consistent (epoch, corpus) — never a torn state.
                        assert!(snap.epoch() >= last_epoch);
                        assert!(TermIndex::doc_count(&*snap) >= last_docs);
                        last_epoch = snap.epoch();
                        last_docs = TermIndex::doc_count(&*snap);
                        let mut seen = 0u64;
                        snap.for_each_posting(3, &mut |_, _| seen += 1);
                        let _ = seen;
                    }
                });
            }
            // Writers finish, then stop the readers.
            while live.epoch() < 400 / 8 {
                std::thread::yield_now();
            }
            stop.store(true, Ordering::Relaxed);
        });
        live.commit();
        assert_eq!(TermIndex::doc_count(&*live.reader().snapshot()), 400);
    }
}
