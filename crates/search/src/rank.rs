//! Relevance ranking (Section 3.6).
//!
//! "The search engine supports both exact and vague filtering at
//! user-selectable classes of the topic hierarchy, with relevance ranking
//! based on the usual IR metrics such as cosine similarity. In addition,
//! it can rank filtered document sets based on the classifier's
//! confidence and it can perform the HITS link analysis to compute
//! authority scores. Different ranking schemes can be combined into a
//! linear sum with appropriate weights."

use crate::index::TermIndex;
use bingo_graph::{Hits, LinkSource, PageId};
use bingo_store::DocumentStore;
use bingo_textproc::fxhash::FxHashMap;

/// Topic filtering mode (Section 3.6: "exact and vague filtering at
/// user-selectable classes of the topic hierarchy").
#[derive(Debug, Clone, PartialEq, Default)]
pub enum TopicFilter {
    /// No topic restriction.
    #[default]
    Any,
    /// Documents assigned exactly to this topic node.
    Exact(u32),
    /// Vague: documents assigned to any of these nodes (typically a
    /// subtree of the topic hierarchy), *or* unassigned documents whose
    /// classification confidence is at least the threshold — borderline
    /// material a strict filter would hide.
    Vague {
        /// Accepted topic nodes.
        topics: Vec<u32>,
        /// Minimum confidence for unassigned documents.
        min_confidence: f32,
    },
}

impl TopicFilter {
    /// Does a document with this assignment pass the filter?
    pub fn accepts(&self, topic: Option<u32>, confidence: f32) -> bool {
        match self {
            TopicFilter::Any => true,
            TopicFilter::Exact(t) => topic == Some(*t),
            TopicFilter::Vague {
                topics,
                min_confidence,
            } => match topic {
                Some(t) => topics.contains(&t),
                None => confidence >= *min_confidence,
            },
        }
    }
}

/// How to order matching documents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankingScheme {
    /// Cosine similarity between query and document tf·idf vectors.
    Cosine,
    /// The classifier's confidence in the topic assignment.
    Confidence,
    /// HITS authority score over the matching documents' link subgraph.
    Authority,
    /// PageRank over the matching documents' link subgraph (extension
    /// beyond the paper's HITS-only postprocessor).
    PageRank,
    /// Weighted linear combination of the three components.
    Combined {
        /// Weight of the cosine component.
        cosine: f32,
        /// Weight of the confidence component.
        confidence: f32,
        /// Weight of the authority component.
        authority: f32,
    },
}

/// One search result with its ranking components (exposed so a human
/// expert can experiment with different weightings).
#[derive(Debug, Clone)]
pub struct SearchHit {
    /// Document id.
    pub doc_id: PageId,
    /// Document URL.
    pub url: String,
    /// Document title — the "content preview" shown in the prepared
    /// result lists the user evaluates (Section 5.3).
    pub title: String,
    /// Final score under the requested scheme.
    pub score: f32,
    /// Cosine similarity to the query.
    pub cosine: f32,
    /// Classifier confidence.
    pub confidence: f32,
    /// HITS authority score within the result set.
    pub authority: f32,
}

/// Rank the documents matching `query_terms` (AND-free vector-space
/// matching: any document containing at least one query term competes).
/// Generic over [`TermIndex`], so the batch-built index and a live
/// snapshot share one scoring path.
pub fn rank<I: TermIndex + ?Sized>(
    store: &DocumentStore,
    index: &I,
    query_terms: &[u32],
    filter: &TopicFilter,
    scheme: RankingScheme,
    top_k: usize,
) -> Vec<SearchHit> {
    if query_terms.is_empty() {
        return Vec::new();
    }

    // Accumulate cosine numerators over postings.
    let mut scores: FxHashMap<PageId, f32> = FxHashMap::default();
    let mut query_norm_sq = 0.0f32;
    for &term in query_terms {
        let idf = index.idf(term);
        if idf == 0.0 {
            continue;
        }
        let qw = idf; // query tf = 1
        query_norm_sq += qw * qw;
        index.for_each_posting(term, &mut |doc, tf| {
            let dw = crate::index::tf_weight(tf, idf);
            *scores.entry(doc).or_insert(0.0) += qw * dw;
        });
    }
    let query_norm = query_norm_sq.sqrt();
    if query_norm == 0.0 {
        return Vec::new();
    }

    // Topic filter + metadata.
    let mut matches: Vec<SearchHit> = Vec::new();
    for (doc, dot) in scores {
        let Some(row) = store.document(doc) else {
            continue;
        };
        if !filter.accepts(row.topic, row.confidence) {
            continue;
        }
        let denom = query_norm * index.norm(doc);
        let cosine = if denom > 0.0 { dot / denom } else { 0.0 };
        matches.push(SearchHit {
            doc_id: doc,
            url: row.url,
            title: row.title,
            score: 0.0,
            cosine,
            confidence: row.confidence,
            authority: 0.0,
        });
    }

    // Link analysis over the matching set (plus its stored
    // neighbourhood) when the scheme needs it.
    if needs_authority(scheme) && !matches.is_empty() {
        let base: Vec<PageId> = matches.iter().map(|h| h.doc_id).collect();
        let nodes = bingo_graph::expand_base_set(store, &base, 10);
        if scheme == RankingScheme::PageRank {
            let pr = bingo_graph::pagerank(
                store as &dyn LinkSource,
                &nodes,
                bingo_graph::PageRankConfig::default(),
            );
            for m in &mut matches {
                m.authority = pr.score_of(m.doc_id) as f32;
            }
        } else {
            let hits = Hits::default().run(store as &dyn LinkSource, &nodes);
            for m in &mut matches {
                m.authority = hits.authority_of(m.doc_id) as f32;
            }
        }
    }

    for m in &mut matches {
        m.score = match scheme {
            RankingScheme::Cosine => m.cosine,
            RankingScheme::Confidence => m.confidence,
            RankingScheme::Authority | RankingScheme::PageRank => m.authority,
            RankingScheme::Combined {
                cosine,
                confidence,
                authority,
            } => cosine * m.cosine + confidence * m.confidence + authority * m.authority,
        };
    }
    matches.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.doc_id.cmp(&b.doc_id))
    });
    matches.truncate(top_k);
    matches
}

fn needs_authority(scheme: RankingScheme) -> bool {
    match scheme {
        RankingScheme::Authority | RankingScheme::PageRank => true,
        RankingScheme::Combined { authority, .. } => authority != 0.0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::analyze_query;
    use crate::tests::sample_store;
    use crate::InvertedIndex;

    #[test]
    fn cosine_prefers_term_dense_docs() {
        let (store, vocab) = sample_store();
        let index = InvertedIndex::build(&store);
        let q = analyze_query(&vocab, "aries");
        let hits = rank(
            &store,
            &index,
            &q,
            &TopicFilter::Any,
            RankingScheme::Cosine,
            10,
        );
        assert_eq!(hits.len(), 2);
        assert!(hits[0].cosine >= hits[1].cosine);
    }

    #[test]
    fn empty_query_empty_result() {
        let (store, _vocab) = sample_store();
        let index = InvertedIndex::build(&store);
        assert!(rank(
            &store,
            &index,
            &[],
            &TopicFilter::Any,
            RankingScheme::Cosine,
            10
        )
        .is_empty());
    }

    #[test]
    fn combined_weights_zero_equals_components() {
        let (store, vocab) = sample_store();
        let index = InvertedIndex::build(&store);
        let q = analyze_query(&vocab, "recovery");
        let cosine_only = rank(
            &store,
            &index,
            &q,
            &TopicFilter::Exact(1),
            RankingScheme::Combined {
                cosine: 1.0,
                confidence: 0.0,
                authority: 0.0,
            },
            10,
        );
        let plain = rank(
            &store,
            &index,
            &q,
            &TopicFilter::Exact(1),
            RankingScheme::Cosine,
            10,
        );
        let a: Vec<u64> = cosine_only.iter().map(|h| h.doc_id).collect();
        let b: Vec<u64> = plain.iter().map(|h| h.doc_id).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn vague_filter_spans_topics_and_confidence() {
        let (store, vocab) = sample_store();
        let index = InvertedIndex::build(&store);
        let q = analyze_query(&vocab, "release");
        // "release" matches docs 1 (topic 1), 3 (topic 1), 5 (topic 2).
        let vague = TopicFilter::Vague {
            topics: vec![1, 2],
            min_confidence: 0.0,
        };
        let hits = rank(&store, &index, &q, &vague, RankingScheme::Cosine, 10);
        let ids: std::collections::HashSet<u64> = hits.iter().map(|h| h.doc_id).collect();
        assert!(ids.contains(&1) && ids.contains(&5));
        // Exact on topic 2 excludes topic-1 docs.
        let exact = rank(
            &store,
            &index,
            &q,
            &TopicFilter::Exact(2),
            RankingScheme::Cosine,
            10,
        );
        assert!(exact.iter().all(|h| h.doc_id == 5));
    }

    #[test]
    fn pagerank_ranking_prefers_linked_doc() {
        let (store, vocab) = sample_store();
        let index = InvertedIndex::build(&store);
        let q = analyze_query(&vocab, "recovery");
        let hits = rank(
            &store,
            &index,
            &q,
            &TopicFilter::Exact(1),
            RankingScheme::PageRank,
            3,
        );
        assert_eq!(hits[0].doc_id, 1, "doc 1 has all in-links");
        assert!(hits[0].authority > 0.0);
    }

    #[test]
    fn topic_filter_accepts_semantics() {
        assert!(TopicFilter::Any.accepts(None, -1.0));
        assert!(TopicFilter::Exact(3).accepts(Some(3), 0.0));
        assert!(!TopicFilter::Exact(3).accepts(Some(4), 9.0));
        assert!(!TopicFilter::Exact(3).accepts(None, 9.0));
        let v = TopicFilter::Vague {
            topics: vec![1, 2],
            min_confidence: 0.2,
        };
        assert!(v.accepts(Some(1), -5.0));
        assert!(!v.accepts(Some(3), 5.0));
        assert!(v.accepts(None, 0.3), "confident unassigned doc passes");
        assert!(!v.accepts(None, 0.1));
    }
}
