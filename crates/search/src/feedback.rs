//! Interactive relevance feedback (Section 3.6).
//!
//! "When BINGO! is used for expert Web search, the local search engine
//! supports additional interactive feedback: the user may select
//! additional training documents among the top ranked results and
//! possibly drop previous training data; then the filtered documents are
//! classified again under the retrained model to improve precision."

use bingo_core::model::features_from_term_freqs;
use bingo_core::{BingoEngine, TopicId, TrainingDoc};
use bingo_graph::PageId;
use bingo_store::DocumentStore;

/// Outcome of one feedback round.
#[derive(Debug, Clone, Default)]
pub struct FeedbackReport {
    /// Documents promoted to training data.
    pub promoted: usize,
    /// Previous training documents dropped.
    pub dropped: usize,
    /// Documents whose topic assignment changed after re-classification.
    pub reassigned: usize,
}

/// Apply user feedback: `promote` stored documents into `topic`'s
/// training set, drop the training documents whose page ids are in
/// `drop`, retrain, and re-classify every stored document that was
/// assigned to `topic` (updating the store's assignments and
/// confidences).
pub fn apply_feedback(
    engine: &mut BingoEngine,
    store: &DocumentStore,
    topic: TopicId,
    promote: &[PageId],
    drop: &[PageId],
) -> FeedbackReport {
    let mut report = FeedbackReport::default();

    // Drop unwanted training documents.
    let before = engine.tree.node(topic).training.len();
    engine
        .tree
        .node_mut(topic)
        .training
        .retain(|d| !drop.contains(&d.page_id));
    report.dropped = before - engine.tree.node(topic).training.len();

    // Promote selected results.
    for &page in promote {
        let Some(row) = store.document(page) else {
            continue;
        };
        let already = engine
            .tree
            .node(topic)
            .training
            .iter()
            .any(|d| d.page_id == page);
        if already {
            continue;
        }
        engine.tree.node_mut(topic).training.push(TrainingDoc {
            page_id: page,
            url: row.url,
            features: features_from_term_freqs(&row.term_freqs),
            archetype: false,
        });
        report.promoted += 1;
    }

    if engine.train().is_err() {
        return report;
    }

    // Re-classify the filtered set under the retrained model.
    let assigned = store.topic_documents(topic.0);
    for page in assigned {
        let Some(row) = store.document(page) else {
            continue;
        };
        let features = features_from_term_freqs(&row.term_freqs);
        let judgment = engine.classify(&features);
        if judgment.topic != row.topic {
            report.reassigned += 1;
        }
        let _ = store.set_topic(page, judgment.topic, judgment.confidence);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_core::{EngineConfig, TopicTree};
    use bingo_store::DocumentRow;
    use bingo_textproc::{analyze_html, MimeType};

    fn doc_row(
        engine: &mut BingoEngine,
        id: u64,
        topic: Option<u32>,
        conf: f32,
        text: &str,
    ) -> DocumentRow {
        let doc = analyze_html(&format!("<p>{text}</p>"), &mut engine.vocab);
        DocumentRow {
            id,
            url: format!("http://h{id}.example/d{id}.html"),
            host: id as u32,
            mime: MimeType::Html,
            depth: 1,
            title: String::new(),
            topic,
            confidence: conf,
            term_freqs: doc.term_freqs.iter().map(|&(t, f)| (t.0, f)).collect(),
            size: text.len(),
            fetched_at: 0,
        }
    }

    #[test]
    fn feedback_promotes_drops_and_reclassifies() {
        let mut engine = BingoEngine::new(EngineConfig::default());
        let topic = engine.add_topic(TopicTree::ROOT, "recovery");
        // Minimal training: one positive, several negatives.
        engine.add_training_virtual(
            topic,
            "<p>aries recovery logging checkpoint undo redo transactions</p>",
        );
        for i in 0..6 {
            let html = format!("<p>football stadium championship team player {i}</p>");
            let f = engine.analyze_virtual(&html);
            engine.tree.others.push(bingo_core::TrainingDoc {
                page_id: 0,
                url: String::new(),
                features: f,
                archetype: false,
            });
        }
        engine.train().unwrap();

        let store = DocumentStore::new();
        // Misassigned sports doc and two good recovery docs.
        let rows = vec![
            doc_row(
                &mut engine,
                1,
                Some(topic.0),
                0.1,
                "football stadium game season ticket",
            ),
            doc_row(
                &mut engine,
                2,
                Some(topic.0),
                0.6,
                "aries recovery logging redo undo",
            ),
            doc_row(
                &mut engine,
                3,
                None,
                -0.1,
                "recovery checkpoint transactions logging aries",
            ),
        ];
        for r in rows {
            store.insert_document(r).unwrap();
        }

        let report = apply_feedback(&mut engine, &store, topic, &[3], &[]);
        assert_eq!(report.promoted, 1);
        assert_eq!(report.dropped, 0);
        // The sports doc must lose its (wrong) topic assignment.
        assert_eq!(store.document(1).unwrap().topic, None);
        assert_eq!(store.document(2).unwrap().topic, Some(topic.0));
        assert!(report.reassigned >= 1);
    }

    #[test]
    fn dropping_training_docs() {
        let mut engine = BingoEngine::new(EngineConfig::default());
        let topic = engine.add_topic(TopicTree::ROOT, "t");
        let store = DocumentStore::new();
        let row = doc_row(&mut engine, 7, None, 0.0, "aries recovery logging");
        store.insert_document(row).unwrap();
        // Seed training contains page 7; then drop it via feedback.
        apply_feedback(&mut engine, &store, topic, &[7], &[]);
        assert_eq!(engine.tree.node(topic).training.len(), 1);
        let report = apply_feedback(&mut engine, &store, topic, &[], &[7]);
        assert_eq!(report.dropped, 1);
        assert!(engine.tree.node(topic).training.is_empty());
    }
}
