//! Search metrics: index size and query volume/latency.
//!
//! Index dimensions and hit counts derive from the crawl database and
//! are deterministic; index-build and per-query costs are wall time and
//! land in volatile histograms.

use bingo_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Metric handles for one search engine. Cloning shares the underlying
/// registry and atomics.
#[derive(Clone)]
pub struct SearchMetrics {
    /// The registry the handles live in.
    pub registry: Arc<Registry>,
    /// Documents in the inverted index.
    pub index_docs: Gauge,
    /// Distinct terms with postings.
    pub index_terms: Gauge,
    /// Wall-clock cost of building the index, ms (volatile).
    pub index_build_wall_ms: Arc<Histogram>,
    /// Queries executed.
    pub queries: Counter,
    /// Results returned per query.
    pub hits_per_query: Arc<Histogram>,
    /// Wall-clock latency per query, microseconds (volatile).
    pub query_wall_us: Arc<Histogram>,
}

impl SearchMetrics {
    /// Register all search metrics in `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        SearchMetrics {
            index_docs: registry.gauge("search.index.docs"),
            index_terms: registry.gauge("search.index.terms"),
            index_build_wall_ms: registry.wall_histogram("search.index.build_wall_ms"),
            queries: registry.counter("search.query.count"),
            hits_per_query: registry.histogram("search.query.hits"),
            query_wall_us: registry.wall_histogram("search.query.wall_us"),
            registry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_register_expected_names() {
        let reg = Arc::new(Registry::new());
        let m = SearchMetrics::new(reg.clone());
        m.queries.inc();
        m.index_docs.set(12);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["search.query.count"], 1);
        assert_eq!(snap.gauges["search.index.docs"], 12);
        assert!(snap.volatile.contains("search.query.wall_us"));
        assert!(snap.volatile.contains("search.index.build_wall_ms"));
    }
}
