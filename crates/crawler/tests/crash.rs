//! Crash-point matrix: the crash-anywhere acceptance property. A save
//! killed after *any* number of bytes — mid-file or exactly between
//! files — must leave the previous complete checkpoint generation
//! untouched, [`Crawler::resume_session`] must recover it without a
//! panic, and a continuation from the recovered state must converge to
//! the harvest ratio of an uninterrupted run.
//!
//! The matrix is seed-driven: set `BINGO_CRASH_SEEDS=7,8,9` to sweep
//! additional pseudo-random crash points (CI pins a fixed seed matrix).

use bingo_crawler::checkpoint::{CRAWLER_FILE, STORE_FILE};
use bingo_crawler::{CrawlConfig, Crawler, Judgment, PageContext, StepOutcome};
use bingo_store::durable::{self, CrashFs, MANIFEST_FILE};
use bingo_store::DocumentStore;
use bingo_textproc::{fxhash, AnalyzedDocument, Vocabulary};
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::World;
use std::path::PathBuf;
use std::sync::Arc;

fn accept_all() -> impl FnMut(&AnalyzedDocument, &PageContext) -> Judgment {
    |_doc, _ctx| Judgment {
        topic: Some(0),
        confidence: 1.0,
    }
}

fn small_world(seed: u64) -> Arc<World> {
    Arc::new(WorldConfig::small_test(seed).build())
}

/// A crawler advanced to the given virtual-time budget.
fn crawler_at(world: &Arc<World>, budget_ms: u64) -> Crawler {
    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
    crawler.add_seed(&world.url_of(1), Some(0));
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    crawler.run_until(budget_ms, &mut judge, &mut vocab);
    crawler
}

/// Crash seeds for the pseudo-random part of the matrix
/// (`BINGO_CRASH_SEEDS=1,2,3` to override).
fn crash_seeds() -> Vec<u64> {
    match std::env::var("BINGO_CRASH_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 3],
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bingo-crash-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Byte sizes of one clean save of `crawler`: (store, crawler,
/// manifest), measured by saving into a scratch directory.
fn save_sizes(crawler: &Crawler, tag: &str) -> (u64, u64, u64) {
    let scratch = fresh_dir(&format!("scratch-{tag}"));
    crawler.save_session(&scratch).expect("scratch save");
    let gen = durable::find_newest_complete(&scratch).expect("scratch generation");
    let size = |name: &str| std::fs::metadata(gen.dir.join(name)).unwrap().len();
    let sizes = (size(STORE_FILE), size(CRAWLER_FILE), size(MANIFEST_FILE));
    std::fs::remove_dir_all(&scratch).ok();
    sizes
}

#[test]
fn crash_at_every_point_recovers_the_last_good_generation() {
    let world = small_world(42);
    let dir = fresh_dir("matrix");

    // A clean base generation at 15k virtual ms.
    let mut crawler = crawler_at(&world, 15_000);
    crawler.save_session(&dir).expect("base save");
    let base_stored = crawler.stats().stored_pages;
    assert!(base_stored > 0, "base session too small to test");

    // Advance, then crash the *next* save at every interesting byte
    // budget. Each failed attempt leaves only an incomplete generation
    // behind; the base generation must stay recoverable throughout.
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    crawler.run_until(30_000, &mut judge, &mut vocab);
    assert!(
        crawler.stats().stored_pages > base_stored,
        "no progress between saves"
    );

    let (store_len, crawler_len, manifest_len) = save_sizes(&crawler, "matrix");
    let total = store_len + crawler_len + manifest_len;
    // Exact file boundaries: before the first byte, one byte into the
    // store snapshot, the gap after each file, the last manifest byte.
    let mut budgets: Vec<u64> = vec![
        0,
        1,
        store_len - 1,
        store_len,
        store_len + 1,
        store_len + crawler_len - 1,
        store_len + crawler_len,
        store_len + crawler_len + 1,
        total - 1,
    ];
    // Seed-driven sweep over everything in between.
    for seed in crash_seeds() {
        for i in 0u64..4 {
            budgets.push(fxhash::hash_one(&(seed, i)) % total);
        }
    }
    budgets.sort_unstable();
    budgets.dedup();
    budgets.retain(|b| *b < total);

    for budget in budgets {
        let fs = CrashFs::with_budget(budget);
        let outcome = crawler.save_session_with(&fs, &dir);
        assert!(
            outcome.is_err(),
            "budget {budget}: save must report the crash"
        );
        assert!(fs.crashed(), "budget {budget}: crash must have fired");

        let resumed = Crawler::resume_session(world.clone(), CrawlConfig::default(), &dir)
            .unwrap_or_else(|e| panic!("budget {budget}: resume failed: {e}"));
        assert_eq!(
            resumed.stats().stored_pages,
            base_stored,
            "budget {budget}: resume must recover the base generation"
        );
    }

    // A budget past the whole save goes through untouched...
    let fs = CrashFs::with_budget(total + 4096);
    crawler
        .save_session_with(&fs, &dir)
        .expect("roomy budget saves fine");
    assert!(!fs.crashed());
    // ...and resume now sees the new state, not the old base.
    let resumed = Crawler::resume_session(world.clone(), CrawlConfig::default(), &dir)
        .expect("resume after clean save");
    assert_eq!(resumed.stats().stored_pages, crawler.stats().stored_pages);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn spill_file_corruption_at_every_boundary_never_touches_the_checkpoint() {
    let world = small_world(42);
    let dir = fresh_dir("spill-matrix");
    let spill_dir = fresh_dir("spill-files");
    // A tiny outgoing queue keeps URLs backed up in the incoming
    // queues, and a tiny hot cap forces their payloads onto disk.
    let config = CrawlConfig {
        frontier_spill_dir: Some(spill_dir.clone()),
        frontier_hot_cap: 4,
        outgoing_queue_cap: 4,
        ..CrawlConfig::default()
    };

    let spill_files = || -> Vec<PathBuf> {
        let mut v: Vec<PathBuf> = std::fs::read_dir(&spill_dir)
            .expect("spill dir must exist")
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "spill"))
            .collect();
        v.sort();
        v
    };

    // A crawl whose frontier genuinely spills, checkpointed mid-flight.
    let mut doomed = Crawler::new(world.clone(), config.clone(), DocumentStore::new());
    doomed.add_seed(&world.url_of(1), Some(0));
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    doomed.run_until(15_000, &mut judge, &mut vocab);
    assert!(
        doomed.frontier_spilled_len() > 0,
        "hot cap too generous: nothing spilled"
    );
    doomed.save_session(&dir).expect("checkpoint save");
    let acked_stored = doomed.stats().stored_pages;
    assert!(acked_stored > 0, "checkpoint too small to test");
    let longest = spill_files()
        .iter()
        .map(|p| std::fs::metadata(p).unwrap().len())
        .max()
        .expect("at least one spill file");
    assert!(longest > 0, "no spill bytes on disk at the checkpoint");

    // More progress after the ack, then the process dies: every spill
    // byte on disk now disagrees with the acked checkpoint. (Draining
    // may even have reclaimed some files — any state is fair game.)
    doomed.run_until(30_000, &mut judge, &mut vocab);
    drop(doomed);

    // Spill files are scratch — recovery reads only the checkpoint
    // generation — so one clean resume defines the true recovered state.
    let reference = Crawler::resume_session(world.clone(), config.clone(), &dir)
        .expect("clean resume with spill config");
    assert_eq!(reference.stats().stored_pages, acked_stored);
    let ref_checkpoint = serde_json::to_string(&reference.checkpoint()).expect("serialize");
    let ref_spilled = reference.frontier_spilled_len();
    assert!(
        ref_spilled > 0,
        "restored frontier must spill again under the same cap"
    );
    drop(reference);

    // Kill the spill writes at every interesting byte boundary: exact
    // edges plus a seed-driven sweep. Even rounds truncate to the budget
    // (a write that stopped short); odd rounds also smear garbage over
    // the tail (a torn write that flushed junk).
    let mut budgets: Vec<u64> = vec![0, 1, longest / 2, longest - 1, longest];
    for seed in crash_seeds() {
        for i in 0u64..4 {
            budgets.push(fxhash::hash_one(&(seed, i)) % (longest + 1));
        }
    }
    budgets.sort_unstable();
    budgets.dedup();

    for (round, budget) in budgets.into_iter().enumerate() {
        for path in spill_files() {
            let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            let cut = budget.min(file.metadata().unwrap().len());
            file.set_len(cut).unwrap();
            if round % 2 == 1 {
                use std::os::unix::fs::FileExt;
                file.write_all_at(b"\xff\xfe{torn-garbage", cut).unwrap();
            }
        }
        // A leftover file from a dead layout must be swept on claim.
        std::fs::write(spill_dir.join("slot-99.spill"), b"stale").unwrap();

        let resumed = Crawler::resume_session(world.clone(), config.clone(), &dir)
            .unwrap_or_else(|e| panic!("budget {budget}: resume failed: {e}"));
        assert_eq!(
            serde_json::to_string(&resumed.checkpoint()).unwrap(),
            ref_checkpoint,
            "budget {budget}: recovered state must not depend on spill bytes"
        );
        assert_eq!(
            resumed.frontier_spilled_len(),
            ref_spilled,
            "budget {budget}: frontier must re-spill to the same shape"
        );
        assert!(
            !spill_dir.join("slot-99.spill").exists(),
            "budget {budget}: stale spill file survived the claim"
        );
    }

    // The recovered state is live, not just readable: a continuation
    // pops through the re-spilled entries and keeps harvesting.
    let mut resumed = Crawler::resume_session(world.clone(), config, &dir).expect("final resume");
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    resumed.run_until(25_000, &mut judge, &mut vocab);
    assert!(
        resumed.stats().stored_pages > acked_stored,
        "continuation made no progress past the checkpoint"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&spill_dir).ok();
}

#[test]
fn continuation_after_crash_matches_uninterrupted_harvest() {
    let world = small_world(42);

    // Uninterrupted reference run to frontier exhaustion.
    let reference = crawler_at(&world, u64::MAX);
    let ref_stored = reference.stats().stored_pages;
    let ref_ratio = ref_stored as f64 / reference.stats().visited_urls as f64;
    assert!(ref_stored > 20, "reference harvest too small: {ref_stored}");

    // Interrupted run: checkpoint at ~half the harvest, make more
    // progress, then die mid-save. Everything after the good
    // checkpoint is lost.
    let dir = fresh_dir("continuation");
    let mut doomed = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
    doomed.add_seed(&world.url_of(1), Some(0));
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    while doomed.stats().stored_pages < ref_stored / 2 {
        assert_ne!(
            doomed.step(&mut judge, &mut vocab),
            StepOutcome::FrontierEmpty,
            "frontier drained before 50%"
        );
    }
    doomed.save_session(&dir).expect("mid-crawl save");
    let saved_stored = doomed.stats().stored_pages;
    for _ in 0..50 {
        if doomed.step(&mut judge, &mut vocab) == StepOutcome::FrontierEmpty {
            break;
        }
    }
    let (store_len, _, _) = save_sizes(&doomed, "continuation");
    let fs = CrashFs::with_budget(store_len / 2);
    assert!(doomed.save_session_with(&fs, &dir).is_err());
    drop(doomed); // killed

    // Resume recovers the good checkpoint and finishes the crawl.
    let mut resumed = Crawler::resume_session(world.clone(), CrawlConfig::default(), &dir)
        .expect("resume after crash");
    assert_eq!(resumed.stats().stored_pages, saved_stored);
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    resumed.run_until(u64::MAX, &mut judge, &mut vocab);

    let res_ratio = resumed.stats().stored_pages as f64 / resumed.stats().visited_urls as f64;
    let drift = (res_ratio - ref_ratio).abs() / ref_ratio;
    assert!(
        drift <= 0.02,
        "harvest ratio drifted {:.2}% (reference {ref_ratio:.4}, resumed {res_ratio:.4})",
        drift * 100.0
    );
    std::fs::remove_dir_all(&dir).ok();
}
