//! Executor equivalence: the deterministic discrete-event crawler and
//! the real-thread batch executor drive the *same* staged document
//! pipeline, so crawling the same URL universe with the same judge must
//! produce identical store contents — same documents, same depths, same
//! canonical term ids, same link rows — modulo row order and wall-clock
//! timestamps.
//!
//! The crawl is restricted to "calm" hosts (no faults, redirects,
//! truncation, path aliases or fingerprint collisions) because
//! response-fingerprint duplicate elimination and breaker-driven drops
//! are inherently order-dependent: outside that universe the two
//! executors are allowed to keep different representatives of a
//! duplicate class.

use bingo_crawler::{
    CrawlConfig, CrawlTelemetry, Crawler, FaultPlan, FaultStage, Judgment, PageContext,
    PipelineOptions, StepOutcome,
};
use bingo_store::{DocumentStore, LinkRow};
use bingo_textproc::fxhash::{FxHashMap, FxHashSet};
use bingo_textproc::{AnalyzedDocument, SharedVocabulary, Vocabulary};
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::{FetchOutcome, HostBehavior, World};
use std::sync::Arc;

/// Hosts whose every page fetches cleanly (no redirects, truncation or
/// scripted faults) and collides with no other selected page on either
/// duplicate fingerprint — (IP, path) or (IP, size).
fn calm_hosts(world: &World) -> FxHashSet<String> {
    let mut pages_by_host: FxHashMap<u32, Vec<u64>> = FxHashMap::default();
    for id in 0..world.page_count() as u64 {
        pages_by_host
            .entry(world.page(id).host)
            .or_default()
            .push(id);
    }
    let mut host_ids: Vec<u32> = pages_by_host.keys().copied().collect();
    host_ids.sort_unstable();

    let mut used_path: FxHashSet<(u32, String)> = FxHashSet::default();
    let mut used_size: FxHashSet<(u32, u64)> = FxHashSet::default();
    let mut allowed = FxHashSet::default();
    'hosts: for host_id in host_ids {
        let host = world.host(host_id);
        if host.behavior != HostBehavior::Normal {
            continue;
        }
        let ids = &pages_by_host[&host_id];
        let mut fingerprints = Vec::with_capacity(ids.len());
        for &id in ids {
            let page = world.page(id);
            // An aliased page stores under whichever of its URLs the
            // executor happens to fetch first — order-dependent.
            if page.size_hint.is_some()
                || page.redirect_to.is_some()
                || world.alias_url_of(id).is_some()
            {
                continue 'hosts;
            }
            let FetchOutcome::Ok(resp) = world.fetch(&world.url_of(id), 0) else {
                continue 'hosts;
            };
            fingerprints.push(((resp.ip, page.path.clone()), (resp.ip, resp.size)));
        }
        let mut path_probe = used_path.clone();
        let mut size_probe = used_size.clone();
        if !fingerprints
            .iter()
            .all(|(p, s)| path_probe.insert(p.clone()) && size_probe.insert(*s))
        {
            continue;
        }
        used_path = path_probe;
        used_size = size_probe;
        allowed.insert(host.name.clone());
    }
    allowed
}

/// One comparable document row: everything except `fetched_at` (virtual
/// vs. wall time) — id, url, host, mime, depth, title, judgment, term
/// vector, size.
type RowKey = (
    u64,
    String,
    u32,
    String,
    u32,
    String,
    Option<u32>,
    u32,
    Vec<(u32, u32)>,
    usize,
);

fn row_keys(store: &DocumentStore) -> Vec<RowKey> {
    let mut rows: Vec<RowKey> = store
        .all_documents()
        .into_iter()
        .map(|r| {
            (
                r.id,
                r.url,
                r.host,
                format!("{:?}", r.mime),
                r.depth,
                r.title,
                r.topic,
                r.confidence.to_bits(),
                r.term_freqs,
                r.size,
            )
        })
        .collect();
    rows.sort();
    rows
}

fn link_keys(store: &DocumentStore) -> Vec<(u64, u64, String)> {
    let mut links: Vec<(u64, u64, String)> = store
        .all_links()
        .into_iter()
        .map(|LinkRow { from, to, to_url }| (from, to, to_url))
        .collect();
    links.sort();
    links
}

#[test]
fn deterministic_and_threaded_executors_fill_identical_stores() {
    // Aliased pages store under whichever of their URLs is fetched
    // first — legitimately order-dependent — so this world has none.
    let world = Arc::new(
        WorldConfig {
            alias_fraction: 0.0,
            ..WorldConfig::small_test(41)
        }
        .build(),
    );
    let allowed = calm_hosts(&world);
    assert!(allowed.len() >= 2, "world too hostile for the test");
    let seeds: Vec<String> = {
        let mut first_page_by_host: FxHashMap<u32, u64> = FxHashMap::default();
        for id in 0..world.page_count() as u64 {
            let e = first_page_by_host.entry(world.page(id).host).or_insert(id);
            *e = (*e).min(id);
        }
        let mut urls: Vec<String> = first_page_by_host
            .into_values()
            .filter(|&id| allowed.contains(&world.host(world.page(id).host).name))
            .map(|id| world.url_of(id))
            .collect();
        urls.sort();
        urls
    };
    assert!(!seeds.is_empty());
    let config = CrawlConfig {
        allowed_hosts: Some(allowed.clone()),
        ..CrawlConfig::default().harvesting()
    };
    let accept_all = |_: &AnalyzedDocument, _: &PageContext| Judgment {
        topic: Some(0),
        confidence: 1.0,
    };

    // Deterministic discrete-event crawl with a private vocabulary.
    let det_store = DocumentStore::new();
    let mut crawler = Crawler::new(Arc::clone(&world), config.clone(), det_store.clone());
    for url in &seeds {
        crawler.add_seed(url, Some(0));
    }
    let mut vocab = Vocabulary::new();
    let mut judge = accept_all;
    loop {
        if crawler.step(&mut judge, &mut vocab) == StepOutcome::FrontierEmpty {
            break;
        }
    }
    det_store.remap_terms(&vocab.canonical_map(0));

    // Real-thread batch executor over the shared vocabulary.
    let thr_store = DocumentStore::new();
    let shared = SharedVocabulary::new();
    bingo_crawler::run_pipeline(
        Arc::clone(&world),
        thr_store.clone(),
        seeds.iter().map(|u| (u.clone(), Some(0))).collect(),
        &shared,
        &accept_all,
        &CrawlTelemetry::default(),
        &PipelineOptions::focused(config, 4, 7),
    );
    let (_, map) = shared.canonicalize();
    thr_store.remap_terms(&map);

    // The crawl must be non-trivial: multiple documents, real depths,
    // link rows.
    assert!(
        det_store.document_count() >= 10,
        "crawl too small to be meaningful: {} docs",
        det_store.document_count()
    );
    let det_rows = row_keys(&det_store);
    assert!(
        det_rows.iter().any(|r| r.4 >= 1),
        "no document beyond depth 0"
    );
    assert!(det_store.link_count() > 0, "no link rows emitted");

    assert_eq!(det_rows, row_keys(&thr_store));
    assert_eq!(link_keys(&det_store), link_keys(&thr_store));
}

#[test]
fn segmented_store_runs_match_in_memory_byte_for_byte() {
    // Both executors over a disk-backed segmented store must produce
    // the same harvest as over the plain in-memory store — and for the
    // deterministic executor (virtual timestamps) the persisted
    // snapshot must be *byte-identical*, sealed segments and all.
    let world = Arc::new(
        WorldConfig {
            alias_fraction: 0.0,
            ..WorldConfig::small_test(41)
        }
        .build(),
    );
    let allowed = calm_hosts(&world);
    assert!(allowed.len() >= 2, "world too hostile for the test");
    let seeds: Vec<String> = {
        let mut first_page_by_host: FxHashMap<u32, u64> = FxHashMap::default();
        for id in 0..world.page_count() as u64 {
            let e = first_page_by_host.entry(world.page(id).host).or_insert(id);
            *e = (*e).min(id);
        }
        let mut urls: Vec<String> = first_page_by_host
            .into_values()
            .filter(|&id| allowed.contains(&world.host(world.page(id).host).name))
            .map(|id| world.url_of(id))
            .collect();
        urls.sort();
        urls
    };
    let config = CrawlConfig {
        allowed_hosts: Some(allowed.clone()),
        ..CrawlConfig::default().harvesting()
    };
    let accept_all = |_: &AnalyzedDocument, _: &PageContext| Judgment {
        topic: Some(0),
        confidence: 1.0,
    };

    let seg_dir = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("bingo-equiv-seg-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    };
    // Seal every 16 documents so the crawl genuinely spans segments.
    let det_run = |store: DocumentStore| {
        let mut crawler = Crawler::new(Arc::clone(&world), config.clone(), store.clone());
        for url in &seeds {
            crawler.add_seed(url, Some(0));
        }
        let mut vocab = Vocabulary::new();
        let mut judge = accept_all;
        loop {
            if crawler.step(&mut judge, &mut vocab) == StepOutcome::FrontierEmpty {
                break;
            }
        }
        store.remap_terms(&vocab.canonical_map(0));
        store
    };
    let det_mem = det_run(DocumentStore::new());
    let det_seg = det_run(DocumentStore::segmented_with(seg_dir("det"), 16).expect("open"));
    assert!(
        det_seg.segment_count() >= 2,
        "crawl too small to span segments: {}",
        det_seg.segment_count()
    );
    assert!(det_mem.document_count() >= 10, "crawl too small");
    assert_eq!(row_keys(&det_mem), row_keys(&det_seg));
    assert_eq!(link_keys(&det_mem), link_keys(&det_seg));

    let snapshot_bytes = |store: &DocumentStore| {
        let mut buf = Vec::new();
        bingo_store::persist::write_snapshot(store, &mut buf).expect("snapshot");
        buf
    };
    assert_eq!(
        snapshot_bytes(&det_mem),
        snapshot_bytes(&det_seg),
        "segmented snapshot must serialize byte-identically to in-memory"
    );

    // The threaded executor uses wall-clock timestamps, so it gets the
    // row/link comparison (everything but `fetched_at`).
    let thr_run = |store: DocumentStore| {
        let shared = SharedVocabulary::new();
        bingo_crawler::run_pipeline(
            Arc::clone(&world),
            store.clone(),
            seeds.iter().map(|u| (u.clone(), Some(0))).collect(),
            &shared,
            &accept_all,
            &CrawlTelemetry::default(),
            &PipelineOptions::focused(config.clone(), 4, 7),
        );
        let (_, map) = shared.canonicalize();
        store.remap_terms(&map);
        store
    };
    let thr_seg = thr_run(DocumentStore::segmented_with(seg_dir("thr"), 16).expect("open"));
    assert!(thr_seg.segment_count() >= 2, "threaded run never sealed");
    assert_eq!(row_keys(&det_mem), row_keys(&thr_seg));
    assert_eq!(link_keys(&det_mem), link_keys(&thr_seg));

    // A reopened spine serves the identical harvest back from disk.
    // (Seal the workspace tail first: unsealed rows live in memory.)
    det_seg.seal_now().expect("final seal");
    drop(det_seg);
    let reopened = DocumentStore::segmented_with(seg_dir2("det"), 16).expect("reopen");
    assert_eq!(row_keys(&det_mem), row_keys(&reopened));
    assert_eq!(snapshot_bytes(&det_mem), snapshot_bytes(&reopened));

    std::fs::remove_dir_all(seg_dir2("det")).ok();
    std::fs::remove_dir_all(seg_dir2("thr")).ok();
}

/// The segment directory for `tag` without wiping it (unlike `seg_dir`
/// inside the test, which clears first).
fn seg_dir2(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bingo-equiv-seg-{tag}"))
}

#[test]
fn panic_injected_run_matches_calm_run_minus_quarantined() {
    // The supervised executor's equivalence contract under faults: with
    // deterministic crashers injected, the run still completes and its
    // store equals the calm run's store minus exactly the quarantined
    // documents. Classify-stage faults fire *after* analysis, so both
    // runs intern the same term universe and canonical ids line up.
    let world = Arc::new(
        WorldConfig {
            alias_fraction: 0.0,
            ..WorldConfig::small_test(41)
        }
        .build(),
    );
    let allowed = calm_hosts(&world);
    let mut urls: Vec<String> = (0..world.page_count() as u64)
        .filter(|&id| allowed.contains(&world.host(world.page(id).host).name))
        .map(|id| world.url_of(id))
        .collect();
    urls.sort();
    assert!(urls.len() >= 10, "world too hostile for the test");

    let accept_all = |_: &AnalyzedDocument, _: &PageContext| Judgment {
        topic: Some(0),
        confidence: 1.0,
    };
    let run = |fault: Option<FaultPlan>| {
        let store = DocumentStore::new();
        let shared = SharedVocabulary::new();
        let mut opts = PipelineOptions::flat(4, 8);
        opts.fault = fault;
        let report = bingo_crawler::run_pipeline(
            Arc::clone(&world),
            store.clone(),
            urls.iter().map(|u| (u.clone(), None)).collect(),
            &shared,
            &accept_all,
            &CrawlTelemetry::default(),
            &opts,
        );
        let (_, map) = shared.canonicalize();
        store.remap_terms(&map);
        (store, report)
    };

    let (calm_store, calm_report) = run(None);
    assert!(calm_report.quarantined.is_empty());

    let fault = FaultPlan {
        seed: 5,
        one_in: 6,
        panics_per_url: u32::MAX, // deterministic crashers
        stage: FaultStage::Classify,
    };
    let poisoned: Vec<String> = urls.iter().filter(|u| fault.selects(u)).cloned().collect();
    assert!(!poisoned.is_empty(), "plan must poison at least one URL");
    let (faulted_store, report) = run(Some(fault));
    assert_eq!(report.quarantined, poisoned, "exactly the poisoned URLs");

    let poisoned: FxHashSet<String> = poisoned.into_iter().collect();
    let expected: Vec<RowKey> = row_keys(&calm_store)
        .into_iter()
        .filter(|row| !poisoned.contains(&row.1))
        .collect();
    assert_eq!(row_keys(&faulted_store), expected);
}
