//! Chaos-scenario regression tests: determinism of faulty crawls and
//! the checkpoint/resume acceptance criterion — a crawl killed at 50%
//! of its document budget and resumed from the last automatic
//! checkpoint converges to the harvest ratio of an uninterrupted run.

use bingo_crawler::{BreakerState, CrawlConfig, Crawler, Judgment, PageContext, StepOutcome};
use bingo_store::durable::CrashFs;
use bingo_store::DocumentStore;
use bingo_textproc::{AnalyzedDocument, Vocabulary};
use bingo_webworld::gen::WorldConfig;
use std::sync::Arc;

fn accept_all() -> impl FnMut(&AnalyzedDocument, &PageContext) -> Judgment {
    |_doc, _ctx| Judgment {
        topic: Some(0),
        confidence: 1.0,
    }
}

fn chaos_crawler(seed: u64, config: CrawlConfig) -> Crawler {
    let world = Arc::new(WorldConfig::chaos(seed).build());
    assert!(
        !world.faults().is_empty(),
        "chaos world must install faults"
    );
    let mut crawler = Crawler::new(world.clone(), config, DocumentStore::new());
    crawler.add_seed(&world.url_of(1), Some(0));
    crawler
}

fn base_config() -> CrawlConfig {
    CrawlConfig {
        max_depth: 0,
        ..CrawlConfig::default()
    }
}

/// Run to frontier exhaustion; return (stats JSON, sorted harvest ids).
fn run_to_end(crawler: &mut Crawler) -> (String, Vec<u64>) {
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    crawler.run_until(u64::MAX, &mut judge, &mut vocab);
    let mut ids: Vec<u64> = crawler
        .store()
        .all_documents()
        .iter()
        .map(|d| d.id)
        .collect();
    ids.sort_unstable();
    (serde_json::to_string(crawler.stats()).unwrap(), ids)
}

#[test]
fn same_seed_chaos_runs_are_byte_identical() {
    let run = || {
        let mut crawler = chaos_crawler(77, base_config());
        run_to_end(&mut crawler)
    };
    let (stats_a, ids_a) = run();
    let (stats_b, ids_b) = run();
    assert!(!ids_a.is_empty(), "chaos crawl must store documents");
    assert_eq!(stats_a, stats_b, "CrawlStats must be byte-identical");
    assert_eq!(ids_a, ids_b, "harvest sets must be identical");
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the byte-identity test has teeth: a different
    // scenario seed produces a different crawl.
    let (stats_a, _) = run_to_end(&mut chaos_crawler(77, base_config()));
    let (stats_b, _) = run_to_end(&mut chaos_crawler(78, base_config()));
    assert_ne!(stats_a, stats_b);
}

#[test]
fn killed_at_half_budget_resumes_to_same_harvest_ratio() {
    let seed = 91;

    // Uninterrupted reference run.
    let mut reference = chaos_crawler(seed, base_config());
    let (_, ref_ids) = run_to_end(&mut reference);
    let budget = reference.stats().stored_pages;
    let ref_ratio = reference.stats().stored_pages as f64 / reference.stats().visited_urls as f64;
    assert!(budget > 40, "reference harvest too small: {budget}");

    // Same scenario with automatic checkpoints every 10 documents;
    // "kill" the crawl (drop the crawler) at 50% of the budget.
    let dir = std::env::temp_dir().join("bingo-chaos-resume-test");
    std::fs::remove_dir_all(&dir).ok();
    let ckpt_config = CrawlConfig {
        checkpoint_every_docs: 10,
        checkpoint_dir: Some(dir.clone()),
        ..base_config()
    };
    {
        let mut doomed = chaos_crawler(seed, ckpt_config.clone());
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        while doomed.stats().stored_pages < budget / 2 {
            if doomed.step(&mut judge, &mut vocab) == StepOutcome::FrontierEmpty {
                panic!("frontier drained before 50%");
            }
        }
        assert!(
            doomed.stats().checkpoints_written > 0,
            "no checkpoint written"
        );
        // Killed here: state after the last checkpoint is lost.
    }

    // Resume twice from the same checkpoint directory: both resumed
    // runs must be byte-identical to each other...
    let world = Arc::new(WorldConfig::chaos(seed).build());
    let resume = || {
        // Resume without further auto-checkpoints, so the second resume
        // reads the same (kill-time) session, not one the first resumed
        // run wrote.
        let resume_config = CrawlConfig {
            checkpoint_every_docs: 0,
            checkpoint_dir: None,
            ..ckpt_config.clone()
        };
        let mut crawler = Crawler::resume_session(world.clone(), resume_config, &dir).unwrap();
        assert!(
            crawler.stats().stored_pages >= budget / 2 - 10,
            "checkpoint missing recent progress"
        );
        run_to_end(&mut crawler)
    };
    let (stats_1, ids_1) = resume();
    let (stats_2, ids_2) = resume();
    assert_eq!(stats_1, stats_2, "same-seed resumes must be byte-identical");
    assert_eq!(ids_1, ids_2);

    // ...and converge to the uninterrupted run's harvest ratio within
    // 2%. (Exact equality is not guaranteed: the DNS cache is not part
    // of checkpoints, so resumed fetch timing can shift which fault
    // windows individual fetches hit.)
    let resumed: bingo_crawler::CrawlStats = serde_json::from_str(&stats_1).unwrap();
    let res_ratio = resumed.stored_pages as f64 / resumed.visited_urls as f64;
    let drift = (res_ratio - ref_ratio).abs() / ref_ratio;
    assert!(
        drift <= 0.02,
        "harvest ratio drifted {:.2}% (reference {ref_ratio:.4}, resumed {res_ratio:.4})",
        drift * 100.0
    );
    // The resumed harvest covers essentially the same documents.
    let overlap = ids_1
        .iter()
        .filter(|id| ref_ids.binary_search(id).is_ok())
        .count();
    assert!(
        overlap as f64 >= 0.98 * ref_ids.len() as f64,
        "resumed harvest lost documents: {overlap}/{}",
        ref_ids.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_mid_checkpoint_under_chaos_recovers_with_sane_breakers() {
    // Chaos faults *and* a crash injected into a checkpoint write: the
    // resume must come back from the last complete generation with a
    // breaker state machine that still behaves — hosts re-derived from
    // the checkpoint make progress and nobody stays open forever.
    let seed = 91;
    let dir = std::env::temp_dir().join("bingo-chaos-crash-test");
    std::fs::remove_dir_all(&dir).ok();
    let ckpt_config = CrawlConfig {
        checkpoint_every_docs: 10,
        checkpoint_dir: Some(dir.clone()),
        ..base_config()
    };
    {
        let mut doomed = chaos_crawler(seed, ckpt_config.clone());
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        while doomed.stats().stored_pages < 40 {
            if doomed.step(&mut judge, &mut vocab) == StepOutcome::FrontierEmpty {
                panic!("frontier drained before enough progress");
            }
        }
        assert!(doomed.stats().checkpoints_written > 0, "no checkpoint");
        // The process dies partway through its next checkpoint write:
        // the store snapshot lands truncated in a temp file, the
        // manifest is never written.
        let fs = CrashFs::with_budget(512);
        assert!(doomed.save_session_with(&fs, &dir).is_err());
        assert!(fs.crashed());
    }

    let world = Arc::new(WorldConfig::chaos(seed).build());
    let max_backoff_ms = ckpt_config.breaker.max_backoff_ms;
    let resume_config = CrawlConfig {
        checkpoint_every_docs: 0,
        checkpoint_dir: None,
        ..ckpt_config
    };
    let mut crawler = Crawler::resume_session(world, resume_config, &dir)
        .expect("crashed checkpoint must roll back to the last generation");
    let resumed_at = crawler.stats().stored_pages;
    assert!(resumed_at >= 10, "resume lost the checkpointed harvest");

    // Breaker sanity straight out of the checkpoint: every re-derived
    // open window is bounded by the breaker's own backoff cap.
    let horizon = |clock: u64| clock + max_backoff_ms + 1;
    for (host, _, _) in crawler.host_states() {
        if let BreakerState::Open { until_ms } = crawler.breaker_state(&host) {
            assert!(
                until_ms <= horizon(crawler.stats().elapsed_ms),
                "{host} resumed with an unbounded open window"
            );
        }
    }

    // The crawl still terminates and makes progress under chaos.
    let (_, ids) = run_to_end(&mut crawler);
    assert!(
        crawler.stats().stored_pages > resumed_at,
        "no progress after resume"
    );
    assert!(!ids.is_empty());

    // And at the end no host is stuck open beyond the final horizon:
    // open windows expire, then either close via a probe or die.
    for (host, _, fails) in crawler.host_states() {
        match crawler.breaker_state(&host) {
            BreakerState::Open { until_ms } => assert!(
                until_ms <= horizon(crawler.stats().elapsed_ms),
                "{host} stuck open past the backoff horizon"
            ),
            BreakerState::Closed | BreakerState::HalfOpen | BreakerState::Dead => {}
        }
        assert!(fails <= 1_000, "{host} accumulated absurd failure count");
    }
    std::fs::remove_dir_all(&dir).ok();
}
