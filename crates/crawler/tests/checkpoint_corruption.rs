//! Checkpoint-corruption property tests: however a session directory is
//! damaged — any file truncated at any offset, any byte window garbled,
//! any piece missing — [`Crawler::resume_session`] must either roll
//! back to an older complete generation or surface a clean
//! [`CheckpointError`]. Never a panic, never a half-loaded crawler.
//! Plus property tests that same-seed crawls emit byte-identical
//! telemetry (the determinism contract the bench gate enforces at macro
//! scale).

use bingo_crawler::checkpoint::{CheckpointError, CRAWLER_FILE, STORE_FILE};
use bingo_crawler::{CrawlConfig, CrawlTelemetry, Crawler, Judgment, PageContext};
use bingo_obs::{EventLog, Registry};
use bingo_store::durable::{self, MANIFEST_FILE};
use bingo_store::DocumentStore;
use bingo_textproc::{AnalyzedDocument, Vocabulary};
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::World;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

/// The files making up one checkpoint generation.
const PIECES: [&str; 3] = [MANIFEST_FILE, CRAWLER_FILE, STORE_FILE];

fn accept_all() -> impl FnMut(&AnalyzedDocument, &PageContext) -> Judgment {
    |_doc, _ctx| Judgment {
        topic: Some(0),
        confidence: 1.0,
    }
}

fn small_world(seed: u64) -> Arc<World> {
    Arc::new(WorldConfig::small_test(seed).build())
}

/// Crawl a little and save a valid session into a fresh directory.
fn saved_session(tag: &str) -> (Arc<World>, PathBuf) {
    let world = small_world(42);
    let dir = std::env::temp_dir().join(format!("bingo-ckpt-corruption-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
    crawler.add_seed(&world.url_of(1), Some(0));
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    crawler.run_until(20_000, &mut judge, &mut vocab);
    assert!(
        crawler.stats().stored_pages > 0,
        "session too small to test"
    );
    crawler.save_session(&dir).expect("save session");
    (world, dir)
}

/// One crawled-and-saved session, built once and copied per proptest
/// case so each case corrupts a private clone.
fn template() -> &'static (Arc<World>, PathBuf) {
    static TEMPLATE: OnceLock<(Arc<World>, PathBuf)> = OnceLock::new();
    TEMPLATE.get_or_init(|| saved_session("template"))
}

/// Copy the template session into a fresh directory.
fn clone_session(tag: &str) -> PathBuf {
    let (_, src) = template();
    let gen = durable::find_newest_complete(src).expect("template has a complete generation");
    let dst = std::env::temp_dir().join(format!("bingo-ckpt-corruption-{tag}"));
    std::fs::remove_dir_all(&dst).ok();
    let gen_dir = dst.join(gen.dir.file_name().expect("generation dir name"));
    std::fs::create_dir_all(&gen_dir).unwrap();
    for piece in PIECES {
        std::fs::copy(gen.dir.join(piece), gen_dir.join(piece)).unwrap();
    }
    dst
}

fn resume(world: &Arc<World>, dir: &Path) -> Result<Crawler, CheckpointError> {
    Crawler::resume_session(world.clone(), CrawlConfig::default(), dir)
}

#[test]
fn intact_session_resumes() {
    let (world, dir) = saved_session("intact");
    let crawler = resume(&world, &dir).expect("intact session must resume");
    assert!(crawler.stats().stored_pages > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rollback_recovers_the_previous_generation() {
    // Two generations; the newest one damaged → resume must roll back
    // to the older complete generation, not fail.
    let world = small_world(42);
    let dir = std::env::temp_dir().join("bingo-ckpt-corruption-rollback");
    std::fs::remove_dir_all(&dir).ok();
    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
    crawler.add_seed(&world.url_of(1), Some(0));
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    crawler.run_until(15_000, &mut judge, &mut vocab);
    crawler.save_session(&dir).expect("first save");
    let stored_then = crawler.stats().stored_pages;
    crawler.run_until(40_000, &mut judge, &mut vocab);
    crawler.save_session(&dir).expect("second save");

    let generations = durable::complete_generations(&dir);
    assert_eq!(generations.len(), 2, "both generations kept (keep=2)");
    // Garble the newest generation's store snapshot: its checksum no
    // longer matches the manifest, so the generation is incomplete.
    let newest_store = generations[0].dir.join(STORE_FILE);
    let mut bytes = std::fs::read(&newest_store).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xa5;
    std::fs::write(&newest_store, &bytes).unwrap();

    let resumed = resume(&world, &dir).expect("rollback to older generation");
    assert_eq!(
        resumed.stats().stored_pages,
        stored_then,
        "resume recovered the first save's state"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_pieces_are_clean_errors() {
    // Whole directory absent.
    let world = small_world(42);
    let nowhere = std::env::temp_dir().join("bingo-ckpt-corruption-does-not-exist");
    std::fs::remove_dir_all(&nowhere).ok();
    assert!(matches!(
        resume(&world, &nowhere),
        Err(CheckpointError::Store(_))
    ));

    // Any single piece deleted from the only generation: the manifest
    // no longer verifies (or is gone), so there is no complete
    // generation and no legacy flat files to fall back to.
    for piece in PIECES {
        let dir = clone_session(&format!("missing-{piece}"));
        let gen = durable::generation_numbers(&dir);
        let gen_dir = durable::generation_dir(&dir, gen[0]);
        std::fs::remove_file(gen_dir.join(piece)).unwrap();
        let (world, _) = template();
        assert!(
            resume(world, &dir).is_err(),
            "missing {piece} must fail cleanly"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncate any piece of the only generation at an arbitrary offset:
    /// resume must fail with a clean error (no older generation exists),
    /// never panic.
    #[test]
    fn truncation_anywhere_fails_clean(piece in 0usize..3, frac in 0.0f64..1.0) {
        let dir = clone_session(&format!("trunc-{piece}-{}", (frac * 1e6) as u64));
        let gen = durable::generation_numbers(&dir);
        let path = durable::generation_dir(&dir, gen[0]).join(PIECES[piece]);
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let (world, _) = template();
        let outcome = resume(world, &dir).map(|_| ());
        prop_assert!(outcome.is_err(), "truncated {} at {cut} must fail", PIECES[piece]);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Garble an arbitrary byte window of any piece (XOR 0xA5): the
    /// manifest checksum (or the manifest itself) no longer verifies,
    /// and resume fails cleanly.
    #[test]
    fn garbling_anywhere_fails_clean(
        piece in 0usize..3,
        frac in 0.0f64..1.0,
        window in 1usize..16,
    ) {
        let dir = clone_session(&format!("garble-{piece}-{}-{window}", (frac * 1e6) as u64));
        let gen = durable::generation_numbers(&dir);
        let path = durable::generation_dir(&dir, gen[0]).join(PIECES[piece]);
        let mut bytes = std::fs::read(&path).unwrap();
        let start = ((bytes.len() as f64 * frac) as usize).min(bytes.len() - 1);
        let end = (start + window).min(bytes.len());
        for b in &mut bytes[start..end] {
            *b ^= 0xa5;
        }
        std::fs::write(&path, &bytes).unwrap();
        let (world, _) = template();
        let outcome = resume(world, &dir).map(|_| ());
        prop_assert!(
            outcome.is_err(),
            "garbled {} at {start}..{end} must fail",
            PIECES[piece]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Run a telemetry-instrumented crawl and return its deterministic
/// telemetry as bytes: (metrics snapshot JSON, events JSONL).
fn telemetry_bytes(seed: u64, budget_ms: u64) -> (String, String) {
    let world = Arc::new(WorldConfig::chaos(seed).build());
    let registry = Arc::new(Registry::new());
    let events = Arc::new(EventLog::default());
    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
    crawler.set_telemetry(CrawlTelemetry::new(registry.clone(), events.clone()));
    crawler.add_seed(&world.url_of(1), Some(0));
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    crawler.run_until(budget_ms, &mut judge, &mut vocab);
    (
        registry.snapshot().deterministic().to_json(),
        events.to_jsonl(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The determinism contract of the observability layer, at property
    /// scale: whatever the seed and budget, two identical runs emit
    /// byte-identical deterministic metrics and event logs.
    #[test]
    fn same_seed_runs_emit_identical_telemetry(seed in 0u64..64, budget_ms in 4_000u64..30_000) {
        let (snap_a, events_a) = telemetry_bytes(seed, budget_ms);
        let (snap_b, events_b) = telemetry_bytes(seed, budget_ms);
        prop_assert_eq!(snap_a, snap_b);
        prop_assert_eq!(events_a, events_b);
    }

    /// Different budgets must actually change the telemetry (guards
    /// against the snapshot being trivially empty).
    #[test]
    fn telemetry_reflects_the_crawl(seed in 0u64..16) {
        let (snap, events) = telemetry_bytes(seed, 25_000);
        prop_assert!(snap.contains("crawl.fetch.ok"));
        prop_assert!(!snap.contains("wall"), "volatile metric leaked into deterministic snapshot");
        // Chaos worlds trip breakers: the event log should not be empty
        // for most seeds, but an empty log is legal — only assert shape.
        for line in events.lines() {
            prop_assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
