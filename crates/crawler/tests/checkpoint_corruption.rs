//! Checkpoint-corruption regression tests: a truncated, garbled or
//! half-missing session directory must come back from
//! [`Crawler::resume_session`] as a clean [`CheckpointError`] — never a
//! panic — so an operator can diagnose a damaged session instead of
//! debugging a crash. Plus property tests that same-seed crawls emit
//! byte-identical telemetry (the determinism contract the bench gate
//! enforces at macro scale).

use bingo_crawler::checkpoint::{CheckpointError, CRAWLER_FILE, STORE_FILE};
use bingo_crawler::{CrawlConfig, CrawlTelemetry, Crawler, Judgment, PageContext};
use bingo_obs::{EventLog, Registry};
use bingo_store::DocumentStore;
use bingo_textproc::{AnalyzedDocument, Vocabulary};
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::World;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn accept_all() -> impl FnMut(&AnalyzedDocument, &PageContext) -> Judgment {
    |_doc, _ctx| Judgment {
        topic: Some(0),
        confidence: 1.0,
    }
}

fn small_world(seed: u64) -> Arc<World> {
    Arc::new(WorldConfig::small_test(seed).build())
}

/// Crawl a little and save a valid session into a fresh directory.
fn saved_session(tag: &str) -> (Arc<World>, PathBuf) {
    let world = small_world(42);
    let dir = std::env::temp_dir().join(format!("bingo-ckpt-corruption-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
    crawler.add_seed(&world.url_of(1), Some(0));
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    crawler.run_until(20_000, &mut judge, &mut vocab);
    assert!(
        crawler.stats().stored_pages > 0,
        "session too small to test"
    );
    crawler.save_session(&dir).expect("save session");
    (world, dir)
}

fn resume(world: &Arc<World>, dir: &Path) -> Result<Crawler, CheckpointError> {
    Crawler::resume_session(world.clone(), CrawlConfig::default(), dir)
}

#[test]
fn intact_session_resumes() {
    let (world, dir) = saved_session("intact");
    let crawler = resume(&world, &dir).expect("intact session must resume");
    assert!(crawler.stats().stored_pages > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_crawler_checkpoint_is_a_clean_format_error() {
    let (world, dir) = saved_session("truncated-crawler");
    let path = dir.join(CRAWLER_FILE);
    let bytes = std::fs::read(&path).unwrap();
    // Cut the JSON mid-document at several points: every prefix must
    // surface as Format, not a panic.
    for cut in [1usize, bytes.len() / 4, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match resume(&world, &dir).map(|_| ()) {
            Err(CheckpointError::Format(msg)) => assert!(!msg.is_empty()),
            other => panic!("cut at {cut}: expected Format error, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbled_crawler_checkpoint_is_a_clean_format_error() {
    let (world, dir) = saved_session("garbled-crawler");
    let path = dir.join(CRAWLER_FILE);
    // Binary garbage: not even UTF-8.
    std::fs::write(&path, [0xffu8, 0x00, 0x13, 0x37, 0xfe]).unwrap();
    assert!(matches!(
        resume(&world, &dir),
        Err(CheckpointError::Format(_) | CheckpointError::Io(_))
    ));
    // Valid JSON of the wrong shape.
    std::fs::write(&path, br#"{"magic": "not-a-checkpoint"}"#).unwrap();
    assert!(matches!(
        resume(&world, &dir),
        Err(CheckpointError::Format(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_store_snapshot_is_a_clean_store_error() {
    let (world, dir) = saved_session("corrupt-store");
    let path = dir.join(STORE_FILE);
    let original = std::fs::read_to_string(&path).unwrap();

    // Garble a document line in the middle.
    let mut lines: Vec<&str> = original.lines().collect();
    assert!(lines.len() > 2, "store snapshot unexpectedly tiny");
    let mid = lines.len() / 2;
    lines[mid] = "{ this is not a document row";
    std::fs::write(&path, lines.join("\n")).unwrap();
    match resume(&world, &dir).map(|_| ()) {
        Err(CheckpointError::Store(msg)) => assert!(!msg.is_empty()),
        other => panic!("expected Store error, got {other:?}"),
    }

    // Truncate: header promises more rows than the file holds.
    let half: String = original
        .lines()
        .take(original.lines().count() / 2)
        .collect::<Vec<_>>()
        .join("\n");
    std::fs::write(&path, half).unwrap();
    assert!(matches!(
        resume(&world, &dir),
        Err(CheckpointError::Store(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_pieces_are_clean_errors() {
    // Whole directory absent: the store snapshot fails to open first.
    let world = small_world(42);
    let nowhere = std::env::temp_dir().join("bingo-ckpt-corruption-does-not-exist");
    std::fs::remove_dir_all(&nowhere).ok();
    assert!(matches!(
        resume(&world, &nowhere),
        Err(CheckpointError::Store(_))
    ));

    // Store present but the crawler checkpoint missing: an Io error.
    let (world, dir) = saved_session("missing-crawler");
    std::fs::remove_file(dir.join(CRAWLER_FILE)).unwrap();
    assert!(matches!(resume(&world, &dir), Err(CheckpointError::Io(_))));
    std::fs::remove_dir_all(&dir).ok();
}

/// Run a telemetry-instrumented crawl and return its deterministic
/// telemetry as bytes: (metrics snapshot JSON, events JSONL).
fn telemetry_bytes(seed: u64, budget_ms: u64) -> (String, String) {
    let world = Arc::new(WorldConfig::chaos(seed).build());
    let registry = Arc::new(Registry::new());
    let events = Arc::new(EventLog::default());
    let mut crawler = Crawler::new(world.clone(), CrawlConfig::default(), DocumentStore::new());
    crawler.set_telemetry(CrawlTelemetry::new(registry.clone(), events.clone()));
    crawler.add_seed(&world.url_of(1), Some(0));
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    crawler.run_until(budget_ms, &mut judge, &mut vocab);
    (
        registry.snapshot().deterministic().to_json(),
        events.to_jsonl(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The determinism contract of the observability layer, at property
    /// scale: whatever the seed and budget, two identical runs emit
    /// byte-identical deterministic metrics and event logs.
    #[test]
    fn same_seed_runs_emit_identical_telemetry(seed in 0u64..64, budget_ms in 4_000u64..30_000) {
        let (snap_a, events_a) = telemetry_bytes(seed, budget_ms);
        let (snap_b, events_b) = telemetry_bytes(seed, budget_ms);
        prop_assert_eq!(snap_a, snap_b);
        prop_assert_eq!(events_a, events_b);
    }

    /// Different budgets must actually change the telemetry (guards
    /// against the snapshot being trivially empty).
    #[test]
    fn telemetry_reflects_the_crawl(seed in 0u64..16) {
        let (snap, events) = telemetry_bytes(seed, 25_000);
        prop_assert!(snap.contains("crawl.fetch.ok"));
        prop_assert!(!snap.contains("wall"), "volatile metric leaked into deterministic snapshot");
        // Chaos worlds trip breakers: the event log should not be empty
        // for most seeds, but an empty log is legal — only assert shape.
        for line in events.lines() {
            prop_assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
