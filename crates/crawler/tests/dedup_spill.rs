//! The sharded spillable duplicate filter must be indistinguishable
//! from the plain in-memory one:
//!
//! * a proptest drives both filters with the same arbitrary URL/response
//!   stream (including journaled marks and rollbacks) and demands
//!   identical answers plus byte-identical snapshots, and
//! * a crash matrix kills shard-file merges at pseudo-random byte
//!   offsets via [`CrashFs`] and demands the filter keeps answering
//!   exactly, leaves no torn shard file behind, and that stale debris
//!   is swept on the next construction.

use bingo_crawler::dedup::{Dedup, DedupSpillConfig};
use bingo_store::{CrashFs, StdFs};
use bingo_textproc::fxhash;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::Arc;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bingo-dedupspill-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn tiny_cfg(dir: &PathBuf) -> DedupSpillConfig {
    DedupSpillConfig {
        hot_cap: 8,
        bloom_bits_log2: 10,
        ..DedupSpillConfig::new(dir)
    }
}

/// One event in the duplicate-filter stream.
#[derive(Debug, Clone)]
enum Event {
    Url(String),
    Response {
        ip: u32,
        path: String,
        size: u64,
    },
    /// Journal the next `n` URL marks, then roll them back.
    JournaledRollback(Vec<String>),
}

fn url_strategy() -> impl Strategy<Value = String> {
    // A small host/path universe so duplicates actually occur.
    (0u32..12, 0u32..40).prop_map(|(h, p)| format!("http://host{h}.example/dir{}/p{p}", p % 5))
}

fn event_strategy() -> impl Strategy<Value = Event> {
    // Unweighted arms (the vendored proptest has no weight syntax):
    // listing the URL arm twice biases toward URL marks.
    prop_oneof![
        url_strategy().prop_map(Event::Url),
        url_strategy().prop_map(Event::Url),
        (0u32..6, 0u32..30, 50u64..220).prop_map(|(ip, p, size)| Event::Response {
            ip,
            path: format!("/dir/p{p}"),
            size,
        }),
        proptest::collection::vec(url_strategy(), 1..4).prop_map(Event::JournaledRollback),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Spilled and resident filters answer identically over arbitrary
    /// streams, and their snapshots are byte-identical.
    #[test]
    fn spilled_dedup_equals_resident_dedup(
        events in proptest::collection::vec(event_strategy(), 1..120),
        case in 0u64..u64::MAX,
    ) {
        let dir = fresh_dir(&format!("prop-{case}"));
        let mut resident = Dedup::new();
        let mut spilled = Dedup::with_spill(&tiny_cfg(&dir));
        for event in &events {
            match event {
                Event::Url(url) => {
                    prop_assert_eq!(resident.url_seen(url), spilled.url_seen(url));
                    prop_assert_eq!(resident.mark_url(url), spilled.mark_url(url));
                    prop_assert!(spilled.url_seen(url));
                }
                Event::Response { ip, path, size } => {
                    prop_assert_eq!(
                        resident.mark_response(*ip, path, *size),
                        spilled.mark_response(*ip, path, *size)
                    );
                }
                Event::JournaledRollback(urls) => {
                    let (mut jr, mut js) = (Vec::new(), Vec::new());
                    for url in urls {
                        prop_assert_eq!(
                            resident.mark_url_journaled(url, &mut jr),
                            spilled.mark_url_journaled(url, &mut js)
                        );
                    }
                    resident.unmark(&jr);
                    spilled.unmark(&js);
                    for url in urls {
                        prop_assert_eq!(resident.url_seen(url), spilled.url_seen(url));
                    }
                }
            }
        }
        let stats = spilled.stats();
        prop_assert_eq!(stats.io_errors, 0);
        prop_assert_eq!(resident.urls_marked(), spilled.urls_marked());
        let (a, b) = (resident.snapshot(), spilled.snapshot());
        prop_assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "snapshots diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

fn crash_seeds() -> Vec<u64> {
    match std::env::var("BINGO_CRASH_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 3],
    }
}

#[test]
fn shard_merge_killed_at_arbitrary_bytes_keeps_answers_exact() {
    // How many bytes does a clean run write? Feed the same stream
    // through an unlimited CrashFs-free run to size the budget sweep.
    let urls: Vec<String> = (0..160)
        .map(|i| format!("http://h{}/p{i}", i % 7))
        .collect();
    let clean_dir = fresh_dir("crash-clean");
    {
        let mut d = Dedup::with_spill(&tiny_cfg(&clean_dir));
        for url in &urls {
            d.mark_url(url);
            d.mark_response(7, url, 100 + (url.len() as u64));
        }
        assert!(d.stats().merges > 0, "stream too small to force merges");
    }
    let total: u64 = std::fs::read_dir(&clean_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.metadata().map(|m| m.len()).unwrap_or(0))
        .sum();
    std::fs::remove_dir_all(&clean_dir).ok();
    assert!(total > 0);

    let mut budgets: Vec<u64> = vec![0, 1, 15, 16, 17, total - 1];
    for seed in crash_seeds() {
        for i in 0u64..4 {
            budgets.push(fxhash::hash_one(&(seed, i, "dedup")) % total);
        }
    }
    budgets.sort_unstable();
    budgets.dedup();

    for budget in budgets {
        let dir = fresh_dir(&format!("crash-{budget}"));
        let fs = CrashFs::with_budget(budget);
        let crashed_writes = {
            let mut spilled = Dedup::with_spill_fs(&tiny_cfg(&dir), Arc::new(fs));
            let mut resident = Dedup::new();
            // Every answer stays exact even while merges start failing:
            // fingerprints that could not reach disk stay resident.
            for url in &urls {
                assert_eq!(
                    resident.mark_url(url),
                    spilled.mark_url(url),
                    "budget {budget}: mark diverged on {url}"
                );
                assert_eq!(
                    resident.mark_response(7, url, 100 + (url.len() as u64)),
                    spilled.mark_response(7, url, 100 + (url.len() as u64)),
                    "budget {budget}: response mark diverged on {url}"
                );
                assert!(spilled.url_seen(url), "budget {budget}: lost {url}");
            }
            let snap_r = resident.snapshot();
            let snap_s = spilled.snapshot();
            assert_eq!(
                serde_json::to_string(&snap_r).unwrap(),
                serde_json::to_string(&snap_s).unwrap(),
                "budget {budget}: snapshot diverged after crashed merges"
            );
            spilled.stats().io_errors
        };
        // Committed shard files on disk are never torn: each one holds
        // whole 16-byte records (atomic_write commits fully or not at
        // all; a crash may leave a `.spill.tmp` prefix, which is
        // scratch the next sweep removes).
        for entry in std::fs::read_dir(&dir).unwrap().flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                continue;
            }
            let len = entry.metadata().unwrap().len();
            assert_eq!(
                len % 16,
                0,
                "budget {budget}: torn shard file {name:?} ({len} bytes)"
            );
        }
        // A fresh filter over the same directory sweeps the debris of
        // the crashed run before reusing it.
        let swept = Dedup::with_spill_fs(&tiny_cfg(&dir), Arc::new(StdFs));
        if crashed_writes > 0 {
            assert!(
                swept.stats().stale_reaped > 0 || std::fs::read_dir(&dir).unwrap().count() == 0,
                "budget {budget}: stale shard files survived the sweep"
            );
        }
        drop(swept);
        std::fs::remove_dir_all(&dir).ok();
    }
}
