//! Authority-guided frontier ordering: a host-level webgraph maintained
//! online from the store's link rows, blended into frontier priorities.
//!
//! BINGO! runs HITS only at retraining time; the Treasure-Crawler /
//! PDD-crawler line of work shows that blending link-structure authority
//! with content relevance prediction lifts harvest ratio. This module
//! threads that signal into the crawl:
//!
//! * [`HostAuthority`] is an [`IndexTee`]: it observes every accepted
//!   document row (to learn which host each stored page lives on) and
//!   every link-row batch the bulk loader flushes, folding them into a
//!   [`HostGraph`] — page-level links compact onto host pairs with
//!   multiplicities.
//! * Every `recompute_every_batches` observed link batches the authority
//!   scores are recomputed *incrementally* (PageRank warm-started from
//!   the previous vector, or exact harmonic centrality), not from
//!   scratch on every batch. Batches arrive in virtual-clock order, so
//!   the recompute schedule is deterministic.
//! * The crawler blends the signal into every enqueued link:
//!   `priority = α·content_priority + β·host_authority(link host)`,
//!   where `content_priority` is the existing SVM-confidence-derived
//!   priority and `host_authority` is normalized to `[0, 1]`.
//!
//! **Determinism.** With `enabled = false` (the default) no tee is
//! attached and the blend multiplies by nothing — the crawl is
//! bit-identical to a build without this module. With the blend on, all
//! inputs (link arrival order, recompute cadence, score arithmetic) are
//! pure functions of the seeded crawl, so same-seed runs still replay
//! byte-identical telemetry; `α = 1, β = 0` degenerates to the unblended
//! ordering exactly (`1.0 * p + 0.0 * a == p` in IEEE 754 for finite
//! `p`). The graph checkpoints inside the crawler's generation
//! machinery ([`AuthorityCheckpoint`]), so a resumed crawl replays the
//! same orderings as an uninterrupted one.

use bingo_graph::{AuthoritySignal, HostGraph, HostGraphSnapshot, HostNode, PageRankConfig};
use bingo_store::{DocumentRow, IndexTee, LinkRow};
use bingo_textproc::fxhash::FxHashMap;
use bingo_webworld::fetch::host_of_url;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::telemetry::GraphTelemetry;

/// Configuration of the authority blend. Disabled by default so
/// existing crawls hold bit-identical.
#[derive(Debug, Clone)]
pub struct AuthorityConfig {
    /// Master switch: `false` (default) attaches no tee and leaves
    /// frontier priorities untouched.
    pub enabled: bool,
    /// Weight of the content-derived priority (SVM confidence).
    pub alpha: f32,
    /// Weight of the normalized host authority.
    pub beta: f32,
    /// Recompute authority every N observed link batches (a batch = one
    /// bulk-loader flush; ≥ 1).
    pub recompute_every_batches: u64,
    /// Which centrality serves as host authority.
    pub signal: AuthoritySignal,
    /// PageRank parameters for [`AuthoritySignal::PageRank`].
    pub pagerank: PageRankConfig,
}

impl Default for AuthorityConfig {
    fn default() -> Self {
        AuthorityConfig {
            enabled: false,
            alpha: 0.7,
            beta: 0.3,
            recompute_every_batches: 32,
            signal: AuthoritySignal::PageRank,
            pagerank: PageRankConfig::default(),
        }
    }
}

impl AuthorityConfig {
    /// An enabled blend with the default weights.
    pub fn enabled() -> Self {
        AuthorityConfig {
            enabled: true,
            ..AuthorityConfig::default()
        }
    }
}

/// Serializable state of a [`HostAuthority`], embedded in
/// [`crate::checkpoint::CrawlCheckpoint`] so resume replays identical
/// frontier orderings. All fields sort deterministically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuthorityCheckpoint {
    /// The host graph (nodes, edges, scores).
    pub graph: HostGraphSnapshot,
    /// Stored-page → host-node map, sorted by page id.
    pub page_hosts: Vec<(u64, HostNode)>,
    /// Link batches observed since the last recompute.
    pub batches_since_recompute: u64,
}

struct AuthorityState {
    graph: HostGraph,
    /// Host node of every stored page, learned from accepted document
    /// rows; link rows carry only the *source* page id, so this map
    /// resolves the source host.
    page_hosts: FxHashMap<u64, HostNode>,
    batches_since_recompute: u64,
}

/// Shared host-graph + authority-score state fed by the store tee and
/// queried by the crawler's frontier policy.
pub struct HostAuthority {
    cfg: AuthorityConfig,
    state: Mutex<AuthorityState>,
    telemetry: Mutex<GraphTelemetry>,
}

impl HostAuthority {
    /// Fresh empty authority state.
    pub fn new(cfg: AuthorityConfig, telemetry: GraphTelemetry) -> Self {
        HostAuthority {
            cfg,
            state: Mutex::new(AuthorityState {
                graph: HostGraph::new(),
                page_hosts: FxHashMap::default(),
                batches_since_recompute: 0,
            }),
            telemetry: Mutex::new(telemetry),
        }
    }

    /// Route this authority's metrics into a different registry (the
    /// crawler swaps telemetry when the engine wires a shared one).
    pub fn set_telemetry(&self, telemetry: GraphTelemetry) {
        *self.telemetry.lock() = telemetry;
    }

    /// The blend: `α·content + β·authority(host)`. `content` is the
    /// existing confidence-derived priority; unknown hosts contribute 0.
    pub fn blend(&self, content: f32, host: &str) -> f32 {
        self.cfg.alpha * content + self.cfg.beta * self.authority_of(host)
    }

    /// Normalized authority of a host in `[0, 1]` (0 before the first
    /// recompute or for unseen hosts).
    pub fn authority_of(&self, host: &str) -> f32 {
        self.state.lock().graph.authority_of(host) as f32
    }

    /// Hosts currently in the graph.
    pub fn host_count(&self) -> usize {
        self.state.lock().graph.host_count()
    }

    /// Distinct inter-host edges.
    pub fn edge_count(&self) -> usize {
        self.state.lock().graph.edge_count()
    }

    /// Authority recomputations performed.
    pub fn recomputes(&self) -> u64 {
        self.state.lock().graph.recomputes()
    }

    /// Top-`n` hosts by authority score, best first.
    pub fn top_hosts(&self, n: usize) -> Vec<(String, f64)> {
        self.state
            .lock()
            .graph
            .top(n)
            .into_iter()
            .map(|(h, s)| (h.to_string(), s))
            .collect()
    }

    /// Snapshot for the crawl checkpoint (sorted, byte-stable).
    pub fn checkpoint(&self) -> AuthorityCheckpoint {
        let state = self.state.lock();
        let mut page_hosts: Vec<(u64, HostNode)> =
            state.page_hosts.iter().map(|(&p, &h)| (p, h)).collect();
        page_hosts.sort_unstable();
        AuthorityCheckpoint {
            graph: state.graph.snapshot(),
            page_hosts,
            batches_since_recompute: state.batches_since_recompute,
        }
    }

    /// Overwrite state from a checkpoint (resume path).
    pub fn restore(&self, cp: AuthorityCheckpoint) {
        let mut state = self.state.lock();
        state.graph = HostGraph::restore(cp.graph);
        state.page_hosts = cp.page_hosts.into_iter().collect();
        state.batches_since_recompute = cp.batches_since_recompute;
        let telemetry = self.telemetry.lock();
        telemetry.hosts.set(state.graph.host_count() as i64);
        telemetry.edges.set(state.graph.edge_count() as i64);
    }

    /// Force a recompute now (exposed for experiments and tests; the
    /// crawl path recomputes on the batch cadence).
    pub fn recompute_now(&self) -> usize {
        let mut state = self.state.lock();
        let iters = state.graph.recompute(self.cfg.signal, self.cfg.pagerank);
        state.batches_since_recompute = 0;
        let telemetry = self.telemetry.lock();
        telemetry.recomputes.inc();
        telemetry.recompute_iters.observe(iters as u64);
        iters
    }
}

impl IndexTee for HostAuthority {
    fn on_insert(&self, rows: &[DocumentRow]) {
        let mut state = self.state.lock();
        for row in rows {
            if let Some(host) = host_of_url(&row.url) {
                let node = state.graph.intern(host);
                state.page_hosts.insert(row.id, node);
            }
        }
    }

    fn on_links(&self, links: &[LinkRow]) {
        let mut state = self.state.lock();
        let mut observed = 0u64;
        for link in links {
            let Some(&from) = state.page_hosts.get(&link.from) else {
                continue; // source page never stored (should not happen)
            };
            let Some(to_host) = host_of_url(&link.to_url) else {
                continue;
            };
            let to = state.graph.intern(to_host);
            state.graph.add_link_nodes(from, to);
            observed += 1;
        }
        state.batches_since_recompute += 1;
        let due = state.batches_since_recompute >= self.cfg.recompute_every_batches.max(1);
        let iters = if due {
            state.batches_since_recompute = 0;
            Some(state.graph.recompute(self.cfg.signal, self.cfg.pagerank))
        } else {
            None
        };
        let telemetry = self.telemetry.lock();
        telemetry.links.add(observed);
        telemetry.hosts.set(state.graph.host_count() as i64);
        telemetry.edges.set(state.graph.edge_count() as i64);
        if let Some(iters) = iters {
            telemetry.recomputes.inc();
            telemetry.recompute_iters.observe(iters as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_textproc::MimeType;

    fn doc(id: u64, url: &str) -> DocumentRow {
        DocumentRow {
            id,
            url: url.into(),
            host: 0,
            mime: MimeType::Html,
            depth: 0,
            title: String::new(),
            topic: None,
            confidence: 0.0,
            term_freqs: vec![],
            size: 1,
            fetched_at: 0,
        }
    }

    fn link(from: u64, to: u64, to_url: &str) -> LinkRow {
        LinkRow {
            from,
            to,
            to_url: to_url.into(),
        }
    }

    fn authority(cfg: AuthorityConfig) -> HostAuthority {
        HostAuthority::new(cfg, crate::telemetry::CrawlTelemetry::default().graph)
    }

    #[test]
    fn tee_builds_the_host_graph() {
        let auth = authority(AuthorityConfig {
            recompute_every_batches: 1,
            ..AuthorityConfig::enabled()
        });
        auth.on_insert(&[doc(1, "http://a.edu/x"), doc(2, "http://b.org/y")]);
        auth.on_links(&[
            link(1, 2, "http://b.org/y"),
            link(1, 3, "http://c.com/z"),
            link(2, 3, "http://c.com/z"),
            link(1, 4, "http://a.edu/other"), // intra-host: no edge
        ]);
        assert_eq!(auth.host_count(), 3);
        assert_eq!(auth.edge_count(), 3);
        assert_eq!(auth.recomputes(), 1, "cadence 1 recomputes per batch");
        // c.com is the sink: highest authority.
        assert_eq!(auth.top_hosts(1)[0].0, "c.com");
        assert!((auth.authority_of("c.com") - 1.0).abs() < 1e-6);
        assert_eq!(auth.authority_of("unknown.net"), 0.0);
    }

    #[test]
    fn recompute_cadence_counts_batches() {
        let auth = authority(AuthorityConfig {
            recompute_every_batches: 3,
            ..AuthorityConfig::enabled()
        });
        auth.on_insert(&[doc(1, "http://a.edu/x")]);
        auth.on_links(&[link(1, 2, "http://b.org/p")]);
        auth.on_links(&[link(1, 3, "http://c.com/p")]);
        assert_eq!(auth.recomputes(), 0, "two batches: not yet due");
        auth.on_links(&[link(1, 4, "http://d.io/p")]);
        assert_eq!(auth.recomputes(), 1, "third batch triggers");
    }

    #[test]
    fn blend_with_beta_zero_is_identity() {
        let auth = authority(AuthorityConfig {
            alpha: 1.0,
            beta: 0.0,
            recompute_every_batches: 1,
            ..AuthorityConfig::enabled()
        });
        auth.on_insert(&[doc(1, "http://a.edu/x")]);
        auth.on_links(&[link(1, 2, "http://b.org/p")]);
        for p in [0.0f32, 0.25, 0.5, 0.99, 7.5] {
            assert_eq!(auth.blend(p, "b.org"), p);
        }
    }

    #[test]
    fn checkpoint_round_trips_byte_identically() {
        let auth = authority(AuthorityConfig {
            recompute_every_batches: 2,
            ..AuthorityConfig::enabled()
        });
        auth.on_insert(&[doc(1, "http://a.edu/x"), doc(2, "http://b.org/y")]);
        auth.on_links(&[link(1, 2, "http://b.org/y"), link(2, 3, "http://c.com/z")]);
        let cp = auth.checkpoint();
        assert_eq!(cp.batches_since_recompute, 1);

        let restored = authority(AuthorityConfig::enabled());
        restored.restore(cp.clone());
        assert_eq!(restored.host_count(), auth.host_count());
        assert_eq!(restored.edge_count(), auth.edge_count());
        assert_eq!(restored.authority_of("c.com"), auth.authority_of("c.com"));
        let a = serde_json::to_string(&cp).unwrap();
        let b = serde_json::to_string(&restored.checkpoint()).unwrap();
        assert_eq!(a, b, "restore → checkpoint is byte-identical");
    }
}
