//! Host health management: per-host circuit breakers (Section 4.2,
//! extended).
//!
//! "A good focused crawler needs to handle crawl failures. If the DNS
//! resolution or page download causes a timeout or error, we tag the
//! corresponding host as slow. For slow hosts the number of retrials is
//! restricted to 3; if the third attempt fails the host is tagged as bad
//! and excluded for the rest of the current crawl."
//!
//! The paper's static escalation (good → slow → bad) wastes harvest on
//! *transiently* failing hosts: a server throwing 5xx for a minute is
//! excluded forever. This module replaces the fixed budget with a
//! circuit breaker per host:
//!
//! * **Closed** — requests flow. `failure_threshold` *consecutive*
//!   failures trip the breaker.
//! * **Open** — requests are deferred until a deadline computed by
//!   exponential backoff (`base << cycles`, capped, ± deterministic
//!   jitter so hosts don't thunder-herd on the same virtual tick).
//! * **Half-open** — after the deadline one *probe* request is let
//!   through. Success closes the breaker (the only path back to
//!   closed); failure re-opens it with a doubled deadline.
//! * **Dead** — after `max_open_cycles` re-opens the host is excluded
//!   for the rest of the crawl, which recovers the paper's "tagged as
//!   bad" terminal state.
//!
//! All timing uses the crawl's virtual clock and all jitter is hashed
//! from `(host, cycle)`, so chaos crawls replay identically per seed.

use bingo_store::HostState;
use bingo_textproc::fxhash::{self, FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};

/// Circuit-breaker tuning. Defaults keep the paper's "3 strikes"
/// threshold while adding recovery.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker (paper: 3).
    pub failure_threshold: u32,
    /// First open deadline, in virtual ms.
    pub base_backoff_ms: u64,
    /// Ceiling on the open deadline.
    pub max_backoff_ms: u64,
    /// Jitter amplitude around the deadline, in per-mille of it.
    pub jitter_permille: u16,
    /// Open→half-open→open round trips before the host is declared dead.
    pub max_open_cycles: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            base_backoff_ms: 500,
            max_backoff_ms: 60_000,
            jitter_permille: 250,
            max_open_cycles: 5,
        }
    }
}

impl BreakerConfig {
    /// The open deadline duration for a given re-open cycle:
    /// exponential, capped, with deterministic per-host jitter.
    fn backoff_ms(&self, host: &str, cycle: u32) -> u64 {
        let base = self
            .base_backoff_ms
            .saturating_shl(cycle.min(20))
            .min(self.max_backoff_ms)
            .max(1);
        let amplitude = base * self.jitter_permille as u64 / 1000;
        if amplitude == 0 {
            return base;
        }
        // Hash in [0, 2*amplitude], centered on the base deadline.
        let h = fxhash::hash_one(&(host, cycle, 0xB4C0u32)) % (2 * amplitude + 1);
        base - amplitude + h
    }
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// Breaker position of one host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Tripped: requests are deferred until `until_ms`.
    Open {
        /// Virtual deadline after which a probe is allowed.
        until_ms: u64,
    },
    /// One probe request is in flight; its outcome decides the breaker.
    HalfOpen,
    /// Excluded for the rest of the crawl.
    Dead,
}

/// Full health record of one host (serializable for checkpoints).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostHealth {
    /// Breaker position.
    pub state: BreakerState,
    /// Consecutive failures while closed.
    pub consecutive_failures: u32,
    /// Times the breaker has (re-)opened.
    pub open_cycles: u32,
    /// Lifetime failure count (diagnostics only).
    pub total_failures: u32,
}

impl Default for HostHealth {
    fn default() -> Self {
        HostHealth {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_cycles: 0,
            total_failures: 0,
        }
    }
}

/// What the crawler should do with a URL of this host right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostDecision {
    /// Breaker closed: fetch normally.
    Proceed,
    /// Breaker just moved to half-open: fetch as the probe.
    Probe,
    /// Breaker open: park the URL until the deadline.
    Defer {
        /// Virtual deadline to park until.
        until_ms: u64,
    },
    /// Host is excluded; drop the URL.
    Dead,
}

/// What a recorded failure did to the host's breaker (the caller turns
/// these into [`crate::CrawlStats`] counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureOutcome {
    /// Breaker still closed (threshold not reached).
    Counted,
    /// Breaker tripped open until the given deadline.
    Opened {
        /// Virtual deadline of the open period.
        until_ms: u64,
    },
    /// Breaker exhausted its cycles; the host is now dead.
    Died,
}

/// Per-host crawl health bookkeeping: circuit breakers plus the visited
/// set reported in Table 1.
#[derive(Debug, Default)]
pub struct HostManager {
    health: FxHashMap<String, HostHealth>,
    visited: FxHashSet<String>,
    config: BreakerConfig,
}

impl HostManager {
    /// Manager with the paper-style threshold of `max_retries`
    /// consecutive failures and default breaker timing.
    pub fn new(max_retries: u32) -> Self {
        HostManager::with_config(BreakerConfig {
            failure_threshold: max_retries.max(1),
            ..BreakerConfig::default()
        })
    }

    /// Manager with explicit breaker tuning.
    pub fn with_config(config: BreakerConfig) -> Self {
        HostManager {
            health: FxHashMap::default(),
            visited: FxHashSet::default(),
            config,
        }
    }

    /// The breaker tuning in effect.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// True when the host has been excluded for the rest of the crawl.
    pub fn is_bad(&self, host: &str) -> bool {
        matches!(
            self.health.get(host).map(|h| h.state),
            Some(BreakerState::Dead)
        )
    }

    /// Coarse host state for the store's host table: healthy hosts are
    /// good, hosts with failure history or an open breaker are slow,
    /// excluded hosts are bad.
    pub fn state(&self, host: &str) -> HostState {
        match self.health.get(host) {
            None => HostState::Good,
            Some(h) => match h.state {
                BreakerState::Dead => HostState::Bad,
                BreakerState::Open { .. } | BreakerState::HalfOpen => HostState::Slow,
                BreakerState::Closed => {
                    if h.consecutive_failures > 0 || h.open_cycles > 0 {
                        HostState::Slow
                    } else {
                        HostState::Good
                    }
                }
            },
        }
    }

    /// Breaker position of a host.
    pub fn breaker_state(&self, host: &str) -> BreakerState {
        self.health
            .get(host)
            .map(|h| h.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Gate a request to `host` at virtual time `now_ms`. An open
    /// breaker whose deadline has passed moves to half-open here and the
    /// caller gets [`HostDecision::Probe`] — exactly one probe, since
    /// the transition happens on the first call past the deadline.
    pub fn decide(&mut self, host: &str, now_ms: u64) -> HostDecision {
        let Some(h) = self.health.get_mut(host) else {
            return HostDecision::Proceed;
        };
        match h.state {
            BreakerState::Closed => HostDecision::Proceed,
            BreakerState::HalfOpen => HostDecision::Probe,
            BreakerState::Dead => HostDecision::Dead,
            BreakerState::Open { until_ms } => {
                if now_ms >= until_ms {
                    h.state = BreakerState::HalfOpen;
                    HostDecision::Probe
                } else {
                    HostDecision::Defer { until_ms }
                }
            }
        }
    }

    /// Record a successful fetch. A half-open breaker closes — the only
    /// transition back to closed — and the host's failure history
    /// resets. Also counts the host as visited (Table 1).
    /// Returns true when this success closed a breaker.
    pub fn record_success(&mut self, host: &str) -> bool {
        self.visited.insert(host.to_string());
        let Some(h) = self.health.get_mut(host) else {
            return false;
        };
        let closed = h.state == BreakerState::HalfOpen;
        if closed {
            h.state = BreakerState::Closed;
            h.open_cycles = 0;
        }
        if h.state == BreakerState::Closed {
            h.consecutive_failures = 0;
        }
        closed
    }

    /// Record a failed fetch/DNS attempt at virtual time `now_ms` and
    /// report what it did to the breaker.
    pub fn record_failure(&mut self, host: &str, now_ms: u64) -> FailureOutcome {
        let config = self.config.clone();
        let h = self.health.entry(host.to_string()).or_default();
        h.total_failures += 1;
        match h.state {
            BreakerState::Dead => FailureOutcome::Died,
            BreakerState::Closed => {
                h.consecutive_failures += 1;
                if h.consecutive_failures >= config.failure_threshold {
                    Self::trip(h, host, now_ms, &config)
                } else {
                    FailureOutcome::Counted
                }
            }
            // A failed probe re-opens with a longer deadline; a failure
            // reported while already open (a fetch that was in flight
            // when the breaker tripped) counts the same way.
            BreakerState::HalfOpen | BreakerState::Open { .. } => {
                Self::trip(h, host, now_ms, &config)
            }
        }
    }

    fn trip(h: &mut HostHealth, host: &str, now_ms: u64, config: &BreakerConfig) -> FailureOutcome {
        if h.open_cycles >= config.max_open_cycles {
            h.state = BreakerState::Dead;
            return FailureOutcome::Died;
        }
        let until_ms = now_ms + config.backoff_ms(host, h.open_cycles);
        h.state = BreakerState::Open { until_ms };
        h.open_cycles += 1;
        h.consecutive_failures = 0;
        FailureOutcome::Opened { until_ms }
    }

    /// Whether requests to this host can still eventually succeed.
    pub fn retries_left(&self, host: &str) -> bool {
        !self.is_bad(host)
    }

    /// Number of distinct hosts successfully visited (Table 1).
    pub fn visited_count(&self) -> usize {
        self.visited.len()
    }

    /// Export current coarse states (for persistence into the host
    /// table).
    pub fn states(&self) -> impl Iterator<Item = (&str, HostState, u32)> + '_ {
        self.health
            .iter()
            .map(|(name, h)| (name.as_str(), self.state(name), h.total_failures))
    }

    /// Serializable snapshot: health records and visited hosts, sorted
    /// by hostname for byte-stable checkpoints.
    pub fn snapshot(&self) -> (Vec<(String, HostHealth)>, Vec<String>) {
        let mut health: Vec<(String, HostHealth)> = self
            .health
            .iter()
            .map(|(n, h)| (n.clone(), h.clone()))
            .collect();
        health.sort_by(|a, b| a.0.cmp(&b.0));
        let mut visited: Vec<String> = self.visited.iter().cloned().collect();
        visited.sort();
        (health, visited)
    }

    /// Rebuild a manager from a snapshot.
    pub fn restore(
        config: BreakerConfig,
        health: Vec<(String, HostHealth)>,
        visited: Vec<String>,
    ) -> Self {
        HostManager {
            health: health.into_iter().collect(),
            visited: visited.into_iter().collect(),
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            base_backoff_ms: 1000,
            max_backoff_ms: 8000,
            jitter_permille: 0, // deterministic deadlines for assertions
            max_open_cycles: 2,
        }
    }

    #[test]
    fn threshold_trips_breaker_open() {
        let mut m = HostManager::with_config(cfg());
        assert_eq!(m.decide("h", 0), HostDecision::Proceed);
        assert_eq!(m.record_failure("h", 10), FailureOutcome::Counted);
        assert_eq!(m.record_failure("h", 20), FailureOutcome::Counted);
        assert_eq!(m.state("h"), HostState::Slow);
        match m.record_failure("h", 30) {
            FailureOutcome::Opened { until_ms } => assert_eq!(until_ms, 1030),
            o => panic!("{o:?}"),
        }
        assert_eq!(m.decide("h", 500), HostDecision::Defer { until_ms: 1030 });
        assert!(!m.is_bad("h"));
    }

    #[test]
    fn open_becomes_half_open_probe_then_closed_on_success() {
        let mut m = HostManager::with_config(cfg());
        for t in 0..3 {
            m.record_failure("h", t * 10);
        }
        assert_eq!(m.decide("h", 2000), HostDecision::Probe);
        assert_eq!(m.breaker_state("h"), BreakerState::HalfOpen);
        // Probe succeeds: breaker closes and history resets.
        assert!(m.record_success("h"));
        assert_eq!(m.breaker_state("h"), BreakerState::Closed);
        assert_eq!(m.decide("h", 2100), HostDecision::Proceed);
        // The reset is real: three fresh failures are needed to re-trip.
        assert_eq!(m.record_failure("h", 2200), FailureOutcome::Counted);
        assert_eq!(m.record_failure("h", 2210), FailureOutcome::Counted);
    }

    #[test]
    fn failed_probe_doubles_backoff_then_dies() {
        let mut m = HostManager::with_config(cfg());
        for t in 0..3 {
            m.record_failure("h", t);
        }
        assert_eq!(m.decide("h", 1500), HostDecision::Probe);
        match m.record_failure("h", 1500) {
            // Second cycle: base << 1.
            FailureOutcome::Opened { until_ms } => assert_eq!(until_ms, 1500 + 2000),
            o => panic!("{o:?}"),
        }
        assert_eq!(m.decide("h", 4000), HostDecision::Probe);
        // max_open_cycles = 2 exhausted: the host dies.
        assert_eq!(m.record_failure("h", 4000), FailureOutcome::Died);
        assert!(m.is_bad("h"));
        assert!(!m.retries_left("h"));
        assert_eq!(m.decide("h", 9999), HostDecision::Dead);
        assert_eq!(m.state("h"), HostState::Bad);
    }

    #[test]
    fn success_only_closes_from_half_open() {
        let mut m = HostManager::with_config(cfg());
        for t in 0..3 {
            m.record_failure("h", t);
        }
        let open = m.breaker_state("h");
        assert!(matches!(open, BreakerState::Open { .. }));
        // A success recorded while open (e.g. a stale in-flight fetch)
        // does NOT close the breaker.
        assert!(!m.record_success("h"));
        assert_eq!(m.breaker_state("h"), open);
    }

    #[test]
    fn backoff_caps_and_jitters_deterministically() {
        let c = BreakerConfig {
            base_backoff_ms: 1000,
            max_backoff_ms: 4000,
            jitter_permille: 250,
            ..BreakerConfig::default()
        };
        // Cap: cycle 10 would be 1000 << 10 without the ceiling.
        let capped = c.backoff_ms("h", 10);
        assert!(capped <= 5000, "cap + jitter bound, got {capped}");
        assert!(capped >= 3000, "cap - jitter bound, got {capped}");
        // Determinism and host spread.
        assert_eq!(c.backoff_ms("h", 0), c.backoff_ms("h", 0));
        let spread: std::collections::HashSet<u64> = (0..20)
            .map(|i| c.backoff_ms(&format!("host{i}"), 0))
            .collect();
        assert!(spread.len() > 1, "jitter must separate hosts");
    }

    #[test]
    fn success_counts_visited_hosts() {
        let mut m = HostManager::new(3);
        m.record_success("a");
        m.record_success("a");
        m.record_success("b");
        assert_eq!(m.visited_count(), 2);
    }

    #[test]
    fn independent_hosts() {
        let mut m = HostManager::with_config(BreakerConfig {
            failure_threshold: 1,
            max_open_cycles: 0,
            ..cfg()
        });
        assert_eq!(m.record_failure("x", 0), FailureOutcome::Died);
        assert!(m.is_bad("x"));
        assert!(!m.is_bad("y"));
        assert_eq!(m.state("y"), HostState::Good);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut m = HostManager::with_config(cfg());
        m.record_failure("x", 5);
        for t in 0..3 {
            m.record_failure("y", t);
        }
        m.record_success("a");
        let (health, visited) = m.snapshot();
        let r = HostManager::restore(cfg(), health.clone(), visited.clone());
        assert_eq!(r.breaker_state("x"), m.breaker_state("x"));
        assert_eq!(r.breaker_state("y"), m.breaker_state("y"));
        assert_eq!(r.visited_count(), 1);
        let (h2, v2) = r.snapshot();
        assert_eq!(format!("{h2:?}"), format!("{health:?}"));
        assert_eq!(v2, visited);
    }
}
