//! Host management (Section 4.2).
//!
//! "A good focused crawler needs to handle crawl failures. If the DNS
//! resolution or page download causes a timeout or error, we tag the
//! corresponding host as slow. For slow hosts the number of retrials is
//! restricted to 3; if the third attempt fails the host is tagged as bad
//! and excluded for the rest of the current crawl."

use bingo_store::HostState;
use bingo_textproc::fxhash::{FxHashMap, FxHashSet};

/// Per-host crawl health bookkeeping plus domain allow/lock lists.
#[derive(Debug, Default)]
pub struct HostManager {
    states: FxHashMap<String, (HostState, u32)>,
    visited: FxHashSet<String>,
    max_retries: u32,
}

impl HostManager {
    /// Manager with the given retry budget per host.
    pub fn new(max_retries: u32) -> Self {
        HostManager {
            states: FxHashMap::default(),
            visited: FxHashSet::default(),
            max_retries: max_retries.max(1),
        }
    }

    /// True when the host has been tagged bad (excluded).
    pub fn is_bad(&self, host: &str) -> bool {
        matches!(self.states.get(host), Some((HostState::Bad, _)))
    }

    /// Current state of a host.
    pub fn state(&self, host: &str) -> HostState {
        self.states
            .get(host)
            .map(|&(s, _)| s)
            .unwrap_or(HostState::Good)
    }

    /// Record a failed fetch/DNS attempt. The host becomes slow on the
    /// first failure and bad when the retry budget is exhausted.
    /// Returns the resulting state.
    pub fn record_failure(&mut self, host: &str) -> HostState {
        let entry = self
            .states
            .entry(host.to_string())
            .or_insert((HostState::Good, 0));
        entry.1 += 1;
        entry.0 = if entry.1 >= self.max_retries {
            HostState::Bad
        } else {
            HostState::Slow
        };
        entry.0
    }

    /// Record a successful fetch (counts the host as visited; does not
    /// reset the failure budget — a flaky host keeps its history).
    pub fn record_success(&mut self, host: &str) {
        self.visited.insert(host.to_string());
    }

    /// Whether another retry is allowed for this host.
    pub fn retries_left(&self, host: &str) -> bool {
        match self.states.get(host) {
            Some((HostState::Bad, _)) => false,
            Some((_, n)) => *n < self.max_retries,
            None => true,
        }
    }

    /// Number of distinct hosts successfully visited (Table 1).
    pub fn visited_count(&self) -> usize {
        self.visited.len()
    }

    /// Export current states (for persistence into the host table).
    pub fn states(&self) -> impl Iterator<Item = (&str, HostState, u32)> {
        self.states.iter().map(|(h, &(s, n))| (h.as_str(), s, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalation_good_slow_bad() {
        let mut m = HostManager::new(3);
        assert_eq!(m.state("h"), HostState::Good);
        assert!(m.retries_left("h"));
        assert_eq!(m.record_failure("h"), HostState::Slow);
        assert!(m.retries_left("h"));
        assert_eq!(m.record_failure("h"), HostState::Slow);
        assert_eq!(m.record_failure("h"), HostState::Bad);
        assert!(m.is_bad("h"));
        assert!(!m.retries_left("h"));
    }

    #[test]
    fn success_counts_visited_hosts() {
        let mut m = HostManager::new(3);
        m.record_success("a");
        m.record_success("a");
        m.record_success("b");
        assert_eq!(m.visited_count(), 2);
    }

    #[test]
    fn independent_hosts() {
        let mut m = HostManager::new(2);
        m.record_failure("x");
        m.record_failure("x");
        assert!(m.is_bad("x"));
        assert!(!m.is_bad("y"));
        assert_eq!(m.state("y"), HostState::Good);
    }

    #[test]
    fn states_export() {
        let mut m = HostManager::new(3);
        m.record_failure("x");
        let v: Vec<_> = m.states().collect();
        assert_eq!(v, vec![("x", HostState::Slow, 1)]);
    }
}
