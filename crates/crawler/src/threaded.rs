//! Real-thread crawl pipeline for raw throughput measurement
//! (Section 4.1: "the crawler can sustain a throughput of up to ten
//! thousand documents per minute").
//!
//! Unlike the deterministic discrete-event crawler, this executor runs N
//! OS threads that fetch, convert, analyze and bulk-load documents as
//! fast as the machine allows (simulated network latencies are *not*
//! slept — the measurement targets the processing and storage pipeline,
//! which is what the paper's §4.1 throughput number is about).

use bingo_store::{BulkLoader, DocumentRow, DocumentStore};
use bingo_textproc::{analyze_html, ContentRegistry, Vocabulary};
use bingo_webworld::{FetchOutcome, World};
use crossbeam::channel;
use std::sync::Arc;
use std::time::Instant;

/// Outcome of a throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Documents stored.
    pub documents: u64,
    /// Wall-clock duration of the run.
    pub wall: std::time::Duration,
    /// Documents per minute.
    pub docs_per_minute: f64,
}

/// Pump `urls` through fetch→convert→analyze→bulk-load with `threads`
/// workers, each owning a private workspace of `batch_size` rows.
pub fn run_pipeline(
    world: Arc<World>,
    store: DocumentStore,
    urls: Vec<String>,
    threads: usize,
    batch_size: usize,
) -> ThroughputReport {
    let (tx, rx) = channel::unbounded::<String>();
    for url in urls {
        tx.send(url).expect("queue open");
    }
    drop(tx);

    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let rx = rx.clone();
            let world = Arc::clone(&world);
            let store = store.clone();
            scope.spawn(move || {
                // Each worker owns its vocabulary: term ids here are
                // worker-local, which is fine for a throughput measure
                // (the deterministic crawler shares one vocabulary).
                let mut vocab = Vocabulary::new();
                let registry = ContentRegistry::new();
                let mut loader = BulkLoader::with_batch_size(store, batch_size);
                while let Ok(url) = rx.recv() {
                    let FetchOutcome::Ok(resp) = world.fetch(&url, 0) else {
                        continue;
                    };
                    let Ok(html) = registry.to_html(resp.mime, &resp.payload) else {
                        continue;
                    };
                    let doc = analyze_html(&html, &mut vocab);
                    loader.add_document(DocumentRow {
                        id: resp.page_id,
                        url: resp.url,
                        host: world.page(resp.page_id).host,
                        mime: resp.mime,
                        depth: 0,
                        title: doc.title,
                        topic: None,
                        confidence: 0.0,
                        term_freqs: doc.term_freqs.iter().map(|&(t, f)| (t.0, f)).collect(),
                        size: resp.size as usize,
                        fetched_at: 0,
                    });
                }
            });
        }
    });

    let wall = started.elapsed();
    let documents = store.document_count() as u64;
    ThroughputReport {
        documents,
        wall,
        docs_per_minute: documents as f64 / wall.as_secs_f64() * 60.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_webworld::gen::WorldConfig;

    #[test]
    fn pipeline_processes_all_healthy_urls() {
        let world = Arc::new(WorldConfig::small_test(41).build());
        let urls: Vec<String> = (0..world.page_count() as u64)
            .filter(|&id| {
                world.page(id).size_hint.is_none()
                    && world.page(id).redirect_to.is_none()
                    && world.host(world.page(id).host).behavior
                        == bingo_webworld::HostBehavior::Normal
            })
            .map(|id| world.url_of(id))
            .collect();
        let store = DocumentStore::new();
        let report = run_pipeline(world, store.clone(), urls.clone(), 4, 32);
        assert_eq!(report.documents as usize, urls.len());
        assert_eq!(store.document_count(), urls.len());
        assert!(report.docs_per_minute > 0.0);
    }

    #[test]
    fn single_thread_works() {
        let world = Arc::new(WorldConfig::small_test(42).build());
        let urls = vec![world.url_of(1), world.url_of(2)];
        let store = DocumentStore::new();
        let report = run_pipeline(world, store, urls, 1, 1);
        assert!(report.documents >= 1);
    }
}
