//! Real-thread executor over the shared document pipeline
//! (Section 4.1: "the crawler can sustain a throughput of up to ten
//! thousand documents per minute").
//!
//! Unlike the deterministic discrete-event crawler, this executor runs N
//! OS threads that pull *batches* of documents through the staged
//! pipeline of [`crate::pipeline`] — the same MIME filtering, duplicate
//! elimination, content conversion, analysis, classification and
//! bulk-loading code the deterministic executor drives one document at a
//! time. Simulated network latencies are *not* slept: the measurement
//! targets the processing and storage pipeline, which is what the
//! paper's §4.1 throughput number is about.
//!
//! The crawl itself is a **level-synchronized BFS**: each depth level is
//! distributed over the workers through a channel, and the next level
//! starts only after the current one drains. That keeps depths exact
//! (a page always gets the depth of its shallowest discoverer) and
//! guarantees a predecessor's top terms are available to its successors'
//! neighbour feature space, while still letting every level saturate all
//! cores. URL/fingerprint duplicate elimination is shared across workers
//! behind a mutex; term ids come from the lock-sharded
//! [`SharedVocabulary`], whose `canonicalize` map makes the final store
//! comparable with a single-threaded run.
//!
//! # Supervision
//!
//! A worker panic must not abort a multi-day crawl, and a single
//! pathological document must not wedge it in a retry loop. Workers
//! therefore run every batch under `catch_unwind` (the supervisor-tree
//! discipline): a panicking worker rolls back the duplicate
//! fingerprints its half-processed batch journaled, discards the rows
//! staged in its bulk-load workspace, and dies reporting its in-flight
//! URLs. The level loop doubles as the supervisor — it requeues those
//! URLs into a retry round of single-URL batches (isolating whichever
//! document actually crashes), charges a per-URL poison budget on every
//! attributable (solo) panic, **quarantines** documents that exhaust
//! it, and respawns replacement workers up to a restart budget. Every
//! panic, requeue, quarantine and restart is counted and logged through
//! [`CrawlTelemetry`]. Shared state is accessed through a
//! poison-recovering lock helper: a panicked peer never takes the
//! dedup filter or the statistics down with it.
//!
//! Differences from the discrete-event executor, by design:
//!
//! * no circuit breakers, politeness slots or backoff parking — retries
//!   on transient failures happen inline and immediately;
//! * redirects are followed inline (same hop limit, same URL dedup);
//! * soft focus without tunnelling: links are followed iff the document
//!   classified positively (harvesting-mode semantics);
//! * `fetched_at` is run-relative wall-clock milliseconds, not virtual
//!   time.

use crate::dedup::{path_of_url, Dedup, DedupMark};
use crate::pipeline::{process_batch, top_terms, BatchJudge, DocOutcome, FetchedDoc};
use crate::telemetry::CrawlTelemetry;
use crate::types::{CrawlConfig, CrawlStats, MAX_HOSTNAME_LEN, MAX_URL_LEN};
use bingo_obs::Event;
use bingo_store::{BulkLoader, BulkLoaderObs, DocumentStore};
use bingo_textproc::fxhash::{self, FxHashMap};
use bingo_textproc::{ContentRegistry, SharedVocabulary, TermId};
use bingo_webworld::fetch::host_of_url;
use bingo_webworld::{FetchOutcome, FetchResponse, World};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

/// Acquire a mutex, recovering from poisoning: a panicked worker never
/// takes shared crawl state down with it. Rollback of the panicked
/// batch is the supervisor's job, not the lock's.
fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Supervisor limits for the threaded executor.
#[derive(Debug, Clone)]
pub struct SupervisionConfig {
    /// Attributable (single-URL batch) panics a URL may cause before it
    /// is quarantined instead of requeued.
    pub poison_budget: u32,
    /// Total replacement workers the supervisor may spawn; once
    /// exhausted, still-unprocessed panic survivors are quarantined so
    /// the crawl terminates.
    pub restart_budget: u32,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            poison_budget: 2,
            restart_budget: 1024,
        }
    }
}

/// Pipeline stage a [`FaultPlan`] fires in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStage {
    /// Panic while fetching the selected URL.
    Fetch,
    /// Panic while classifying the selected URL's document.
    Classify,
}

/// Deterministic, seeded worker-panic injection (test harness for the
/// supervisor). URLs are selected by hash — `1-in-one_in` of them —
/// and each selected URL panics `panics_per_url` times before
/// behaving: `u32::MAX` models a poisoned document (quarantined), a
/// small count models a transient crash (eventually stored).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Selection seed: different seeds poison different URL subsets.
    pub seed: u64,
    /// One in this many URLs is selected (0 disables the plan).
    pub one_in: u64,
    /// Panics each selected URL fires before succeeding.
    pub panics_per_url: u32,
    /// Stage the panic fires in.
    pub stage: FaultStage,
}

impl FaultPlan {
    /// True when the plan selects `url` (deterministic in seed + URL).
    pub fn selects(&self, url: &str) -> bool {
        self.one_in > 0 && fxhash::hash_one(&(self.seed, url)).is_multiple_of(self.one_in)
    }
}

/// Shared fire-count bookkeeping for a [`FaultPlan`]: "panic k times
/// then succeed" needs the count to survive the panic, so it is bumped
/// *before* the unwind starts.
struct FaultInjector {
    plan: FaultPlan,
    fired: Mutex<FxHashMap<u64, u32>>,
}

impl FaultInjector {
    fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            fired: Mutex::new(FxHashMap::default()),
        }
    }

    fn maybe_fire(&self, stage: FaultStage, url: &str) {
        if self.plan.stage != stage || !self.plan.selects(url) {
            return;
        }
        let fire = {
            let mut fired = lock_clean(&self.fired);
            let count = fired.entry(fxhash::hash_one(&url)).or_insert(0);
            if *count < self.plan.panics_per_url {
                *count += 1;
                true
            } else {
                false
            }
        };
        if fire {
            panic!("injected {stage:?} fault: {url}");
        }
    }
}

/// Options for a real-thread pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Hygiene/focus configuration (allowed/locked hosts, depth and
    /// redirect/retry limits). Breaker and politeness settings are
    /// ignored — this executor has no virtual clock to park on.
    pub config: CrawlConfig,
    /// Worker threads.
    pub threads: usize,
    /// Documents per pipeline batch.
    pub batch_size: usize,
    /// Follow the links of positively classified documents, level by
    /// level (BFS). When false the run processes exactly the given URLs
    /// at depth 0 — the flat throughput-measurement mode.
    pub follow_links: bool,
    /// Supervisor limits (poison and restart budgets).
    pub supervision: SupervisionConfig,
    /// Seeded worker-panic injection (tests only; `None` in production).
    pub fault: Option<FaultPlan>,
}

impl PipelineOptions {
    /// Flat throughput run: fixed URL list, no link following.
    pub fn flat(threads: usize, batch_size: usize) -> Self {
        PipelineOptions {
            config: CrawlConfig::default(),
            threads,
            batch_size,
            follow_links: false,
            supervision: SupervisionConfig::default(),
            fault: None,
        }
    }

    /// Focused crawl from seeds: follow links of positively classified
    /// documents under `config`'s hygiene rules.
    pub fn focused(config: CrawlConfig, threads: usize, batch_size: usize) -> Self {
        PipelineOptions {
            config,
            threads,
            batch_size,
            follow_links: true,
            supervision: SupervisionConfig::default(),
            fault: None,
        }
    }

    /// This run with a seeded fault plan installed.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// Outcome of a throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Documents stored.
    pub documents: u64,
    /// Wall-clock duration of the run.
    pub wall: std::time::Duration,
    /// Documents per minute.
    pub docs_per_minute: f64,
    /// Crawl counters aggregated over all workers.
    pub stats: CrawlStats,
    /// URLs quarantined by the supervisor (poison budget exhausted),
    /// sorted.
    pub quarantined: Vec<String>,
}

/// One URL waiting for a worker, with the crawl context its discoverer
/// attached (the threaded twin of the frontier's `QueueEntry`).
/// Serializable so work-queue overflow batches can spill to disk.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct WorkItem {
    url: String,
    depth: u32,
    src_topic: Option<u32>,
    src_page: u64,
    anchor_terms: Vec<TermId>,
}

/// Spill file prefix of the level work queue (registered in
/// [`bingo_store::SPILL_FILE_PREFIXES`] so stale files are swept).
const WORK_SPILL_PREFIX: &str = "work-";

/// FIFO work queue for one BFS level. With `work_queue_hot_cap` set
/// (and a frontier spill directory configured), overflow past the hot
/// tier spills to `work-*.spill` batch files — JSON lines of
/// [`WorkItem`] written with [`bingo_store::durable::atomic_write`] —
/// and is read back in insertion order, so pop order is identical to
/// the fully resident queue. A failed spill write keeps the batch
/// resident (order and answers never change; only the memory bound
/// degrades). Spill files are scratch: stale ones from an aborted run
/// are swept when the executor starts.
struct PendingQueue {
    hot: VecDeque<WorkItem>,
    /// Items newer than every spilled batch, awaiting flush or drain.
    overflow: Vec<WorkItem>,
    /// Spilled batches, oldest first: `(path, item count)`.
    spill_files: VecDeque<(PathBuf, usize)>,
    spilled: usize,
    /// Hot-tier capacity; 0 keeps the queue fully resident.
    hot_cap: usize,
    dir: Option<PathBuf>,
    /// Run-global file-number source: the current level's queue and the
    /// accumulating next-level queue spill into the same directory.
    file_seq: Arc<AtomicU64>,
    spill_batches: u64,
}

impl PendingQueue {
    fn new(config: &CrawlConfig, file_seq: Arc<AtomicU64>) -> Self {
        let spilling = config.work_queue_hot_cap > 0 && config.frontier_spill_dir.is_some();
        PendingQueue {
            hot: VecDeque::new(),
            overflow: Vec::new(),
            spill_files: VecDeque::new(),
            spilled: 0,
            hot_cap: if spilling {
                config.work_queue_hot_cap
            } else {
                0
            },
            dir: if spilling {
                config.frontier_spill_dir.clone()
            } else {
                None
            },
            file_seq,
            spill_batches: 0,
        }
    }

    fn len(&self) -> usize {
        self.hot.len() + self.spilled + self.overflow.len()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push_back(&mut self, item: WorkItem) {
        if self.hot_cap == 0
            || (self.spill_files.is_empty()
                && self.overflow.is_empty()
                && self.hot.len() < self.hot_cap)
        {
            self.hot.push_back(item);
            return;
        }
        self.overflow.push(item);
        if self.overflow.len() >= self.hot_cap {
            self.flush_overflow();
        }
    }

    /// Write the overflow buffer as one spill batch; on failure the
    /// batch just stays resident.
    fn flush_overflow(&mut self) {
        let Some(dir) = &self.dir else { return };
        if self.overflow.is_empty() {
            return;
        }
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let mut bytes = Vec::new();
        for item in &self.overflow {
            if serde_json::to_writer(&mut bytes, item).is_err() {
                return;
            }
            bytes.push(b'\n');
        }
        let seq = self.file_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("{WORK_SPILL_PREFIX}{seq:06}.spill"));
        if bingo_store::durable::atomic_write(&path, &bytes).is_err() {
            return;
        }
        let count = self.overflow.len();
        self.overflow.clear();
        self.spilled += count;
        self.spill_files.push_back((path, count));
        self.spill_batches += 1;
    }

    fn pop_front(&mut self) -> Option<WorkItem> {
        if self.hot.is_empty() {
            self.refill();
        }
        self.hot.pop_front()
    }

    /// Reload the oldest spilled batch (or, once none remain, the
    /// resident overflow tail) into the hot tier.
    fn refill(&mut self) {
        if let Some((path, count)) = self.spill_files.pop_front() {
            let bytes = std::fs::read(&path).expect("work-queue spill file vanished");
            std::fs::remove_file(&path).ok();
            self.spilled -= count;
            let text = String::from_utf8(bytes).expect("work-queue spill file corrupt");
            for line in text.lines().filter(|l| !l.is_empty()) {
                let item: WorkItem =
                    serde_json::from_str(line).expect("work-queue spill file corrupt");
                self.hot.push_back(item);
            }
        } else {
            self.hot.extend(self.overflow.drain(..));
        }
    }
}

/// What one worker reported back to the supervisor when it finished or
/// died.
#[derive(Default)]
struct WorkerExit {
    /// Work items discovered for the next BFS level (kept even when the
    /// worker later panicked: they came from fully committed batches).
    next_level: Vec<WorkItem>,
    /// Set when the worker died mid-batch.
    panic: Option<PanicReport>,
}

/// A caught worker panic, with the batch that was in flight.
struct PanicReport {
    /// Rendered panic payload.
    message: String,
    /// URLs consumed from the level queue whose processing never
    /// committed — the supervisor requeues or quarantines them.
    in_flight: Vec<WorkItem>,
}

/// Render a panic payload for events and counters.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Pump `seeds` (URL, topic) through the staged document pipeline with
/// `opts.threads` workers. Classification runs through `judge` on whole
/// batches; stored rows carry real depths, judgments and link rows, so
/// the resulting store matches a deterministic crawl of the same URL set
/// modulo term-id numbering (see [`SharedVocabulary::canonicalize`]) and
/// row order. Worker panics are supervised (see the module docs): the
/// run always completes, with at most the quarantined documents
/// missing.
pub fn run_pipeline(
    world: Arc<World>,
    store: DocumentStore,
    seeds: Vec<(String, Option<u32>)>,
    vocab: &SharedVocabulary,
    judge: &dyn BatchJudge,
    telemetry: &CrawlTelemetry,
    opts: &PipelineOptions,
) -> ThroughputReport {
    let started = Instant::now();
    // Honor the same spill knobs as the deterministic executor: stale
    // spill debris from aborted runs is swept before any tier starts
    // writing, and the duplicate filter spills when configured.
    let config = &opts.config;
    let mut stale_reaped = 0u64;
    for dir in [&config.frontier_spill_dir, &config.dedup_spill_dir]
        .into_iter()
        .flatten()
    {
        stale_reaped +=
            bingo_store::spill::reap_stale_spill_files(dir, bingo_store::SPILL_FILE_PREFIXES)
                as u64;
    }
    telemetry.spill_reaped.add(stale_reaped);
    let dedup = Mutex::new(match &config.dedup_spill_dir {
        Some(dir) => Dedup::with_spill(&crate::dedup::DedupSpillConfig {
            hot_cap: config.dedup_hot_cap,
            ..crate::dedup::DedupSpillConfig::new(dir)
        }),
        None => Dedup::new(),
    });
    let mut last_dedup = crate::dedup::DedupStats::default();
    let mut last_vocab = bingo_textproc::VocabSpillStats::default();
    let page_top_terms: Mutex<FxHashMap<u64, Vec<TermId>>> = Mutex::new(FxHashMap::default());
    let stats = Mutex::new(CrawlStats::default());
    let injector = opts.fault.clone().map(FaultInjector::new);

    let work_file_seq = Arc::new(AtomicU64::new(0));
    let mut level = PendingQueue::new(config, Arc::clone(&work_file_seq));
    {
        let mut dedup = lock_clean(&dedup);
        for (url, topic) in seeds {
            if dedup.mark_url(&url) {
                level.push_back(WorkItem {
                    url,
                    depth: 0,
                    src_topic: topic,
                    src_page: 0,
                    anchor_terms: Vec::new(),
                });
            }
        }
    }

    // Supervisor state, shared across all levels.
    let mut poison: FxHashMap<u64, u32> = FxHashMap::default();
    let mut quarantined: Vec<String> = Vec::new();
    let mut restarts_left = opts.supervision.restart_budget;

    while !level.is_empty() {
        // Drain one BFS level under supervision. `pending` holds the
        // still-unprocessed items of this level; retry rounds after a
        // panic run single-URL batches to isolate the crasher.
        let mut pending = std::mem::replace(
            &mut level,
            PendingQueue::new(config, Arc::clone(&work_file_seq)),
        );
        let mut round = 0u64;
        while !pending.is_empty() {
            telemetry.pipeline.queue_depth.set(pending.len() as i64);
            let batch_size = if round == 0 {
                opts.batch_size.max(1)
            } else {
                1
            };
            let workers = opts.threads.max(1).min(pending.len());
            let queue = Mutex::new(pending);

            let exits: Vec<WorkerExit> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let world = &world;
                        let store = &store;
                        let queue = &queue;
                        let dedup = &dedup;
                        let page_top_terms = &page_top_terms;
                        let stats = &stats;
                        let injector = injector.as_ref();
                        scope.spawn(move || {
                            run_worker(
                                world,
                                store,
                                queue,
                                vocab,
                                judge,
                                telemetry,
                                opts,
                                batch_size,
                                dedup,
                                page_top_terms,
                                stats,
                                &started,
                                injector,
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        // A panic that escaped the worker's own
                        // catch_unwind (it should not exist) is still a
                        // supervised death, not an abort.
                        h.join().unwrap_or_else(|payload| WorkerExit {
                            next_level: Vec::new(),
                            panic: Some(PanicReport {
                                message: panic_message(payload.as_ref()),
                                in_flight: Vec::new(),
                            }),
                        })
                    })
                    .collect()
            });

            // Supervise: collect survivors' discoveries, triage the
            // in-flight URLs of dead workers. Items still sitting in
            // the level queue when every worker died were never
            // attempted — recover them too, without a poison charge.
            let mut leftover = queue.into_inner().unwrap_or_else(|p| p.into_inner());
            telemetry.work_spill_batches.add(leftover.spill_batches);
            leftover.spill_batches = 0;
            let mut requeue: Vec<WorkItem> = Vec::new();
            while let Some(item) = leftover.pop_front() {
                requeue.push(item);
            }
            pending = PendingQueue::new(config, Arc::clone(&work_file_seq));
            let mut panic_messages: Vec<String> = Vec::new();
            let mut newly_quarantined: Vec<String> = Vec::new();
            for exit in exits {
                for item in exit.next_level {
                    level.push_back(item);
                }
                let Some(report) = exit.panic else { continue };
                telemetry.worker_panics.inc();
                panic_messages.push(report.message);
                for item in report.in_flight {
                    // Only a single-URL batch pins the panic on its URL.
                    if round > 0 {
                        let charges = poison.entry(fxhash::hash_one(&item.url)).or_insert(0);
                        *charges += 1;
                        if *charges >= opts.supervision.poison_budget.max(1) {
                            newly_quarantined.push(item.url);
                            continue;
                        }
                    }
                    requeue.push(item);
                }
            }

            // Events are emitted by the supervisor after the join, in
            // sorted order, so same-seed runs log identical bytes.
            panic_messages.sort_unstable();
            for message in &panic_messages {
                telemetry
                    .events
                    .emit(Event::at(round, "crawl.worker.panic").with("message", message));
            }
            newly_quarantined.sort_unstable();
            for url in &newly_quarantined {
                telemetry.worker_quarantined.inc();
                telemetry
                    .events
                    .emit(Event::at(round, "crawl.worker.quarantine").with("url", url));
            }
            quarantined.extend(newly_quarantined);

            if !requeue.is_empty() {
                requeue.sort_unstable_by(|a, b| a.url.cmp(&b.url));
                telemetry.worker_requeued.add(requeue.len() as u64);
                telemetry
                    .events
                    .emit(Event::at(round, "crawl.worker.requeue").with("count", requeue.len()));
                let respawn = (opts.threads.max(1).min(requeue.len())) as u32;
                if restarts_left >= respawn {
                    // Respawn replacement workers for a retry round.
                    restarts_left -= respawn;
                    telemetry.worker_restarts.add(respawn as u64);
                    telemetry
                        .events
                        .emit(Event::at(round, "crawl.worker.restart").with("workers", respawn));
                    for item in requeue {
                        pending.push_back(item);
                    }
                } else {
                    // Restart budget exhausted: quarantine the
                    // remainder so the crawl still terminates.
                    for item in requeue {
                        telemetry.worker_quarantined.inc();
                        telemetry.events.emit(
                            Event::at(round, "crawl.worker.quarantine").with("url", &item.url),
                        );
                        quarantined.push(item.url);
                    }
                }
            }
            // Poll the spilling tiers once per round so their gauges
            // and counters track the crawl as it runs.
            telemetry
                .dedup
                .record(&lock_clean(&dedup).stats(), &mut last_dedup);
            telemetry
                .textproc
                .vocab_spill
                .record(&vocab.spill_stats(), &mut last_vocab);
            round += 1;
        }
    }
    telemetry.pipeline.queue_depth.set(0);

    let wall = started.elapsed();
    let stats = lock_clean(&stats).clone();
    quarantined.sort_unstable();
    let documents = stats.stored_pages;
    ThroughputReport {
        documents,
        wall,
        docs_per_minute: documents as f64 / wall.as_secs_f64().max(1e-9) * 60.0,
        stats,
        quarantined,
    }
}

/// One worker: drain the level queue in batches through the pipeline,
/// each batch under `catch_unwind`. A panic rolls back the batch's
/// journaled duplicate fingerprints and staged store rows, then kills
/// the worker with a [`PanicReport`] for the supervisor.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    world: &World,
    store: &DocumentStore,
    queue: &Mutex<PendingQueue>,
    vocab: &SharedVocabulary,
    judge: &dyn BatchJudge,
    telemetry: &CrawlTelemetry,
    opts: &PipelineOptions,
    batch_size: usize,
    dedup: &Mutex<Dedup>,
    page_top_terms: &Mutex<FxHashMap<u64, Vec<TermId>>>,
    stats: &Mutex<CrawlStats>,
    started: &Instant,
    injector: Option<&FaultInjector>,
) -> WorkerExit {
    let config = &opts.config;
    let registry = ContentRegistry::new();
    let mut loader =
        BulkLoader::with_batch_size(store.clone(), opts.batch_size.max(1)).with_observer(
            BulkLoaderObs::new(&telemetry.registry, telemetry.events.clone()),
        );
    let mut interner: &SharedVocabulary = vocab;
    let mut local = CrawlStats::default();
    let mut next_level: Vec<WorkItem> = Vec::new();

    loop {
        // One batch attempt: everything consumed from the level queue
        // (`taken`) and every dedup fingerprint marked (`journal`) is
        // tracked *outside* the unwind boundary so a panic can be
        // rolled back.
        let mut taken: Vec<WorkItem> = Vec::with_capacity(batch_size);
        let mut journal: Vec<DedupMark> = Vec::new();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let mut batch: Vec<FetchedDoc> = Vec::with_capacity(batch_size);
            let mut slots: Vec<usize> = Vec::with_capacity(batch_size);
            while batch.len() < batch_size {
                let Some(item) = lock_clean(queue).pop_front() else {
                    break;
                };
                taken.push(item);
                let idx = taken.len() - 1;
                let item = &taken[idx];
                local.visited_urls += 1;
                local.max_depth = local.max_depth.max(item.depth);
                if let Some(injector) = injector {
                    injector.maybe_fire(FaultStage::Fetch, &item.url);
                }
                let Some(response) =
                    fetch_with_hygiene(world, config, dedup, &mut local, &item.url, &mut journal)
                else {
                    continue;
                };
                let neighbor_terms = lock_clean(page_top_terms)
                    .get(&item.src_page)
                    .cloned()
                    .unwrap_or_default();
                batch.push(FetchedDoc {
                    response,
                    depth: item.depth,
                    src_topic: item.src_topic,
                    anchor_terms: item.anchor_terms.clone(),
                    neighbor_terms,
                    fetched_at: started.elapsed().as_millis() as u64,
                });
                slots.push(idx);
            }
            if batch.is_empty() {
                return;
            }

            let outcomes = process_batch(
                world,
                &registry,
                &mut interner,
                &mut loader,
                batch,
                |resp: &FetchResponse| {
                    lock_clean(dedup).mark_response_journaled(
                        resp.ip,
                        path_of_url(&resp.url),
                        resp.size,
                        &mut journal,
                    )
                },
                |docs, ctxs| {
                    if let Some(injector) = injector {
                        for ctx in ctxs {
                            injector.maybe_fire(FaultStage::Classify, &ctx.url);
                        }
                    }
                    judge.judge_batch(docs, ctxs)
                },
                &telemetry.textproc,
                &telemetry.pipeline,
            );

            for (idx, outcome) in slots.into_iter().zip(outcomes) {
                let item = &taken[idx];
                match outcome {
                    DocOutcome::MimeFiltered => local.mime_rejected += 1,
                    DocOutcome::DuplicateContent => local.duplicates += 1,
                    DocOutcome::Malformed { wasted_bytes } => {
                        local.mime_rejected += 1;
                        local.wasted_bytes += wasted_bytes;
                    }
                    DocOutcome::AlreadyStored { page_id, doc, .. } => {
                        lock_clean(page_top_terms).insert(page_id, top_terms(&doc));
                        local.duplicates += 1;
                    }
                    DocOutcome::Stored {
                        page_id,
                        doc,
                        judgment,
                    } => {
                        lock_clean(page_top_terms).insert(page_id, top_terms(&doc));
                        local.stored_pages += 1;
                        telemetry.stored.inc();
                        if judgment.topic.is_some() {
                            local.positively_classified += 1;
                        }
                        if opts.follow_links {
                            local.extracted_links += doc.links.len() as u64;
                            // Soft focus without tunnelling: only positively
                            // classified documents propagate the crawl.
                            if judgment.topic.is_some() {
                                enqueue_links(
                                    config,
                                    dedup,
                                    &mut local,
                                    &mut next_level,
                                    item,
                                    page_id,
                                    judgment.topic,
                                    &doc,
                                );
                            }
                        }
                    }
                }
            }
        }));

        match caught {
            Ok(()) => {
                if taken.is_empty() {
                    break; // level queue drained
                }
            }
            Err(payload) => {
                // Roll back the half-processed batch: its fingerprints
                // must not make requeued retries look like duplicates,
                // and its staged rows must not leak into the store.
                lock_clean(dedup).unmark(&journal);
                loader.discard_pending();
                loader.flush();
                lock_clean(stats).merge(&local);
                return WorkerExit {
                    next_level,
                    panic: Some(PanicReport {
                        message: panic_message(payload.as_ref()),
                        in_flight: taken,
                    }),
                };
            }
        }
    }

    loader.flush();
    lock_clean(stats).merge(&local);
    WorkerExit {
        next_level,
        panic: None,
    }
}

/// URL hygiene + fetch with inline redirect following and immediate
/// retries on transient failures — the real-time counterparts of the
/// discrete-event executor's guards, redirect re-enqueueing and backoff
/// parking. Redirect-target URL marks are journaled so a later panic in
/// the same batch can roll them back.
fn fetch_with_hygiene(
    world: &World,
    config: &CrawlConfig,
    dedup: &Mutex<Dedup>,
    stats: &mut CrawlStats,
    url: &str,
    journal: &mut Vec<DedupMark>,
) -> Option<FetchResponse> {
    let mut url = url.to_string();
    let mut redirects = 0u32;
    let mut attempt = 0u32;
    loop {
        let Some(host) = host_of_url(&url).map(str::to_string) else {
            stats.url_rejected += 1;
            return None;
        };
        if url.len() > MAX_URL_LEN || host.len() > MAX_HOSTNAME_LEN {
            stats.url_rejected += 1;
            return None;
        }
        if config.locked_hosts.contains(&host) {
            stats.url_rejected += 1;
            return None;
        }
        if let Some(allowed) = &config.allowed_hosts {
            if !allowed.contains(&host) {
                stats.url_rejected += 1;
                return None;
            }
        }
        if world.dns_lookup(&host, attempt).is_err() {
            stats.fetch_errors += 1;
            if attempt < config.max_retries {
                attempt += 1;
                continue;
            }
            return None;
        }
        match world.fetch(&url, attempt) {
            FetchOutcome::Ok(resp) if resp.truncated => {
                stats.truncated_fetches += 1;
                stats.wasted_bytes += resp.payload.len() as u64;
                stats.fetch_errors += 1;
                if attempt < config.max_retries {
                    attempt += 1;
                    continue;
                }
                return None;
            }
            FetchOutcome::Ok(resp) => return Some(resp),
            FetchOutcome::Redirect { location, .. } => {
                stats.redirects += 1;
                if redirects < config.max_redirects
                    && lock_clean(dedup).mark_url_journaled(&location, journal)
                {
                    url = location;
                    redirects += 1;
                    attempt = 0;
                    continue;
                }
                return None;
            }
            FetchOutcome::Err { error, .. } => {
                stats.fetch_errors += 1;
                if error.is_transient() && attempt < config.max_retries {
                    attempt += 1;
                    continue;
                }
                return None;
            }
        }
    }
}

/// Queue the links of a positively classified document for the next
/// level, under the same hygiene rules the deterministic executor
/// applies at enqueue time.
#[allow(clippy::too_many_arguments)]
fn enqueue_links(
    config: &CrawlConfig,
    dedup: &Mutex<Dedup>,
    stats: &mut CrawlStats,
    next_level: &mut Vec<WorkItem>,
    item: &WorkItem,
    page_id: u64,
    topic: Option<u32>,
    doc: &bingo_textproc::AnalyzedDocument,
) {
    let child_depth = item.depth + 1;
    if config.max_depth > 0 && child_depth > config.max_depth {
        return;
    }
    for link in &doc.links {
        let url = &link.href;
        if url.len() > MAX_URL_LEN {
            stats.url_rejected += 1;
            continue;
        }
        let Some(link_host) = host_of_url(url) else {
            stats.url_rejected += 1;
            continue;
        };
        if link_host.len() > MAX_HOSTNAME_LEN || config.locked_hosts.contains(link_host) {
            stats.url_rejected += 1;
            continue;
        }
        if let Some(allowed) = &config.allowed_hosts {
            if !allowed.contains(link_host) {
                continue;
            }
        }
        if !lock_clean(dedup).mark_url(url) {
            continue; // already queued or visited
        }
        next_level.push(WorkItem {
            url: url.clone(),
            depth: child_depth,
            src_topic: topic.or(item.src_topic),
            src_page: page_id,
            anchor_terms: link.anchor_terms.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Judgment;
    use bingo_webworld::gen::WorldConfig;
    use bingo_webworld::HostBehavior;

    fn accept_all(
    ) -> impl Fn(&bingo_textproc::AnalyzedDocument, &crate::types::PageContext) -> Judgment + Sync
    {
        |_doc, _ctx| Judgment {
            topic: Some(0),
            confidence: 1.0,
        }
    }

    /// Healthy pages (no faults, no redirects, no truncation) whose
    /// response fingerprints are globally unique, so duplicate
    /// elimination keeps them all regardless of processing order.
    fn unique_healthy_urls(world: &World) -> Vec<String> {
        let mut by_fingerprint: FxHashMap<(u32, u64), Vec<u64>> = FxHashMap::default();
        for id in 0..world.page_count() as u64 {
            let page = world.page(id);
            if page.size_hint.is_some()
                || page.redirect_to.is_some()
                || world.host(page.host).behavior != HostBehavior::Normal
            {
                continue;
            }
            let FetchOutcome::Ok(resp) = world.fetch(&world.url_of(id), 0) else {
                continue;
            };
            by_fingerprint
                .entry((resp.ip, resp.size))
                .or_default()
                .push(id);
        }
        let mut ids: Vec<u64> = by_fingerprint
            .into_values()
            .filter(|ids| ids.len() == 1)
            .flatten()
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| world.url_of(id)).collect()
    }

    #[test]
    fn flat_run_stores_all_unique_healthy_urls() {
        let world = Arc::new(WorldConfig::small_test(41).build());
        let urls = unique_healthy_urls(&world);
        assert!(urls.len() >= 10, "world too hostile for the test");
        let store = DocumentStore::new();
        let vocab = SharedVocabulary::new();
        let telemetry = CrawlTelemetry::default();
        let report = run_pipeline(
            Arc::clone(&world),
            store.clone(),
            urls.iter().map(|u| (u.clone(), None)).collect(),
            &vocab,
            &accept_all(),
            &telemetry,
            &PipelineOptions::flat(4, 32),
        );
        assert_eq!(report.documents as usize, urls.len());
        assert_eq!(store.document_count(), urls.len());
        assert!(report.docs_per_minute > 0.0);
        assert!(report.quarantined.is_empty());
        // Classification ran: every stored row carries the judgment.
        store.for_each_document(|row| {
            assert_eq!(row.topic, Some(0));
            assert_eq!(row.depth, 0);
        });
        let snap = telemetry.registry.snapshot();
        assert_eq!(snap.counters["pipeline.load.docs"], urls.len() as u64);
        assert_eq!(snap.counters["crawl.stored"], urls.len() as u64);
        assert_eq!(snap.counters["crawl.worker.panics"], 0);
    }

    #[test]
    fn single_thread_works() {
        let world = Arc::new(WorldConfig::small_test(42).build());
        let urls = vec![world.url_of(1), world.url_of(2)];
        let store = DocumentStore::new();
        let vocab = SharedVocabulary::new();
        let report = run_pipeline(
            Arc::clone(&world),
            store,
            urls.into_iter().map(|u| (u, None)).collect(),
            &vocab,
            &accept_all(),
            &CrawlTelemetry::default(),
            &PipelineOptions::flat(1, 1),
        );
        assert!(report.documents >= 1);
    }

    #[test]
    fn focused_run_follows_links_with_real_depths() {
        let world = Arc::new(WorldConfig::small_test(43).build());
        let seed = world.url_of(0);
        let store = DocumentStore::new();
        let vocab = SharedVocabulary::new();
        let config = CrawlConfig {
            max_depth: 2,
            ..CrawlConfig::default()
        };
        let report = run_pipeline(
            Arc::clone(&world),
            store.clone(),
            vec![(seed, Some(0))],
            &vocab,
            &accept_all(),
            &CrawlTelemetry::default(),
            &PipelineOptions::focused(config, 3, 8),
        );
        assert!(report.documents >= 1);
        let mut max_depth = 0;
        store.for_each_document(|row| max_depth = max_depth.max(row.depth));
        assert!(max_depth >= 1, "links were followed");
        assert!(max_depth <= 2, "depth limit respected");
        assert_eq!(report.stats.max_depth, max_depth);
        assert!(
            store.link_count() > 0,
            "stored documents emit their link rows"
        );
    }

    #[test]
    fn transient_panics_recover_every_document() {
        // Every URL the plan selects panics once, then behaves: the
        // supervisor requeues them and the run still stores everything.
        let world = Arc::new(WorldConfig::small_test(41).build());
        let urls = unique_healthy_urls(&world);
        assert!(urls.len() >= 10);
        let fault = FaultPlan {
            seed: 7,
            one_in: 4,
            panics_per_url: 1,
            stage: FaultStage::Fetch,
        };
        assert!(
            urls.iter().any(|u| fault.selects(u)),
            "plan must select at least one URL"
        );
        let store = DocumentStore::new();
        let vocab = SharedVocabulary::new();
        let telemetry = CrawlTelemetry::default();
        let report = run_pipeline(
            Arc::clone(&world),
            store.clone(),
            urls.iter().map(|u| (u.clone(), None)).collect(),
            &vocab,
            &accept_all(),
            &telemetry,
            &PipelineOptions::flat(4, 8).with_fault(fault),
        );
        assert_eq!(report.documents as usize, urls.len(), "nothing lost");
        assert!(report.quarantined.is_empty(), "transient faults recover");
        let snap = telemetry.registry.snapshot();
        assert!(snap.counters["crawl.worker.panics"] > 0);
        assert!(snap.counters["crawl.worker.requeued"] > 0);
        assert!(snap.counters["crawl.worker.restarts"] > 0);
        assert_eq!(snap.counters["crawl.worker.quarantined"], 0);
    }

    #[test]
    fn poisoned_documents_are_quarantined_not_retried_forever() {
        let world = Arc::new(WorldConfig::small_test(41).build());
        let urls = unique_healthy_urls(&world);
        let fault = FaultPlan {
            seed: 13,
            one_in: 5,
            panics_per_url: u32::MAX, // a deterministic crasher
            stage: FaultStage::Classify,
        };
        let poisoned: Vec<String> = urls.iter().filter(|u| fault.selects(u)).cloned().collect();
        assert!(!poisoned.is_empty(), "plan must poison at least one URL");
        let store = DocumentStore::new();
        let vocab = SharedVocabulary::new();
        let telemetry = CrawlTelemetry::default();
        let report = run_pipeline(
            Arc::clone(&world),
            store.clone(),
            urls.iter().map(|u| (u.clone(), None)).collect(),
            &vocab,
            &accept_all(),
            &telemetry,
            &PipelineOptions::flat(4, 8).with_fault(fault),
        );
        let mut expected = poisoned.clone();
        expected.sort_unstable();
        assert_eq!(report.quarantined, expected, "exactly the poisoned docs");
        assert_eq!(
            report.documents as usize,
            urls.len() - poisoned.len(),
            "everything else stored"
        );
        let stored_urls: std::collections::BTreeSet<String> =
            store.all_documents().into_iter().map(|d| d.url).collect();
        for url in &poisoned {
            assert!(!stored_urls.contains(url), "quarantined doc in store");
        }
        let snap = telemetry.registry.snapshot();
        assert_eq!(
            snap.counters["crawl.worker.quarantined"],
            poisoned.len() as u64
        );
    }

    #[test]
    fn spilling_work_queue_matches_resident_run() {
        let spill_dir = std::env::temp_dir().join("bingo-threaded-workspill");
        std::fs::remove_dir_all(&spill_dir).ok();
        // Plant stale debris from a "previous run": swept at start.
        std::fs::create_dir_all(&spill_dir).unwrap();
        std::fs::write(spill_dir.join("work-000099.spill"), b"stale").unwrap();

        let run = |config: CrawlConfig| {
            let world = Arc::new(WorldConfig::small_test(43).build());
            let store = DocumentStore::new();
            let vocab = SharedVocabulary::new();
            let telemetry = CrawlTelemetry::default();
            let report = run_pipeline(
                Arc::clone(&world),
                store.clone(),
                vec![(world.url_of(0), Some(0))],
                &vocab,
                &accept_all(),
                &telemetry,
                &PipelineOptions::focused(config, 1, 4),
            );
            let mut urls: Vec<String> = store.all_documents().into_iter().map(|d| d.url).collect();
            urls.sort_unstable();
            (report, urls, telemetry)
        };

        let base = CrawlConfig {
            max_depth: 2,
            ..CrawlConfig::default()
        };
        let (resident_report, resident_urls, _) = run(base.clone());
        let spilling = CrawlConfig {
            frontier_spill_dir: Some(spill_dir.clone()),
            work_queue_hot_cap: 2,
            ..base
        };
        let (spill_report, spill_urls, telemetry) = run(spilling);

        assert_eq!(spill_report.documents, resident_report.documents);
        assert_eq!(spill_urls, resident_urls, "stored URL sets diverged");
        let snap = telemetry.registry.snapshot();
        assert!(
            snap.counters["crawl.work_queue.spill_batches"] > 0,
            "hot cap 2 must force overflow spills"
        );
        assert!(snap.counters["crawl.spill.reaped"] >= 1, "stale file swept");
        // All spill batches were consumed and deleted.
        let leftovers: Vec<_> = std::fs::read_dir(&spill_dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            leftovers.is_empty(),
            "work spill files leaked: {leftovers:?}"
        );
        std::fs::remove_dir_all(&spill_dir).ok();
    }

    #[test]
    fn panic_telemetry_is_deterministic_single_threaded() {
        // With one worker the batch composition is deterministic, so
        // two identical fault-injected runs must emit byte-identical
        // telemetry — panic, requeue, quarantine and restart events
        // included.
        let run = || {
            let world = Arc::new(WorldConfig::small_test(44).build());
            let urls = unique_healthy_urls(&world);
            let fault = FaultPlan {
                seed: 3,
                one_in: 6,
                panics_per_url: u32::MAX,
                stage: FaultStage::Fetch,
            };
            let telemetry = CrawlTelemetry::default();
            run_pipeline(
                Arc::clone(&world),
                DocumentStore::new(),
                urls.iter().map(|u| (u.clone(), None)).collect(),
                &SharedVocabulary::new(),
                &accept_all(),
                &telemetry,
                &PipelineOptions::flat(1, 8).with_fault(fault),
            );
            (
                telemetry.registry.snapshot().deterministic().to_json(),
                telemetry.events.to_jsonl(),
            )
        };
        let (snap_a, events_a) = run();
        let (snap_b, events_b) = run();
        assert!(events_a.contains("crawl.worker.panic"), "panics logged");
        assert_eq!(snap_a, snap_b);
        assert_eq!(events_a, events_b);
    }
}
