//! Real-thread executor over the shared document pipeline
//! (Section 4.1: "the crawler can sustain a throughput of up to ten
//! thousand documents per minute").
//!
//! Unlike the deterministic discrete-event crawler, this executor runs N
//! OS threads that pull *batches* of documents through the staged
//! pipeline of [`crate::pipeline`] — the same MIME filtering, duplicate
//! elimination, content conversion, analysis, classification and
//! bulk-loading code the deterministic executor drives one document at a
//! time. Simulated network latencies are *not* slept: the measurement
//! targets the processing and storage pipeline, which is what the
//! paper's §4.1 throughput number is about.
//!
//! The crawl itself is a **level-synchronized BFS**: each depth level is
//! distributed over the workers through a channel, and the next level
//! starts only after the current one drains. That keeps depths exact
//! (a page always gets the depth of its shallowest discoverer) and
//! guarantees a predecessor's top terms are available to its successors'
//! neighbour feature space, while still letting every level saturate all
//! cores. URL/fingerprint duplicate elimination is shared across workers
//! behind a mutex; term ids come from the lock-sharded
//! [`SharedVocabulary`], whose `canonicalize` map makes the final store
//! comparable with a single-threaded run.
//!
//! Differences from the discrete-event executor, by design:
//!
//! * no circuit breakers, politeness slots or backoff parking — retries
//!   on transient failures happen inline and immediately;
//! * redirects are followed inline (same hop limit, same URL dedup);
//! * soft focus without tunnelling: links are followed iff the document
//!   classified positively (harvesting-mode semantics);
//! * `fetched_at` is run-relative wall-clock milliseconds, not virtual
//!   time.

use crate::dedup::{path_of_url, Dedup};
use crate::pipeline::{process_batch, top_terms, BatchJudge, DocOutcome, FetchedDoc};
use crate::telemetry::CrawlTelemetry;
use crate::types::{CrawlConfig, CrawlStats, MAX_HOSTNAME_LEN, MAX_URL_LEN};
use bingo_store::{BulkLoader, BulkLoaderObs, DocumentStore};
use bingo_textproc::fxhash::FxHashMap;
use bingo_textproc::{ContentRegistry, SharedVocabulary, TermId};
use bingo_webworld::fetch::host_of_url;
use bingo_webworld::{FetchOutcome, FetchResponse, World};
use crossbeam::channel::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Options for a real-thread pipeline run.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Hygiene/focus configuration (allowed/locked hosts, depth and
    /// redirect/retry limits). Breaker and politeness settings are
    /// ignored — this executor has no virtual clock to park on.
    pub config: CrawlConfig,
    /// Worker threads.
    pub threads: usize,
    /// Documents per pipeline batch.
    pub batch_size: usize,
    /// Follow the links of positively classified documents, level by
    /// level (BFS). When false the run processes exactly the given URLs
    /// at depth 0 — the flat throughput-measurement mode.
    pub follow_links: bool,
}

impl PipelineOptions {
    /// Flat throughput run: fixed URL list, no link following.
    pub fn flat(threads: usize, batch_size: usize) -> Self {
        PipelineOptions {
            config: CrawlConfig::default(),
            threads,
            batch_size,
            follow_links: false,
        }
    }

    /// Focused crawl from seeds: follow links of positively classified
    /// documents under `config`'s hygiene rules.
    pub fn focused(config: CrawlConfig, threads: usize, batch_size: usize) -> Self {
        PipelineOptions {
            config,
            threads,
            batch_size,
            follow_links: true,
        }
    }
}

/// Outcome of a throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// Documents stored.
    pub documents: u64,
    /// Wall-clock duration of the run.
    pub wall: std::time::Duration,
    /// Documents per minute.
    pub docs_per_minute: f64,
    /// Crawl counters aggregated over all workers.
    pub stats: CrawlStats,
}

/// One URL waiting for a worker, with the crawl context its discoverer
/// attached (the threaded twin of the frontier's `QueueEntry`).
#[derive(Debug)]
struct WorkItem {
    url: String,
    depth: u32,
    src_topic: Option<u32>,
    src_page: u64,
    anchor_terms: Vec<TermId>,
}

/// Pump `seeds` (URL, topic) through the staged document pipeline with
/// `opts.threads` workers. Classification runs through `judge` on whole
/// batches; stored rows carry real depths, judgments and link rows, so
/// the resulting store matches a deterministic crawl of the same URL set
/// modulo term-id numbering (see [`SharedVocabulary::canonicalize`]) and
/// row order.
pub fn run_pipeline(
    world: Arc<World>,
    store: DocumentStore,
    seeds: Vec<(String, Option<u32>)>,
    vocab: &SharedVocabulary,
    judge: &dyn BatchJudge,
    telemetry: &CrawlTelemetry,
    opts: &PipelineOptions,
) -> ThroughputReport {
    let started = Instant::now();
    let dedup = Mutex::new(Dedup::new());
    let page_top_terms: Mutex<FxHashMap<u64, Vec<TermId>>> = Mutex::new(FxHashMap::default());
    let stats = Mutex::new(CrawlStats::default());

    let mut level: Vec<WorkItem> = {
        let mut dedup = dedup.lock().expect("dedup poisoned");
        seeds
            .into_iter()
            .filter(|(url, _)| dedup.mark_url(url))
            .map(|(url, topic)| WorkItem {
                url,
                depth: 0,
                src_topic: topic,
                src_page: 0,
                anchor_terms: Vec::new(),
            })
            .collect()
    };

    while !level.is_empty() {
        telemetry.pipeline.queue_depth.set(level.len() as i64);
        let (tx, rx) = channel::unbounded::<WorkItem>();
        for item in level.drain(..) {
            tx.send(item).expect("level queue open");
        }
        drop(tx);

        let next: Vec<Vec<WorkItem>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..opts.threads.max(1))
                .map(|_| {
                    let rx = rx.clone();
                    let world = &world;
                    let store = &store;
                    let dedup = &dedup;
                    let page_top_terms = &page_top_terms;
                    let stats = &stats;
                    scope.spawn(move || {
                        run_worker(
                            world,
                            store,
                            rx,
                            vocab,
                            judge,
                            telemetry,
                            opts,
                            dedup,
                            page_top_terms,
                            stats,
                            &started,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        level = next.into_iter().flatten().collect();
    }
    telemetry.pipeline.queue_depth.set(0);

    let wall = started.elapsed();
    let stats = stats.into_inner().expect("stats poisoned");
    let documents = stats.stored_pages;
    ThroughputReport {
        documents,
        wall,
        docs_per_minute: documents as f64 / wall.as_secs_f64().max(1e-9) * 60.0,
        stats,
    }
}

/// One worker: drain the level queue in batches through the pipeline.
/// Returns the work items this worker discovered for the next level.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    world: &World,
    store: &DocumentStore,
    rx: Receiver<WorkItem>,
    vocab: &SharedVocabulary,
    judge: &dyn BatchJudge,
    telemetry: &CrawlTelemetry,
    opts: &PipelineOptions,
    dedup: &Mutex<Dedup>,
    page_top_terms: &Mutex<FxHashMap<u64, Vec<TermId>>>,
    stats: &Mutex<CrawlStats>,
    started: &Instant,
) -> Vec<WorkItem> {
    let config = &opts.config;
    let registry = ContentRegistry::new();
    let mut loader =
        BulkLoader::with_batch_size(store.clone(), opts.batch_size.max(1)).with_observer(
            BulkLoaderObs::new(&telemetry.registry, telemetry.events.clone()),
        );
    let mut interner: &SharedVocabulary = vocab;
    let mut local = CrawlStats::default();
    let mut next_level: Vec<WorkItem> = Vec::new();

    loop {
        // Collect one batch from the level queue.
        let mut items: Vec<WorkItem> = Vec::with_capacity(opts.batch_size.max(1));
        let mut batch: Vec<FetchedDoc> = Vec::with_capacity(opts.batch_size.max(1));
        while batch.len() < opts.batch_size.max(1) {
            let Ok(item) = rx.recv() else { break };
            local.visited_urls += 1;
            local.max_depth = local.max_depth.max(item.depth);
            let Some(response) = fetch_with_hygiene(world, config, dedup, &mut local, &item.url)
            else {
                continue;
            };
            let neighbor_terms = page_top_terms
                .lock()
                .expect("top terms poisoned")
                .get(&item.src_page)
                .cloned()
                .unwrap_or_default();
            batch.push(FetchedDoc {
                response,
                depth: item.depth,
                src_topic: item.src_topic,
                anchor_terms: item.anchor_terms.clone(),
                neighbor_terms,
                fetched_at: started.elapsed().as_millis() as u64,
            });
            items.push(item);
        }
        if batch.is_empty() {
            break;
        }

        let outcomes = process_batch(
            world,
            &registry,
            &mut interner,
            &mut loader,
            batch,
            |resp: &FetchResponse| {
                dedup.lock().expect("dedup poisoned").mark_response(
                    resp.ip,
                    path_of_url(&resp.url),
                    resp.size,
                )
            },
            |docs, ctxs| judge.judge_batch(docs, ctxs),
            &telemetry.textproc,
            &telemetry.pipeline,
        );

        for (item, outcome) in items.iter().zip(outcomes) {
            match outcome {
                DocOutcome::MimeFiltered => local.mime_rejected += 1,
                DocOutcome::DuplicateContent => local.duplicates += 1,
                DocOutcome::Malformed { wasted_bytes } => {
                    local.mime_rejected += 1;
                    local.wasted_bytes += wasted_bytes;
                }
                DocOutcome::AlreadyStored { page_id, doc, .. } => {
                    page_top_terms
                        .lock()
                        .expect("top terms poisoned")
                        .insert(page_id, top_terms(&doc));
                    local.duplicates += 1;
                }
                DocOutcome::Stored {
                    page_id,
                    doc,
                    judgment,
                } => {
                    page_top_terms
                        .lock()
                        .expect("top terms poisoned")
                        .insert(page_id, top_terms(&doc));
                    local.stored_pages += 1;
                    telemetry.stored.inc();
                    if judgment.topic.is_some() {
                        local.positively_classified += 1;
                    }
                    if opts.follow_links {
                        local.extracted_links += doc.links.len() as u64;
                        // Soft focus without tunnelling: only positively
                        // classified documents propagate the crawl.
                        if judgment.topic.is_some() {
                            enqueue_links(
                                config,
                                dedup,
                                &mut local,
                                &mut next_level,
                                item,
                                page_id,
                                judgment.topic,
                                &doc,
                            );
                        }
                    }
                }
            }
        }
    }

    loader.flush();
    let mut stats = stats.lock().expect("stats poisoned");
    stats.merge(&local);
    next_level
}

/// URL hygiene + fetch with inline redirect following and immediate
/// retries on transient failures — the real-time counterparts of the
/// discrete-event executor's guards, redirect re-enqueueing and backoff
/// parking.
fn fetch_with_hygiene(
    world: &World,
    config: &CrawlConfig,
    dedup: &Mutex<Dedup>,
    stats: &mut CrawlStats,
    url: &str,
) -> Option<FetchResponse> {
    let mut url = url.to_string();
    let mut redirects = 0u32;
    let mut attempt = 0u32;
    loop {
        let Some(host) = host_of_url(&url).map(str::to_string) else {
            stats.url_rejected += 1;
            return None;
        };
        if url.len() > MAX_URL_LEN || host.len() > MAX_HOSTNAME_LEN {
            stats.url_rejected += 1;
            return None;
        }
        if config.locked_hosts.contains(&host) {
            stats.url_rejected += 1;
            return None;
        }
        if let Some(allowed) = &config.allowed_hosts {
            if !allowed.contains(&host) {
                stats.url_rejected += 1;
                return None;
            }
        }
        if world.dns_lookup(&host, attempt).is_err() {
            stats.fetch_errors += 1;
            if attempt < config.max_retries {
                attempt += 1;
                continue;
            }
            return None;
        }
        match world.fetch(&url, attempt) {
            FetchOutcome::Ok(resp) if resp.truncated => {
                stats.truncated_fetches += 1;
                stats.wasted_bytes += resp.payload.len() as u64;
                stats.fetch_errors += 1;
                if attempt < config.max_retries {
                    attempt += 1;
                    continue;
                }
                return None;
            }
            FetchOutcome::Ok(resp) => return Some(resp),
            FetchOutcome::Redirect { location, .. } => {
                stats.redirects += 1;
                if redirects < config.max_redirects
                    && dedup.lock().expect("dedup poisoned").mark_url(&location)
                {
                    url = location;
                    redirects += 1;
                    attempt = 0;
                    continue;
                }
                return None;
            }
            FetchOutcome::Err { error, .. } => {
                stats.fetch_errors += 1;
                if error.is_transient() && attempt < config.max_retries {
                    attempt += 1;
                    continue;
                }
                return None;
            }
        }
    }
}

/// Queue the links of a positively classified document for the next
/// level, under the same hygiene rules the deterministic executor
/// applies at enqueue time.
#[allow(clippy::too_many_arguments)]
fn enqueue_links(
    config: &CrawlConfig,
    dedup: &Mutex<Dedup>,
    stats: &mut CrawlStats,
    next_level: &mut Vec<WorkItem>,
    item: &WorkItem,
    page_id: u64,
    topic: Option<u32>,
    doc: &bingo_textproc::AnalyzedDocument,
) {
    let child_depth = item.depth + 1;
    if config.max_depth > 0 && child_depth > config.max_depth {
        return;
    }
    for link in &doc.links {
        let url = &link.href;
        if url.len() > MAX_URL_LEN {
            stats.url_rejected += 1;
            continue;
        }
        let Some(link_host) = host_of_url(url) else {
            stats.url_rejected += 1;
            continue;
        };
        if link_host.len() > MAX_HOSTNAME_LEN || config.locked_hosts.contains(link_host) {
            stats.url_rejected += 1;
            continue;
        }
        if let Some(allowed) = &config.allowed_hosts {
            if !allowed.contains(link_host) {
                continue;
            }
        }
        if !dedup.lock().expect("dedup poisoned").mark_url(url) {
            continue; // already queued or visited
        }
        next_level.push(WorkItem {
            url: url.clone(),
            depth: child_depth,
            src_topic: topic.or(item.src_topic),
            src_page: page_id,
            anchor_terms: link.anchor_terms.clone(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Judgment;
    use bingo_webworld::gen::WorldConfig;
    use bingo_webworld::HostBehavior;

    fn accept_all(
    ) -> impl Fn(&bingo_textproc::AnalyzedDocument, &crate::types::PageContext) -> Judgment + Sync
    {
        |_doc, _ctx| Judgment {
            topic: Some(0),
            confidence: 1.0,
        }
    }

    /// Healthy pages (no faults, no redirects, no truncation) whose
    /// response fingerprints are globally unique, so duplicate
    /// elimination keeps them all regardless of processing order.
    fn unique_healthy_urls(world: &World) -> Vec<String> {
        let mut by_fingerprint: FxHashMap<(u32, u64), Vec<u64>> = FxHashMap::default();
        for id in 0..world.page_count() as u64 {
            let page = world.page(id);
            if page.size_hint.is_some()
                || page.redirect_to.is_some()
                || world.host(page.host).behavior != HostBehavior::Normal
            {
                continue;
            }
            let FetchOutcome::Ok(resp) = world.fetch(&world.url_of(id), 0) else {
                continue;
            };
            by_fingerprint
                .entry((resp.ip, resp.size))
                .or_default()
                .push(id);
        }
        let mut ids: Vec<u64> = by_fingerprint
            .into_values()
            .filter(|ids| ids.len() == 1)
            .flatten()
            .collect();
        ids.sort_unstable();
        ids.into_iter().map(|id| world.url_of(id)).collect()
    }

    #[test]
    fn flat_run_stores_all_unique_healthy_urls() {
        let world = Arc::new(WorldConfig::small_test(41).build());
        let urls = unique_healthy_urls(&world);
        assert!(urls.len() >= 10, "world too hostile for the test");
        let store = DocumentStore::new();
        let vocab = SharedVocabulary::new();
        let telemetry = CrawlTelemetry::default();
        let report = run_pipeline(
            Arc::clone(&world),
            store.clone(),
            urls.iter().map(|u| (u.clone(), None)).collect(),
            &vocab,
            &accept_all(),
            &telemetry,
            &PipelineOptions::flat(4, 32),
        );
        assert_eq!(report.documents as usize, urls.len());
        assert_eq!(store.document_count(), urls.len());
        assert!(report.docs_per_minute > 0.0);
        // Classification ran: every stored row carries the judgment.
        store.for_each_document(|row| {
            assert_eq!(row.topic, Some(0));
            assert_eq!(row.depth, 0);
        });
        let snap = telemetry.registry.snapshot();
        assert_eq!(snap.counters["pipeline.load.docs"], urls.len() as u64);
        assert_eq!(snap.counters["crawl.stored"], urls.len() as u64);
    }

    #[test]
    fn single_thread_works() {
        let world = Arc::new(WorldConfig::small_test(42).build());
        let urls = vec![world.url_of(1), world.url_of(2)];
        let store = DocumentStore::new();
        let vocab = SharedVocabulary::new();
        let report = run_pipeline(
            Arc::clone(&world),
            store,
            urls.into_iter().map(|u| (u, None)).collect(),
            &vocab,
            &accept_all(),
            &CrawlTelemetry::default(),
            &PipelineOptions::flat(1, 1),
        );
        assert!(report.documents >= 1);
    }

    #[test]
    fn focused_run_follows_links_with_real_depths() {
        let world = Arc::new(WorldConfig::small_test(43).build());
        let seed = world.url_of(0);
        let store = DocumentStore::new();
        let vocab = SharedVocabulary::new();
        let config = CrawlConfig {
            max_depth: 2,
            ..CrawlConfig::default()
        };
        let report = run_pipeline(
            Arc::clone(&world),
            store.clone(),
            vec![(seed, Some(0))],
            &vocab,
            &accept_all(),
            &CrawlTelemetry::default(),
            &PipelineOptions::focused(config, 3, 8),
        );
        assert!(report.documents >= 1);
        let mut max_depth = 0;
        store.for_each_document(|row| max_depth = max_depth.max(row.depth));
        assert!(max_depth >= 1, "links were followed");
        assert!(max_depth <= 2, "depth limit respected");
        assert_eq!(report.stats.max_depth, max_depth);
        assert!(
            store.link_count() > 0,
            "stored documents emit their link rows"
        );
    }
}
