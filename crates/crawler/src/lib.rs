//! The focused crawler (Sections 2.1, 3.3 and 4.2).
//!
//! The crawler processes a prioritized URL frontier with simulated
//! multi-threading over the synthetic web:
//!
//! * per-topic **incoming/outgoing queues** with size limits, ordered by
//!   SVM confidence ([`frontier`]),
//! * **focusing rules**: sharp focus (learning phase) vs. soft focus
//!   (harvesting phase), with depth-limited **tunnelling** whose priority
//!   decays exponentially per step ([`types::FocusRule`]),
//! * **duplicate elimination** by URL hash, IP+path and IP+filesize
//!   fingerprints ([`dedup`]),
//! * an **asynchronous-style caching DNS resolver** with LRU replacement,
//!   TTL invalidation and alternative-server retry ([`dns`]),
//! * **host management**: per-host circuit breakers (closed → open →
//!   half-open with probe fetches) replacing the paper's one-way
//!   good/slow/bad escalation, plus locked domains ([`hosts`]),
//! * **adaptive retry**: transient failures (timeouts, 5xx bursts,
//!   truncated bodies, DNS flaps) park the URL for an exponential
//!   backoff with deterministic jitter on the virtual clock,
//! * **authority-blended ordering** (off by default): an incrementally
//!   maintained host-level webgraph whose PageRank/harmonic authority is
//!   blended into frontier priorities ([`authority`]),
//! * **checkpoint/resume**: the full mid-crawl state — frontier, parked
//!   retries, breaker health, duplicate fingerprints, thread timelines —
//!   serializes to a session directory and resumes byte-identically
//!   ([`checkpoint`]),
//! * URL hygiene: hostname ≤ 255 chars, URL ≤ 1000 chars, redirect chains
//!   bounded, MIME-type and size limits per document class,
//! * a **staged, batch-oriented document pipeline** — fetch →
//!   content-convert → analyze → classify → bulk-load — shared by both
//!   executors ([`pipeline`]),
//! * a **discrete-event executor** modelling N crawler threads over
//!   virtual time, deterministic and snapshot-friendly ([`Crawler`]), and
//!   a real-thread executor that pulls batches through the same pipeline
//!   for raw throughput measurements ([`threaded`]).
//!
//! Classification is pluggable through the [`DocumentJudge`] trait; the
//! BINGO! engine (crate `bingo-core`) implements it with the hierarchical
//! SVM classifier and drives phase switches and retraining between crawl
//! steps.

pub mod authority;
pub mod checkpoint;
pub mod dedup;
pub mod dns;
pub mod frontier;
pub mod hosts;
pub mod pipeline;
pub mod telemetry;
pub mod threaded;
pub mod types;

mod step;

pub use authority::{AuthorityCheckpoint, AuthorityConfig, HostAuthority};
pub use checkpoint::{CheckpointError, CrawlCheckpoint};
pub use dedup::Dedup;
pub use dns::CachingResolver;
pub use frontier::{Frontier, QueueEntry, SpillConfig};
pub use hosts::{
    BreakerConfig, BreakerState, FailureOutcome, HostDecision, HostHealth, HostManager,
};
pub use pipeline::{process_batch, BatchJudge, DocOutcome, FetchedDoc, PipelineMetrics};
pub use step::{Crawler, StepOutcome};
pub use telemetry::CrawlTelemetry;
pub use threaded::{
    run_pipeline, FaultPlan, FaultStage, PipelineOptions, SupervisionConfig, ThroughputReport,
};
pub use types::{CrawlConfig, CrawlStats, CrawlStrategy, FocusRule, Judgment, PageContext};

use bingo_textproc::AnalyzedDocument;

/// The classification callback the crawler invokes for every analyzed
/// document. Implemented by the BINGO! engine's topic-tree classifier.
pub trait DocumentJudge {
    /// Classify `doc`; return the assigned topic and the classifier's
    /// confidence, or a rejection (`topic: None`).
    fn judge(&mut self, doc: &AnalyzedDocument, ctx: &PageContext) -> Judgment;
}

impl<F> DocumentJudge for F
where
    F: FnMut(&AnalyzedDocument, &PageContext) -> Judgment,
{
    fn judge(&mut self, doc: &AnalyzedDocument, ctx: &PageContext) -> Judgment {
        self(doc, ctx)
    }
}
