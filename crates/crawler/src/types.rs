//! Crawl configuration, statistics and shared types.

use crate::authority::AuthorityConfig;
use crate::hosts::BreakerConfig;
use bingo_textproc::fxhash::FxHashSet;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Maximum accepted hostname length (RFC 1738; Section 4.2).
pub const MAX_HOSTNAME_LEN: usize = 255;
/// Maximum accepted URL length (Section 4.2).
pub const MAX_URL_LEN: usize = 1000;

/// The crawl focusing rule (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FocusRule {
    /// Learning phase: "accept only those links where
    /// `class(p) = class(q)`" — links are followed only from documents
    /// classified into the same topic the link was queued for; rejected
    /// documents contribute links only through bounded tunnelling.
    Sharp,
    /// Harvesting phase: accept links from documents classified into
    /// *any* topic of interest.
    Soft,
}

/// Frontier ordering (Section 2.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrawlStrategy {
    /// Learning phase: "a limited (mostly depth-first) crawl" — deeper
    /// URLs first.
    DepthFirst,
    /// Harvesting phase: breadth-first with SVM-confidence
    /// prioritization — best-confidence URLs first.
    BestFirst,
}

/// Crawl parameters; defaults follow the paper's testbed (Section 5.1).
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Simulated crawler threads (paper: 15).
    pub threads: usize,
    /// Focusing rule in effect.
    pub focus: FocusRule,
    /// Frontier ordering.
    pub strategy: CrawlStrategy,
    /// Maximum crawl depth (0 = unlimited). Learning phase: 4.
    pub max_depth: u32,
    /// Maximum tunnelling distance through rejected pages (paper: 2).
    pub max_tunnel: u32,
    /// Priority decay per tunnelling step (paper: 0.5).
    pub tunnel_decay: f32,
    /// Maximum redirects followed per chain (paper: 25).
    pub max_redirects: u32,
    /// Retries per host before it is tagged bad (paper: 3).
    pub max_retries: u32,
    /// Incoming queue capacity per topic (paper: 25,000).
    pub incoming_queue_cap: usize,
    /// Outgoing queue capacity per topic (paper: 1,000).
    pub outgoing_queue_cap: usize,
    /// When set, the crawl only visits these hostnames (learning-phase
    /// domain restriction).
    pub allowed_hosts: Option<FxHashSet<String>>,
    /// Hostnames never visited ("the domains of major Web search engines
    /// were explicitly locked", and DBLP is locked in the experiment).
    pub locked_hosts: FxHashSet<String>,
    /// Estimated per-document processing cost in virtual ms (parsing,
    /// classification, storing) added to each thread's busy time.
    pub processing_cost_ms: u64,
    /// Maximum simultaneous connections per host (paper testbed: 2).
    /// A fetch whose host has no free connection slot waits for one.
    pub per_host_connections: usize,
    /// Per-host circuit-breaker tuning (replaces the paper's one-way
    /// good → slow → bad escalation with recovery; see [`crate::hosts`]).
    pub breaker: BreakerConfig,
    /// Base delay for per-URL retry backoff after a transient failure.
    /// Retry `n` waits `retry_backoff_ms << n` (capped by the breaker's
    /// `max_backoff_ms`) plus deterministic jitter, on the virtual clock.
    pub retry_backoff_ms: u64,
    /// Write a crawl checkpoint every N stored documents (0 = never).
    pub checkpoint_every_docs: u64,
    /// Directory checkpoints are written into; required when
    /// `checkpoint_every_docs > 0`.
    pub checkpoint_dir: Option<PathBuf>,
    /// Complete checkpoint generations kept after each successful save
    /// (older ones are pruned); minimum 1.
    pub checkpoint_keep: usize,
    /// When set, incoming frontier queues spill their cold tail to
    /// per-slot files under this directory, keeping at most
    /// `frontier_hot_cap` entry payloads per queue in memory. Pop order
    /// and eviction are identical to the unspilled frontier; spill files
    /// are scratch (checkpoints stay self-contained). `None` (default)
    /// keeps the whole frontier resident.
    pub frontier_spill_dir: Option<PathBuf>,
    /// In-memory entry payloads per incoming queue when spilling.
    pub frontier_hot_cap: usize,
    /// When set, the duplicate filter's three fingerprint sets spill
    /// past `dedup_hot_cap` to hash-sharded sorted files under this
    /// directory, with a Bloom-style front filter so exact checks hit
    /// disk only on probable duplicates. Answers and checkpoints are
    /// byte-identical to the resident filter; stale `dedup-*.spill`
    /// files from an aborted run are swept on startup. `None` (default)
    /// keeps every fingerprint resident.
    pub dedup_spill_dir: Option<PathBuf>,
    /// Hot-tier fingerprints per dedup set when spilling.
    pub dedup_hot_cap: usize,
    /// Most-significant-term cache entries kept for the
    /// neighbour-document feature space (Section 3.4). `0` (default)
    /// caches every stored page's top terms; a positive cap evicts the
    /// oldest entries FIFO, bounding the cache for multi-million-page
    /// crawls (links to long-stored pages then enqueue without
    /// neighbour terms, exactly like links from pre-cache runs).
    pub page_terms_cap: usize,
    /// Threaded-executor work-queue items kept resident per BFS level;
    /// overflow batches spill to `work-*.spill` files under
    /// `frontier_spill_dir`, read back in order. `0` (default) keeps
    /// every level fully resident.
    pub work_queue_hot_cap: usize,
    /// Authority-blended frontier ordering: maintain a host-level
    /// webgraph online and blend normalized host authority into link
    /// priorities (`α·confidence + β·authority`). Disabled by default;
    /// existing crawls are bit-identical with it off.
    pub authority: AuthorityConfig,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            threads: 15,
            focus: FocusRule::Sharp,
            strategy: CrawlStrategy::DepthFirst,
            max_depth: 4,
            max_tunnel: 2,
            tunnel_decay: 0.5,
            max_redirects: 25,
            max_retries: 3,
            incoming_queue_cap: 25_000,
            outgoing_queue_cap: 1_000,
            allowed_hosts: None,
            locked_hosts: FxHashSet::default(),
            processing_cost_ms: 5,
            per_host_connections: 2,
            breaker: BreakerConfig::default(),
            retry_backoff_ms: 250,
            checkpoint_every_docs: 0,
            checkpoint_dir: None,
            checkpoint_keep: bingo_store::durable::DEFAULT_KEEP_GENERATIONS,
            frontier_spill_dir: None,
            frontier_hot_cap: 4096,
            dedup_spill_dir: None,
            dedup_hot_cap: 1 << 20,
            page_terms_cap: 0,
            work_queue_hot_cap: 0,
            authority: AuthorityConfig::default(),
        }
    }
}

impl CrawlConfig {
    /// The harvesting-phase variant of this configuration: soft focus,
    /// best-first ordering, no depth limit, no domain restriction
    /// (Section 3.3).
    pub fn harvesting(&self) -> CrawlConfig {
        CrawlConfig {
            focus: FocusRule::Soft,
            strategy: CrawlStrategy::BestFirst,
            max_depth: 0,
            allowed_hosts: None,
            ..self.clone()
        }
    }
}

/// Total-ordered queue key derived from an `f32` priority. Smaller keys
/// sort first, so the key negates the priority: the BTree's first entry
/// is the *highest*-priority URL. Fixed-point scaling keeps the ordering
/// total (no NaN pitfalls) at microscale resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueuePriority(i64);

impl QueuePriority {
    /// Key for a priority value.
    pub fn new(priority: f32) -> Self {
        let p = if priority.is_nan() { 0.0 } else { priority };
        QueuePriority(-((p.clamp(-1e12, 1e12) as f64 * 1e6.to_owned()) as i64))
    }

    /// Approximate priority back from the key.
    pub fn as_f32(self) -> f32 {
        (-(self.0 as f64) / 1e6) as f32
    }
}

/// The verdict of the engine's classifier on one document.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Judgment {
    /// Topic the document was assigned to; `None` = rejected everywhere
    /// (the OTHERS case).
    pub topic: Option<u32>,
    /// Classification confidence (signed hyperplane distance of the
    /// winning topic, or the best rejected score).
    pub confidence: f32,
}

impl Judgment {
    /// Outright rejection with the given (non-positive) confidence.
    pub fn reject(confidence: f32) -> Self {
        Judgment {
            topic: None,
            confidence,
        }
    }
}

/// Crawl context handed to the judge along with the analyzed document.
#[derive(Debug, Clone)]
pub struct PageContext {
    /// Page id in the web graph.
    pub page_id: u64,
    /// URL the document was fetched from.
    pub url: String,
    /// Crawl depth.
    pub depth: u32,
    /// Topic the enqueuing parent was classified into, if any.
    pub src_topic: Option<u32>,
    /// Anchor terms of the link that enqueued this page (for the
    /// anchor-text feature space).
    pub anchor_terms: Vec<bingo_textproc::TermId>,
    /// Most significant terms of the hyperlink predecessor that enqueued
    /// this page (for the neighbour-document feature space, Section 3.4).
    pub neighbor_terms: Vec<bingo_textproc::TermId>,
    /// Virtual time of the fetch.
    pub fetched_at: u64,
}

/// Counters reported in Table 1 plus the operational counters the
/// Section 4.2 mechanisms produce.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrawlStats {
    /// URLs taken off the frontier and processed (Table 1 "Visited URLs").
    pub visited_urls: u64,
    /// Documents stored in the database (Table 1 "Stored pages").
    pub stored_pages: u64,
    /// Hyperlinks extracted from stored documents (Table 1).
    pub extracted_links: u64,
    /// Documents positively classified into a topic (Table 1).
    pub positively_classified: u64,
    /// Distinct hosts successfully visited (Table 1).
    pub visited_hosts: u64,
    /// Maximum crawl depth reached (Table 1).
    pub max_depth: u32,
    /// Duplicates dismissed by any fingerprint.
    pub duplicates: u64,
    /// Fetch failures (timeouts, 404s, DNS).
    pub fetch_errors: u64,
    /// Redirects followed.
    pub redirects: u64,
    /// Documents dropped by MIME/size limits.
    pub mime_rejected: u64,
    /// URLs dropped by hygiene guards (length limits, locked hosts).
    pub url_rejected: u64,
    /// Links dropped because a frontier queue was full.
    pub queue_overflow: u64,
    /// Virtual time elapsed (ms).
    pub elapsed_ms: u64,
    /// Fetches re-attempted after a transient failure (backoff retries).
    pub retries: u64,
    /// Total virtual ms URLs spent parked in retry/breaker backoff.
    pub backoff_wait_ms: u64,
    /// Payload bytes fetched but discarded (truncated or unparseable
    /// bodies, abandoned redirect chains).
    pub wasted_bytes: u64,
    /// Responses whose body was shorter than the advertised size.
    pub truncated_fetches: u64,
    /// Circuit breakers tripped open.
    pub breaker_opened: u64,
    /// Half-open probe fetches issued.
    pub breaker_probes: u64,
    /// Breakers closed again by a successful probe.
    pub breaker_closed: u64,
    /// Hosts excluded for the rest of the crawl (breaker exhausted).
    pub hosts_dead: u64,
    /// Crawl checkpoints written.
    pub checkpoints_written: u64,
}

impl CrawlStats {
    /// Fold another set of counters into this one: sums everywhere,
    /// except the high-water marks (`max_depth`, `elapsed_ms`), which
    /// take the maximum. Used by the real-thread executor to aggregate
    /// per-worker counters.
    pub fn merge(&mut self, other: &CrawlStats) {
        self.visited_urls += other.visited_urls;
        self.stored_pages += other.stored_pages;
        self.extracted_links += other.extracted_links;
        self.positively_classified += other.positively_classified;
        self.visited_hosts += other.visited_hosts;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.duplicates += other.duplicates;
        self.fetch_errors += other.fetch_errors;
        self.redirects += other.redirects;
        self.mime_rejected += other.mime_rejected;
        self.url_rejected += other.url_rejected;
        self.queue_overflow += other.queue_overflow;
        self.elapsed_ms = self.elapsed_ms.max(other.elapsed_ms);
        self.retries += other.retries;
        self.backoff_wait_ms += other.backoff_wait_ms;
        self.wasted_bytes += other.wasted_bytes;
        self.truncated_fetches += other.truncated_fetches;
        self.breaker_opened += other.breaker_opened;
        self.breaker_probes += other.breaker_probes;
        self.breaker_closed += other.breaker_closed;
        self.hosts_dead += other.hosts_dead;
        self.checkpoints_written += other.checkpoints_written;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = CrawlConfig::default();
        assert_eq!(c.threads, 15);
        assert_eq!(c.max_tunnel, 2);
        assert_eq!(c.tunnel_decay, 0.5);
        assert_eq!(c.max_redirects, 25);
        assert_eq!(c.max_retries, 3);
        assert_eq!(c.incoming_queue_cap, 25_000);
        assert_eq!(c.outgoing_queue_cap, 1_000);
    }

    #[test]
    fn harvesting_variant_relaxes() {
        let c = CrawlConfig {
            allowed_hosts: Some(["x.edu".to_string()].into_iter().collect()),
            ..CrawlConfig::default()
        };
        let h = c.harvesting();
        assert_eq!(h.focus, FocusRule::Soft);
        assert_eq!(h.strategy, CrawlStrategy::BestFirst);
        assert_eq!(h.max_depth, 0);
        assert!(h.allowed_hosts.is_none());
        assert_eq!(h.threads, c.threads);
    }

    #[test]
    fn judgment_reject() {
        let j = Judgment::reject(-0.4);
        assert_eq!(j.topic, None);
        assert_eq!(j.confidence, -0.4);
    }
}
