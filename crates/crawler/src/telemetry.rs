//! Crawl telemetry: metric handles and structured events for the
//! discrete-event crawl loop.
//!
//! Every [`crate::Crawler`] owns a [`CrawlTelemetry`] — by default over a
//! private registry, or over a shared one via
//! [`crate::Crawler::set_telemetry`] so a whole scenario (crawl + engine +
//! index) lands in a single snapshot. All metric values here derive from
//! the virtual clock and document contents, except the checkpoint write
//! cost, which is wall time and therefore volatile. Events record only
//! rare transitions (breaker state changes, checkpoint writes), so logs
//! stay small and byte-identical across same-seed runs.

use crate::pipeline::PipelineMetrics;
use bingo_obs::{Counter, EventLog, Gauge, Histogram, Registry};
use bingo_textproc::TextprocMetrics;
use std::sync::Arc;

/// Metric and event handles for one crawler. Cloning shares the
/// underlying registry and atomics.
#[derive(Clone)]
pub struct CrawlTelemetry {
    /// The registry the handles live in (shared with other subsystems
    /// when the caller wires a scenario-wide registry).
    pub registry: Arc<Registry>,
    /// Structured event log (breaker transitions, checkpoints).
    pub events: Arc<EventLog>,
    /// Successful fetches.
    pub fetch_ok: Counter,
    /// Fetch errors (DNS, network, truncation).
    pub fetch_err: Counter,
    /// Redirect responses.
    pub fetch_redirect: Counter,
    /// Bodies shorter than the advertised size.
    pub fetch_truncated: Counter,
    /// Virtual fetch latency (ms) of successful fetches.
    pub fetch_latency_ms: Arc<Histogram>,
    /// URLs pushed into the frontier.
    pub frontier_push: Counter,
    /// URLs popped for processing.
    pub frontier_pop: Counter,
    /// URLs parked for backoff (breaker or retry).
    pub frontier_park: Counter,
    /// Current frontier depth.
    pub frontier_depth: Gauge,
    /// Breakers tripped open.
    pub breaker_opened: Counter,
    /// Breakers recovered to closed.
    pub breaker_closed: Counter,
    /// Half-open probe fetches issued.
    pub breaker_probes: Counter,
    /// Hosts declared dead after exhausting open cycles.
    pub breaker_dead: Counter,
    /// Backoff retries scheduled.
    pub retries: Counter,
    /// Backoff delay distribution (virtual ms).
    pub retry_backoff_ms: Arc<Histogram>,
    /// Documents stored.
    pub stored: Counter,
    /// Checkpoint sessions written.
    pub checkpoints: Counter,
    /// Bytes per checkpoint session (store + crawler files).
    pub checkpoint_bytes: Arc<Histogram>,
    /// Wall-clock cost of a checkpoint write (volatile).
    pub checkpoint_wall_ms: Arc<Histogram>,
    /// Old checkpoint generations pruned after successful saves.
    pub checkpoint_pruned: Counter,
    /// Worker panics caught by the threaded executor's supervisor.
    pub worker_panics: Counter,
    /// URLs requeued after riding in a panicked batch.
    pub worker_requeued: Counter,
    /// URLs quarantined after exhausting their poison budget.
    pub worker_quarantined: Counter,
    /// Replacement workers spawned by the supervisor.
    pub worker_restarts: Counter,
    /// Document-analysis metrics (tokenize/vectorize volume and cost).
    pub textproc: TextprocMetrics,
    /// Per-stage document-pipeline metrics (queue depths, batch sizes,
    /// stage latencies).
    pub pipeline: PipelineMetrics,
    /// Host-graph / authority-blend metrics (all zero unless the
    /// authority blend is enabled).
    pub graph: GraphTelemetry,
    /// Duplicate-filter spill metrics (all zero unless
    /// `dedup_spill_dir` is configured).
    pub dedup: DedupTelemetry,
    /// Stale spill files (frontier slots, dedup shards, vocabulary
    /// logs, work-queue overflow) swept on startup.
    pub spill_reaped: Counter,
    /// Work-queue overflow batches spilled to disk by the threaded
    /// executor (zero unless `work_queue_hot_cap` is set).
    pub work_spill_batches: Counter,
}

/// Metric handles for the incremental host graph
/// ([`crate::HostAuthority`]). Split out so the store tee can hold just
/// these without dragging the full crawl telemetry along.
#[derive(Clone)]
pub struct GraphTelemetry {
    /// Hosts currently interned in the graph.
    pub hosts: Gauge,
    /// Distinct inter-host edges.
    pub edges: Gauge,
    /// Page-level links folded into the graph.
    pub links: Counter,
    /// Authority recomputations performed.
    pub recomputes: Counter,
    /// Power iterations per PageRank recompute (0 for harmonic).
    pub recompute_iters: Arc<Histogram>,
}

impl GraphTelemetry {
    /// Register the `crawl.graph.*` handles in `registry`.
    pub fn new(registry: &Registry) -> Self {
        GraphTelemetry {
            hosts: registry.gauge("crawl.graph.hosts"),
            edges: registry.gauge("crawl.graph.edges"),
            links: registry.counter("crawl.graph.links"),
            recomputes: registry.counter("crawl.graph.recomputes"),
            recompute_iters: registry.histogram("crawl.graph.recompute_iters"),
        }
    }
}

/// Metric handles for the spilling duplicate filter
/// ([`crate::dedup::Dedup`]). The filter itself stays obs-free; the
/// crawler polls [`crate::dedup::DedupStats`] and folds deltas in here,
/// so counters stay monotonic across polls.
#[derive(Clone)]
pub struct DedupTelemetry {
    /// Fingerprints resident in the hot tiers.
    pub hot: Gauge,
    /// Fingerprints living in spill shard files.
    pub spilled: Gauge,
    /// Hot-tier merges into shard files.
    pub merges: Counter,
    /// Disk probes issued (front filter said "maybe").
    pub disk_probes: Counter,
    /// Disk probes that confirmed a duplicate.
    pub disk_hits: Counter,
    /// Failed shard-file reads/writes (answers stayed exact).
    pub io_errors: Counter,
}

impl DedupTelemetry {
    /// Register the `crawl.dedup.*` handles in `registry`.
    pub fn new(registry: &Registry) -> Self {
        DedupTelemetry {
            hot: registry.gauge("crawl.dedup.hot"),
            spilled: registry.gauge("crawl.dedup.spilled"),
            merges: registry.counter("crawl.dedup.merges"),
            disk_probes: registry.counter("crawl.dedup.disk_probes"),
            disk_hits: registry.counter("crawl.dedup.disk_hits"),
            io_errors: registry.counter("crawl.dedup.io_errors"),
        }
    }

    /// Fold the filter's current counters in: gauges are overwritten,
    /// monotonic counters advance by the delta since `last` (which is
    /// updated to `now`).
    pub fn record(&self, now: &crate::dedup::DedupStats, last: &mut crate::dedup::DedupStats) {
        self.hot.set(now.hot as i64);
        self.spilled.set(now.spilled as i64);
        self.merges.add(now.merges.saturating_sub(last.merges));
        self.disk_probes
            .add(now.disk_probes.saturating_sub(last.disk_probes));
        self.disk_hits
            .add(now.disk_hits.saturating_sub(last.disk_hits));
        self.io_errors
            .add(now.io_errors.saturating_sub(last.io_errors));
        *last = *now;
    }
}

impl CrawlTelemetry {
    /// Register all crawl metrics in `registry`, logging events to
    /// `events`.
    pub fn new(registry: Arc<Registry>, events: Arc<EventLog>) -> Self {
        CrawlTelemetry {
            fetch_ok: registry.counter("crawl.fetch.ok"),
            fetch_err: registry.counter("crawl.fetch.err"),
            fetch_redirect: registry.counter("crawl.fetch.redirect"),
            fetch_truncated: registry.counter("crawl.fetch.truncated"),
            fetch_latency_ms: registry.histogram("crawl.fetch.latency_ms"),
            frontier_push: registry.counter("crawl.frontier.push"),
            frontier_pop: registry.counter("crawl.frontier.pop"),
            frontier_park: registry.counter("crawl.frontier.park"),
            frontier_depth: registry.gauge("crawl.frontier.depth"),
            breaker_opened: registry.counter("crawl.breaker.opened"),
            breaker_closed: registry.counter("crawl.breaker.closed"),
            breaker_probes: registry.counter("crawl.breaker.probes"),
            breaker_dead: registry.counter("crawl.breaker.dead"),
            retries: registry.counter("crawl.retry.count"),
            retry_backoff_ms: registry.histogram("crawl.retry.backoff_ms"),
            stored: registry.counter("crawl.stored"),
            checkpoints: registry.counter("crawl.checkpoint.count"),
            checkpoint_bytes: registry.histogram("crawl.checkpoint.bytes"),
            checkpoint_wall_ms: registry.wall_histogram("crawl.checkpoint.wall_ms"),
            checkpoint_pruned: registry.counter("crawl.checkpoint.pruned"),
            worker_panics: registry.counter("crawl.worker.panics"),
            worker_requeued: registry.counter("crawl.worker.requeued"),
            worker_quarantined: registry.counter("crawl.worker.quarantined"),
            worker_restarts: registry.counter("crawl.worker.restarts"),
            textproc: TextprocMetrics::new(registry.clone()),
            pipeline: PipelineMetrics::new(&registry),
            graph: GraphTelemetry::new(&registry),
            dedup: DedupTelemetry::new(&registry),
            spill_reaped: registry.counter("crawl.spill.reaped"),
            work_spill_batches: registry.counter("crawl.work_queue.spill_batches"),
            registry,
            events,
        }
    }
}

impl Default for CrawlTelemetry {
    fn default() -> Self {
        CrawlTelemetry::new(Arc::new(Registry::new()), Arc::new(EventLog::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_registers_in_shared_registry() {
        let reg = Arc::new(Registry::new());
        let t = CrawlTelemetry::new(reg.clone(), Arc::new(EventLog::default()));
        t.fetch_ok.inc();
        t.frontier_depth.set(4);
        t.fetch_latency_ms.observe(120);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["crawl.fetch.ok"], 1);
        assert_eq!(snap.gauges["crawl.frontier.depth"], 4);
        assert_eq!(snap.histograms["crawl.fetch.latency_ms"].count, 1);
        assert!(snap.volatile.contains("crawl.checkpoint.wall_ms"));
    }

    #[test]
    fn clones_share_atomics() {
        let t = CrawlTelemetry::default();
        let u = t.clone();
        t.stored.inc();
        u.stored.inc();
        assert_eq!(t.registry.snapshot().counters["crawl.stored"], 2);
    }
}
