//! The crawler-side caching DNS resolver (Section 4.2).
//!
//! "To speed up name resolution, we implemented our own asynchronous DNS
//! resolver. This resolver can operate with multiple DNS servers in
//! parallel and resends requests to alternative servers upon timeouts. To
//! reduce the number of DNS server requests, the resolver caches all
//! obtained information using a limited amount of memory with LRU
//! replacement and TTL-based invalidation."
//!
//! The simulated resolver queries the world's authoritative records; each
//! retry is directed at an "alternative server" (a different attempt
//! salt), and both positive entries (IP) and the lookup cost are cached.

use bingo_textproc::fxhash::FxHashMap;
use bingo_webworld::{DnsError, World};
use std::collections::VecDeque;

/// Default cache capacity (entries).
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Default TTL in virtual milliseconds (10 virtual minutes).
pub const DEFAULT_TTL_MS: u64 = 600_000;

#[derive(Debug, Clone, Copy)]
struct CacheEntry {
    ip: u32,
    stored_at: u64,
}

/// A resolution outcome with its virtual-time cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// Resolved address.
    pub ip: u32,
    /// Virtual milliseconds the resolution took (0 on cache hit).
    pub latency_ms: u64,
    /// True when served from cache.
    pub cached: bool,
}

/// LRU+TTL caching resolver over the simulated DNS.
pub struct CachingResolver {
    capacity: usize,
    ttl_ms: u64,
    /// Number of simulated upstream servers to try before giving up.
    servers: u32,
    cache: FxHashMap<String, CacheEntry>,
    /// LRU order: front = oldest.
    order: VecDeque<String>,
    /// Statistics.
    pub hits: u64,
    /// Cache misses (authoritative lookups performed).
    pub misses: u64,
    /// Lookups that failed on every server.
    pub failures: u64,
}

impl CachingResolver {
    /// Resolver with default capacity/TTL and 5 upstream servers
    /// (the paper's testbed used 5 DNS servers).
    pub fn new() -> Self {
        Self::with_config(DEFAULT_CACHE_CAPACITY, DEFAULT_TTL_MS, 5)
    }

    /// Fully parameterized resolver.
    pub fn with_config(capacity: usize, ttl_ms: u64, servers: u32) -> Self {
        CachingResolver {
            capacity: capacity.max(1),
            ttl_ms,
            servers: servers.max(1),
            cache: FxHashMap::default(),
            order: VecDeque::new(),
            hits: 0,
            misses: 0,
            failures: 0,
        }
    }

    /// Resolve `hostname` at virtual time `now`, consulting the cache
    /// first and retrying alternative servers on timeouts.
    pub fn resolve(
        &mut self,
        world: &World,
        hostname: &str,
        now: u64,
    ) -> Result<Resolution, DnsError> {
        if let Some(entry) = self.cache.get(hostname) {
            if now.saturating_sub(entry.stored_at) <= self.ttl_ms {
                self.hits += 1;
                return Ok(Resolution {
                    ip: entry.ip,
                    latency_ms: 0,
                    cached: true,
                });
            }
            // TTL expired: fall through to an authoritative lookup.
        }
        self.misses += 1;
        let mut total_latency = 0u64;
        let mut last_err = DnsError::Timeout;
        for server in 0..self.servers {
            match world.dns_lookup_at(hostname, server, now) {
                Ok((ip, latency)) => {
                    total_latency += latency;
                    self.insert(hostname, ip, now);
                    return Ok(Resolution {
                        ip,
                        latency_ms: total_latency,
                        cached: false,
                    });
                }
                Err(DnsError::NxDomain) => {
                    self.failures += 1;
                    return Err(DnsError::NxDomain);
                }
                Err(DnsError::Timeout) => {
                    // Resend to an alternative server; a timeout costs a
                    // short probe interval.
                    total_latency += 50;
                    last_err = DnsError::Timeout;
                }
            }
        }
        self.failures += 1;
        Err(last_err)
    }

    fn insert(&mut self, hostname: &str, ip: u32, now: u64) {
        if !self.cache.contains_key(hostname) {
            if self.cache.len() >= self.capacity {
                // Evict the least recently inserted entry.
                if let Some(old) = self.order.pop_front() {
                    self.cache.remove(&old);
                }
            }
            self.order.push_back(hostname.to_string());
        }
        self.cache
            .insert(hostname.to_string(), CacheEntry { ip, stored_at: now });
    }

    /// Number of cached entries.
    pub fn cached_entries(&self) -> usize {
        self.cache.len()
    }
}

impl Default for CachingResolver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_webworld::gen::WorldConfig;

    fn world() -> World {
        WorldConfig::small_test(21).build()
    }

    #[test]
    fn cache_hit_after_first_lookup() {
        let w = world();
        let name = w.host(0).name.clone();
        let mut r = CachingResolver::new();
        let first = r.resolve(&w, &name, 0).unwrap();
        assert!(!first.cached);
        assert!(first.latency_ms > 0);
        let second = r.resolve(&w, &name, 100).unwrap();
        assert!(second.cached);
        assert_eq!(second.latency_ms, 0);
        assert_eq!(second.ip, first.ip);
        assert_eq!(r.hits, 1);
        assert_eq!(r.misses, 1);
    }

    #[test]
    fn ttl_expiry_forces_relookup() {
        let w = world();
        let name = w.host(0).name.clone();
        let mut r = CachingResolver::with_config(10, 1000, 5);
        r.resolve(&w, &name, 0).unwrap();
        let later = r.resolve(&w, &name, 5000).unwrap();
        assert!(!later.cached, "expired entry must be refreshed");
        assert_eq!(r.misses, 2);
    }

    #[test]
    fn lru_eviction_respects_capacity() {
        let w = world();
        let mut r = CachingResolver::with_config(3, u64::MAX, 5);
        for h in 0..5u32 {
            let name = w.host(h).name.clone();
            let _ = r.resolve(&w, &name, 0);
        }
        assert!(r.cached_entries() <= 3);
    }

    #[test]
    fn nxdomain_is_terminal() {
        let w = world();
        let mut r = CachingResolver::new();
        assert_eq!(
            r.resolve(&w, "no-such-host.invalid", 0),
            Err(DnsError::NxDomain)
        );
        assert_eq!(r.failures, 1);
    }

    #[test]
    fn flaky_dns_retries_alternative_servers() {
        let w = world();
        // Find a flaky host whose DNS fails on at least one server salt.
        let flaky = (0..w.host_count() as u32)
            .map(|h| w.host(h))
            .find(|h| matches!(h.behavior, bingo_webworld::HostBehavior::Flaky(_)))
            .expect("flaky host exists");
        let mut r = CachingResolver::with_config(10, u64::MAX, 5);
        // With 5 servers the lookup should eventually succeed.
        let res = r.resolve(&w, &flaky.name, 0);
        assert!(res.is_ok(), "5-server retry should succeed: {res:?}");
    }
}
