//! The crawl loop: a discrete-event simulation of the multi-threaded
//! fetch/classify/enqueue pipeline (Sections 2.1 and 4.2).
//!
//! Each [`Crawler::step`] call processes one URL end to end on the
//! earliest-free simulated thread: frontier pop → hygiene guards → DNS →
//! fetch (with redirect/timeout handling), then the shared document
//! pipeline ([`crate::pipeline`]) — MIME/size filter → duplicate
//! fingerprints → content conversion → document analysis →
//! classification via the pluggable [`DocumentJudge`] → bulk-load — and
//! finally link extraction and focusing-rule-driven enqueueing. This
//! module is the frontier/focus *policy* layer; all fetch-to-store
//! document handling lives in the pipeline, shared with the
//! real-thread executor. Virtual time advances by the real latencies
//! the simulated network reports, so wall-clock budgets ("a 90-minute
//! crawl") are meaningful and deterministic.

use crate::checkpoint::{
    load_checkpoint, CheckpointError, CrawlCheckpoint, CRAWLER_FILE, STORE_FILE,
};
use crate::dedup::{path_of_url, Dedup, DedupSpillConfig, DedupStats};
use crate::dns::CachingResolver;
use crate::frontier::{Frontier, QueueEntry};
use crate::hosts::{FailureOutcome, HostDecision, HostManager};
use crate::pipeline::{process_batch, top_terms, DocOutcome, FetchedDoc, NEIGHBOR_TERMS_KEPT};
use crate::telemetry::CrawlTelemetry;
use crate::types::{
    CrawlConfig, CrawlStats, CrawlStrategy, FocusRule, Judgment, MAX_HOSTNAME_LEN, MAX_URL_LEN,
};
use crate::DocumentJudge;
use bingo_obs::{Event, WallTimer};
use bingo_store::durable;
use bingo_store::{BulkLoader, BulkLoaderObs, DocumentStore};
use bingo_textproc::fxhash;
use bingo_textproc::{ContentRegistry, Vocabulary};
use bingo_webworld::fetch::host_of_url;
use bingo_webworld::{DnsError, FetchOutcome, World};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// What one crawl step did.
#[derive(Debug, Clone, PartialEq)]
pub enum StepOutcome {
    /// A document was fetched, analyzed, judged and stored.
    Stored {
        /// Page id of the stored document.
        page_id: u64,
        /// The classifier's verdict.
        judgment: Judgment,
    },
    /// The URL was consumed without storing a document (duplicate,
    /// error, filtered, redirect...).
    Skipped(&'static str),
    /// No URLs left in the frontier.
    FrontierEmpty,
}

/// Bounded cache of each stored page's most significant terms, feeding
/// the neighbour-document feature space of its successors (Section
/// 3.4). With `cap == 0` it is an ordinary unbounded map; a positive
/// cap evicts the oldest entries FIFO — links to long-stored pages then
/// enqueue without neighbour terms, which only perturbs feature
/// construction, never correctness. After a checkpoint restore the
/// insertion order is the sorted-by-id checkpoint order.
#[derive(Debug, Default)]
struct PageTermCache {
    map: bingo_textproc::fxhash::FxHashMap<u64, Vec<bingo_textproc::TermId>>,
    /// Insertion order of keys, oldest first (unused when `cap == 0`).
    order: std::collections::VecDeque<u64>,
    cap: usize,
}

impl PageTermCache {
    fn new(cap: usize) -> Self {
        PageTermCache {
            cap,
            ..PageTermCache::default()
        }
    }

    fn insert(&mut self, page_id: u64, terms: Vec<bingo_textproc::TermId>) {
        let fresh = self.map.insert(page_id, terms).is_none();
        if self.cap > 0 && fresh {
            self.order.push_back(page_id);
            while self.map.len() > self.cap {
                let Some(oldest) = self.order.pop_front() else {
                    break;
                };
                self.map.remove(&oldest);
            }
        }
    }

    fn get(&self, page_id: &u64) -> Option<&Vec<bingo_textproc::TermId>> {
        self.map.get(page_id)
    }

    /// Entries sorted by page id — the byte-stable checkpoint form.
    fn sorted_entries(&self) -> Vec<(u64, Vec<bingo_textproc::TermId>)> {
        let mut entries: Vec<(u64, Vec<bingo_textproc::TermId>)> =
            self.map.iter().map(|(k, v)| (*k, v.clone())).collect();
        entries.sort_unstable_by_key(|e| e.0);
        entries
    }

    fn from_entries(entries: Vec<(u64, Vec<bingo_textproc::TermId>)>, cap: usize) -> Self {
        let mut cache = Self::new(cap);
        for (k, v) in entries {
            cache.insert(k, v);
        }
        cache
    }
}

/// The focused crawler over a simulated web.
pub struct Crawler {
    world: Arc<World>,
    /// Active configuration (the engine swaps learning → harvesting).
    pub config: CrawlConfig,
    frontier: Frontier,
    dedup: Dedup,
    resolver: CachingResolver,
    hosts: HostManager,
    registry: ContentRegistry,
    store: DocumentStore,
    /// Batched writer over `store` (batch size 1: the discrete-event
    /// executor stores one document per step, and the store must be
    /// current whenever the engine reads it between steps).
    loader: BulkLoader,
    stats: CrawlStats,
    /// Min-heap of (free-at, thread id).
    threads: BinaryHeap<Reverse<(u64, usize)>>,
    /// Per-host connection slots: times each slot becomes free
    /// (politeness: at most `per_host_connections` simultaneous fetches
    /// per host, Section 5.1).
    host_slots: bingo_textproc::fxhash::FxHashMap<String, Vec<u64>>,
    /// Most significant terms of each stored page, feeding the
    /// neighbour-document feature space of its successors (Section 3.4).
    /// Bounded by `config.page_terms_cap` (0 = unbounded).
    page_top_terms: PageTermCache,
    /// Dedup counters at the last telemetry poll (for counter deltas).
    last_dedup_stats: DedupStats,
    /// Stale spill files swept from the configured spill directories at
    /// construction.
    stale_spill_reaped: u64,
    clock: u64,
    /// Metric handles; intentionally not part of checkpoints (telemetry
    /// describes a run, not the crawl state).
    telemetry: CrawlTelemetry,
    /// Incremental host-level webgraph feeding authority-blended
    /// frontier priorities; `None` unless `config.authority.enabled`.
    authority: Option<Arc<crate::authority::HostAuthority>>,
}

impl Crawler {
    /// New crawler over `world` writing into `store`.
    pub fn new(world: Arc<World>, config: CrawlConfig, store: DocumentStore) -> Self {
        let topics = world.topics().len();
        // Sweep spill scratch of aborted runs — every family (frontier
        // slots, dedup shards, vocabulary logs, work-queue overflow),
        // not just the files this run's configuration would rewrite.
        let stale_spill_reaped = Self::sweep_stale_spill_files(&config);
        let frontier = Frontier::with_spill(
            topics,
            config.incoming_queue_cap,
            config.outgoing_queue_cap,
            Self::spill_config(&config),
        );
        let threads = (0..config.threads.max(1))
            .map(|tid| Reverse((0u64, tid)))
            .collect();
        let telemetry = CrawlTelemetry::default();
        // When the authority blend is on, interpose the host-graph tee
        // on the store handle so every accepted document and link row
        // feeds the graph; with it off the store is untouched and the
        // crawl is bit-identical to an authority-free build.
        let authority = config.authority.enabled.then(|| {
            Arc::new(crate::authority::HostAuthority::new(
                config.authority.clone(),
                telemetry.graph.clone(),
            ))
        });
        let store = match &authority {
            Some(auth) => store.with_added_tee(auth.clone() as Arc<dyn bingo_store::IndexTee>),
            None => store,
        };
        let loader = Self::make_loader(&store, &telemetry);
        telemetry.spill_reaped.add(stale_spill_reaped);
        Crawler {
            hosts: HostManager::with_config(config.breaker.clone()),
            frontier,
            threads,
            dedup: match Self::dedup_spill_config(&config) {
                Some(cfg) => Dedup::with_spill(&cfg),
                None => Dedup::new(),
            },
            page_top_terms: PageTermCache::new(config.page_terms_cap),
            world,
            config,
            resolver: CachingResolver::new(),
            registry: ContentRegistry::new(),
            store,
            loader,
            stats: CrawlStats::default(),
            host_slots: bingo_textproc::fxhash::FxHashMap::default(),
            last_dedup_stats: DedupStats::default(),
            stale_spill_reaped,
            clock: 0,
            telemetry,
            authority,
        }
    }

    /// The authority state when the blend is enabled (for experiments
    /// and tests inspecting the host graph).
    pub fn authority(&self) -> Option<&Arc<crate::authority::HostAuthority>> {
        self.authority.as_ref()
    }

    /// Spill configuration derived from the crawl config (`None` unless
    /// `frontier_spill_dir` is set).
    fn spill_config(config: &CrawlConfig) -> Option<crate::frontier::SpillConfig> {
        config
            .frontier_spill_dir
            .as_ref()
            .map(|dir| crate::frontier::SpillConfig {
                dir: dir.clone(),
                hot_cap: config.frontier_hot_cap,
            })
    }

    /// Dedup spill configuration derived from the crawl config (`None`
    /// unless `dedup_spill_dir` is set).
    fn dedup_spill_config(config: &CrawlConfig) -> Option<DedupSpillConfig> {
        config.dedup_spill_dir.as_ref().map(|dir| DedupSpillConfig {
            hot_cap: config.dedup_hot_cap,
            ..DedupSpillConfig::new(dir)
        })
    }

    /// Sweep stale `*.spill` files — every family (frontier slots,
    /// dedup shards, vocabulary logs, work-queue overflow), not just
    /// the ones this run's configuration would rewrite — from every
    /// configured spill directory. Spill files are run-scratch and
    /// never referenced by checkpoints, so anything present before the
    /// run starts is leftover from an aborted run.
    fn sweep_stale_spill_files(config: &CrawlConfig) -> u64 {
        let mut dirs: Vec<&std::path::Path> = config
            .frontier_spill_dir
            .iter()
            .chain(config.dedup_spill_dir.iter())
            .map(|d| d.as_path())
            .collect();
        dirs.sort_unstable();
        dirs.dedup();
        dirs.into_iter()
            .map(|dir| {
                bingo_store::spill::reap_stale_spill_files(dir, bingo_store::SPILL_FILE_PREFIXES)
                    as u64
            })
            .sum()
    }

    /// Aggregated spill counters of the duplicate filter (all zero for
    /// a fully resident filter).
    pub fn dedup_stats(&self) -> DedupStats {
        self.dedup.stats()
    }

    /// The pipeline's store writer: batch size 1 (flush per step) with
    /// flush errors surfaced through the telemetry registry.
    fn make_loader(store: &DocumentStore, telemetry: &CrawlTelemetry) -> BulkLoader {
        BulkLoader::with_batch_size(store.clone(), 1).with_observer(BulkLoaderObs::new(
            &telemetry.registry,
            telemetry.events.clone(),
        ))
    }

    /// Route this crawler's metrics and events into a shared telemetry
    /// namespace (e.g. one registry covering crawl + engine + index).
    pub fn set_telemetry(&mut self, telemetry: CrawlTelemetry) {
        self.loader = Self::make_loader(&self.store, &telemetry);
        if let Some(auth) = &self.authority {
            auth.set_telemetry(telemetry.graph.clone());
        }
        // Replay startup-time spill state into the new registry: the
        // stale-file sweep happened under the private default registry.
        telemetry.spill_reaped.add(self.stale_spill_reaped);
        self.last_dedup_stats = DedupStats::default();
        telemetry
            .dedup
            .record(&self.dedup.stats(), &mut self.last_dedup_stats);
        self.telemetry = telemetry;
    }

    /// The crawler's metric handles and event log.
    pub fn telemetry(&self) -> &CrawlTelemetry {
        &self.telemetry
    }

    /// Seed the crawl with a URL for a topic.
    pub fn add_seed(&mut self, url: &str, topic: Option<u32>) {
        if self.dedup.mark_url(url) {
            self.frontier.push_outgoing(QueueEntry::seed(url, topic));
            self.telemetry.frontier_push.inc();
        }
    }

    /// Rebuild duplicate-detection state from an existing crawl database
    /// (resuming a crawl in a later session): every stored document's URL
    /// and response fingerprints are re-marked so the resumed crawl never
    /// refetches what it already has.
    pub fn resume_from_store(&mut self) {
        let docs = self.store.all_documents();
        for row in docs {
            self.dedup.mark_url(&row.url);
            let ip = self.world.host_meta(row.host).ip;
            self.dedup
                .mark_response(ip, crate::dedup::path_of_url(&row.url), row.size as u64);
            // Restore the neighbour-term cache for feature construction.
            let mut by_freq: Vec<(u32, u32)> = row.term_freqs.clone();
            by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            self.page_top_terms.insert(
                row.id,
                by_freq
                    .into_iter()
                    .take(NEIGHBOR_TERMS_KEPT)
                    .map(|(t, _)| bingo_textproc::TermId(t))
                    .collect(),
            );
            if let Some(host) = host_of_url(&row.url) {
                self.hosts.record_success(host);
            }
        }
        self.stats.stored_pages = self.store.document_count() as u64;
        self.stats.visited_hosts = self.hosts.visited_count() as u64;
    }

    /// Snapshot the crawler's complete mid-crawl state (everything but
    /// the world and the document store).
    pub fn checkpoint(&self) -> CrawlCheckpoint {
        let (host_health, visited_hosts) = self.hosts.snapshot();
        let mut threads: Vec<(u64, usize)> = self.threads.iter().map(|Reverse(t)| *t).collect();
        threads.sort_unstable();
        let mut host_slots: Vec<(String, Vec<u64>)> = self
            .host_slots
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        host_slots.sort_by(|a, b| a.0.cmp(&b.0));
        CrawlCheckpoint {
            magic: crate::checkpoint::MAGIC.to_string(),
            version: crate::checkpoint::VERSION,
            clock_ms: self.clock,
            stats: self.stats.clone(),
            frontier: self.frontier.snapshot(),
            dedup: self.dedup.snapshot(),
            host_health,
            visited_hosts,
            threads,
            host_slots,
            page_top_terms: self.page_top_terms.sorted_entries(),
            host_graph: self.authority.as_ref().map(|a| a.checkpoint()),
        }
    }

    /// Overwrite this crawler's mid-crawl state from a checkpoint. The
    /// resolver cache is intentionally *not* part of checkpoints: it is
    /// a pure cache and repopulates on the first fetch per host.
    pub fn restore_checkpoint(&mut self, cp: CrawlCheckpoint) {
        self.clock = cp.clock_ms;
        self.stats = cp.stats;
        self.frontier = Frontier::restore_with(
            cp.frontier,
            self.config.incoming_queue_cap,
            self.config.outgoing_queue_cap,
            Self::spill_config(&self.config),
        );
        self.dedup = Dedup::restore_with(cp.dedup, Self::dedup_spill_config(&self.config));
        self.hosts = HostManager::restore(
            self.config.breaker.clone(),
            cp.host_health,
            cp.visited_hosts,
        );
        self.threads = cp.threads.into_iter().map(Reverse).collect();
        self.host_slots = cp.host_slots.into_iter().collect();
        self.page_top_terms =
            PageTermCache::from_entries(cp.page_top_terms, self.config.page_terms_cap);
        if let (Some(auth), Some(snap)) = (&self.authority, cp.host_graph) {
            auth.restore(snap);
        }
        self.resolver = CachingResolver::new();
    }

    /// Write a full crawl session — store snapshot plus crawler
    /// checkpoint — as a new checkpoint *generation* under `dir`
    /// (created if missing). The generation's manifest is committed
    /// last, so a kill at any byte of the save leaves the previous
    /// complete generation as the recovery target. After a successful
    /// commit, generations beyond `config.checkpoint_keep` are pruned.
    pub fn save_session<P: AsRef<std::path::Path>>(&self, dir: P) -> Result<(), CheckpointError> {
        self.save_session_with(&durable::StdFs, dir).map(|_| ())
    }

    /// [`Crawler::save_session`] over an injectable filesystem — the
    /// crash-point harness drives this with a byte-budgeted
    /// [`bingo_store::CrashFs`]. Returns the committed generation
    /// number.
    pub fn save_session_with<P: AsRef<std::path::Path>>(
        &self,
        fs: &dyn durable::DurableFs,
        dir: P,
    ) -> Result<u64, CheckpointError> {
        let dir = dir.as_ref();
        let mut writer = durable::GenerationWriter::begin(fs, dir)?;
        self.write_session_into(&mut writer)?;
        let generation = writer.commit()?;
        let pruned = durable::prune_generations(dir, self.config.checkpoint_keep);
        self.telemetry.checkpoint_pruned.add(pruned as u64);
        Ok(generation)
    }

    /// Write this crawler's session files (store snapshot + checkpoint)
    /// into an open generation. Callers that bundle more artifacts into
    /// the same commit (e.g. `bingo_core::persist::save_session` adds
    /// the engine snapshot) append them before committing the writer.
    pub fn write_session_into(
        &self,
        writer: &mut durable::GenerationWriter<'_>,
    ) -> Result<(), CheckpointError> {
        let mut snapshot = Vec::new();
        bingo_store::persist::write_snapshot(&self.store, &mut snapshot)
            .map_err(|e| CheckpointError::Store(e.to_string()))?;
        writer.write_file(STORE_FILE, &snapshot)?;
        let cp = crate::checkpoint::checkpoint_bytes(&self.checkpoint())?;
        writer.write_file(CRAWLER_FILE, &cp)?;
        Ok(())
    }

    /// Rebuild a crawler mid-crawl from a session directory written by
    /// [`Crawler::save_session`]: the newest *complete* generation is
    /// the recovery target — torn or corrupted generations (crash
    /// mid-save, bit rot) are skipped, rolling back to the last good
    /// commit. Directories written by the pre-generation flat layout
    /// load via the legacy fallback. `world` and `config` must match
    /// the original crawl for the resumed run to be meaningful.
    pub fn resume_session<P: AsRef<std::path::Path>>(
        world: Arc<World>,
        config: CrawlConfig,
        dir: P,
    ) -> Result<Crawler, CheckpointError> {
        let dir = dir.as_ref();
        let session = match durable::find_newest_complete(dir) {
            Some(generation) => generation.dir,
            None => dir.to_path_buf(), // legacy flat layout
        };
        let store = bingo_store::persist::load(session.join(STORE_FILE))
            .map_err(|e| CheckpointError::Store(e.to_string()))?;
        let cp = load_checkpoint(session.join(CRAWLER_FILE))?;
        let mut crawler = Crawler::new(world, config, store);
        crawler.restore_checkpoint(cp);
        Ok(crawler)
    }

    /// Per-host breaker health as `(hostname, state, failure count)`,
    /// sorted by hostname — for diagnostics and the breaker-sanity
    /// assertions of the chaos/crash tests.
    pub fn host_states(&self) -> Vec<(String, bingo_store::HostState, u32)> {
        let mut states: Vec<(String, bingo_store::HostState, u32)> = self
            .hosts
            .states()
            .map(|(h, s, f)| (h.to_string(), s, f))
            .collect();
        states.sort_by(|a, b| a.0.cmp(&b.0));
        states
    }

    /// The breaker position of one host right now.
    pub fn breaker_state(&self, host: &str) -> crate::hosts::BreakerState {
        self.hosts.breaker_state(host)
    }

    /// Queue a not-yet-seen URL with an explicit priority (used to resume
    /// harvesting from the best hubs after retraining, Section 2.5).
    pub fn boost_url(&mut self, url: &str, topic: Option<u32>, priority: f32) {
        if self.dedup.mark_url(url) {
            self.frontier.push_outgoing(QueueEntry {
                priority,
                ..QueueEntry::seed(url, topic)
            });
            self.telemetry.frontier_push.inc();
        }
    }

    /// Crawl statistics so far.
    pub fn stats(&self) -> &CrawlStats {
        &self.stats
    }

    /// Current virtual time in milliseconds.
    pub fn clock_ms(&self) -> u64 {
        self.clock
    }

    /// The result database.
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// Number of URLs waiting in the frontier.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }

    /// Queued URLs whose payload lives in frontier spill files (0 unless
    /// `frontier_spill_dir` is configured).
    pub fn frontier_spilled_len(&self) -> usize {
        self.frontier.spilled_len()
    }

    /// The simulated web (also the link analysis' unfocused database).
    pub fn world(&self) -> &Arc<World> {
        &self.world
    }

    /// Run steps until the virtual clock passes `deadline_ms` or the
    /// frontier empties. Returns the number of documents stored.
    pub fn run_until(
        &mut self,
        deadline_ms: u64,
        judge: &mut dyn DocumentJudge,
        vocab: &mut Vocabulary,
    ) -> u64 {
        let mut stored = 0;
        while self.clock < deadline_ms {
            match self.step(judge, vocab) {
                StepOutcome::Stored { .. } => stored += 1,
                StepOutcome::Skipped(_) => {}
                StepOutcome::FrontierEmpty => break,
            }
        }
        stored
    }

    /// Process one URL. See the module docs for the pipeline stages.
    ///
    /// When every remaining URL is parked in retry/breaker backoff, the
    /// virtual clock fast-forwards to the earliest release time — the
    /// simulated crawler idles until work becomes available again.
    pub fn step(&mut self, judge: &mut dyn DocumentJudge, vocab: &mut Vocabulary) -> StepOutcome {
        let entry = loop {
            self.frontier.release_due(self.clock);
            if let Some(e) = self.frontier.pop() {
                self.telemetry.frontier_pop.inc();
                break e;
            }
            match self.frontier.next_release() {
                Some(t) => self.clock = self.clock.max(t),
                None => return StepOutcome::FrontierEmpty,
            }
        };
        // Acquire the earliest-free simulated thread...
        let Reverse((free_at, tid)) = self.threads.pop().expect("threads configured");
        let mut now = self.clock.max(free_at);
        // ...and a connection slot on the target host (politeness: at
        // most `per_host_connections` simultaneous fetches per host).
        let slot_key = host_of_url(&entry.url).map(str::to_string);
        let mut slot_index = None;
        if let Some(host) = &slot_key {
            let slots = self
                .host_slots
                .entry(host.clone())
                .or_insert_with(|| vec![0; self.config.per_host_connections.max(1)]);
            let (idx, &earliest) = slots
                .iter()
                .enumerate()
                .min_by_key(|&(_, &t)| t)
                .expect("at least one slot");
            now = now.max(earliest);
            slot_index = Some(idx);
        }
        self.clock = self.clock.max(now);
        let mut cost = self.config.processing_cost_ms;
        let outcome = self.process(entry, now, &mut cost, judge, vocab);
        let done = now + cost;
        if let (Some(host), Some(idx)) = (&slot_key, slot_index) {
            if let Some(slots) = self.host_slots.get_mut(host) {
                slots[idx] = done;
            }
        }
        self.threads.push(Reverse((done, tid)));
        self.stats.elapsed_ms = self.stats.elapsed_ms.max(done);
        self.telemetry
            .frontier_depth
            .set(self.frontier.len() as i64);
        self.telemetry
            .pipeline
            .queue_depth
            .set(self.frontier.len() as i64);
        self.telemetry
            .dedup
            .record(&self.dedup.stats(), &mut self.last_dedup_stats);
        if matches!(outcome, StepOutcome::Stored { .. }) {
            self.maybe_checkpoint();
        }
        outcome
    }

    /// Write an automatic checkpoint every `checkpoint_every_docs`
    /// stored documents (counted *before* the increment of
    /// `checkpoints_written`, so the persisted stats describe exactly
    /// the checkpointed crawl state).
    fn maybe_checkpoint(&mut self) {
        let every = self.config.checkpoint_every_docs;
        if every == 0
            || self.stats.stored_pages == 0
            || !self.stats.stored_pages.is_multiple_of(every)
        {
            return;
        }
        let Some(dir) = self.config.checkpoint_dir.clone() else {
            return;
        };
        let timer = WallTimer::start();
        if let Ok(generation) = self.save_session_with(&durable::StdFs, &dir) {
            self.stats.checkpoints_written += 1;
            timer.observe_ms(&self.telemetry.checkpoint_wall_ms);
            self.telemetry.checkpoints.inc();
            let gen_dir = durable::generation_dir(&dir, generation);
            let bytes = [CRAWLER_FILE, STORE_FILE]
                .iter()
                .filter_map(|f| std::fs::metadata(gen_dir.join(f)).ok())
                .map(|m| m.len())
                .sum::<u64>();
            self.telemetry.checkpoint_bytes.observe(bytes);
            self.telemetry.events.emit(
                Event::at(self.clock, "crawl.checkpoint.write")
                    .with("bytes", bytes)
                    .with("docs", self.stats.stored_pages),
            );
        }
    }

    fn process(
        &mut self,
        entry: QueueEntry,
        now: u64,
        cost: &mut u64,
        judge: &mut dyn DocumentJudge,
        vocab: &mut Vocabulary,
    ) -> StepOutcome {
        self.stats.visited_urls += 1;
        self.stats.max_depth = self.stats.max_depth.max(entry.depth);

        // URL hygiene (Section 4.2 "document type management").
        let Some(host) = host_of_url(&entry.url).map(str::to_string) else {
            self.stats.url_rejected += 1;
            return StepOutcome::Skipped("malformed url");
        };
        if entry.url.len() > MAX_URL_LEN || host.len() > MAX_HOSTNAME_LEN {
            self.stats.url_rejected += 1;
            return StepOutcome::Skipped("url length guard");
        }
        if self.config.locked_hosts.contains(&host) {
            self.stats.url_rejected += 1;
            return StepOutcome::Skipped("locked host");
        }
        if let Some(allowed) = &self.config.allowed_hosts {
            if !allowed.contains(&host) {
                self.stats.url_rejected += 1;
                return StepOutcome::Skipped("outside allowed domains");
            }
        }
        // Circuit breaker (Section 4.2 host quality, with recovery): an
        // open breaker parks the URL until the half-open deadline instead
        // of dropping it; the first URL past the deadline becomes the probe.
        match self.hosts.decide(&host, now) {
            HostDecision::Dead => return StepOutcome::Skipped("bad host"),
            HostDecision::Defer { until_ms } => {
                self.stats.backoff_wait_ms += until_ms.saturating_sub(now);
                self.frontier.park(entry, until_ms);
                self.telemetry.frontier_park.inc();
                return StepOutcome::Skipped("breaker open");
            }
            HostDecision::Probe => {
                self.stats.breaker_probes += 1;
                self.telemetry.breaker_probes.inc();
            }
            HostDecision::Proceed => {}
        }

        // DNS.
        match self.resolver.resolve(&self.world, &host, now) {
            Ok(res) => *cost += res.latency_ms,
            Err(err) => {
                *cost += 100;
                self.stats.fetch_errors += 1;
                self.telemetry.fetch_err.inc();
                self.note_failure(&host, now);
                // NxDomain is permanent; a timeout may be a DNS flap
                // window, so the URL gets a backoff retry.
                if err == DnsError::Timeout {
                    self.maybe_retry(entry, now);
                }
                return StepOutcome::Skipped("dns failure");
            }
        }

        // Fetch.
        let response = match self.world.fetch_at(&entry.url, entry.attempt, now) {
            FetchOutcome::Redirect {
                location,
                latency_ms,
            } => {
                *cost += latency_ms;
                self.stats.redirects += 1;
                self.telemetry.fetch_redirect.inc();
                if entry.redirects < self.config.max_redirects && self.dedup.mark_url(&location) {
                    self.frontier.push_outgoing(QueueEntry {
                        url: location,
                        redirects: entry.redirects + 1,
                        ..entry
                    });
                    self.telemetry.frontier_push.inc();
                }
                return StepOutcome::Skipped("redirect");
            }
            FetchOutcome::Err { error, latency_ms } => {
                *cost += latency_ms;
                self.stats.fetch_errors += 1;
                self.telemetry.fetch_err.inc();
                self.note_failure(&host, now);
                if error.is_transient() {
                    self.maybe_retry(entry, now);
                }
                return StepOutcome::Skipped("fetch error");
            }
            FetchOutcome::Ok(resp) => {
                *cost += resp.latency_ms;
                resp
            }
        };

        // A body shorter than the advertised size means the connection
        // broke mid-transfer: treat as a transient host failure and
        // retry, *before* the response is fingerprinted.
        if response.truncated {
            self.stats.truncated_fetches += 1;
            self.stats.wasted_bytes += response.payload.len() as u64;
            self.stats.fetch_errors += 1;
            self.telemetry.fetch_truncated.inc();
            self.telemetry.fetch_err.inc();
            self.note_failure(&host, now);
            self.maybe_retry(entry, now);
            return StepOutcome::Skipped("truncated body");
        }

        self.telemetry.fetch_ok.inc();
        self.telemetry.fetch_latency_ms.observe(response.latency_ms);
        if self.hosts.record_success(&host) {
            self.stats.breaker_closed += 1;
            self.telemetry.breaker_closed.inc();
            self.telemetry
                .events
                .emit(Event::at(now, "crawl.breaker.close").with("host", &host));
        }
        self.stats.visited_hosts = self.hosts.visited_count() as u64;

        // The shared document pipeline takes over from here: MIME/size
        // filter → duplicate fingerprints → conversion → analysis →
        // classification → bulk-load. The discrete-event executor
        // processes one URL per step, so the batch is a singleton.
        let fetched = FetchedDoc {
            depth: entry.depth,
            src_topic: entry.src_topic,
            anchor_terms: entry.anchor_terms.clone(),
            neighbor_terms: self
                .page_top_terms
                .get(&entry.src_page)
                .cloned()
                .unwrap_or_default(),
            fetched_at: now,
            response,
        };
        let dedup = &mut self.dedup;
        let outcome = process_batch(
            &self.world,
            &self.registry,
            vocab,
            &mut self.loader,
            vec![fetched],
            |resp| dedup.mark_response(resp.ip, path_of_url(&resp.url), resp.size),
            |docs, ctxs| {
                docs.iter()
                    .zip(ctxs)
                    .map(|(d, c)| judge.judge(d, c))
                    .collect()
            },
            &self.telemetry.textproc,
            &self.telemetry.pipeline,
        )
        .pop()
        .expect("one outcome per document");

        match outcome {
            DocOutcome::MimeFiltered => {
                self.stats.mime_rejected += 1;
                StepOutcome::Skipped("mime/size filter")
            }
            DocOutcome::DuplicateContent => {
                self.stats.duplicates += 1;
                StepOutcome::Skipped("duplicate content")
            }
            DocOutcome::Malformed { wasted_bytes } => {
                self.stats.mime_rejected += 1;
                self.stats.wasted_bytes += wasted_bytes;
                StepOutcome::Skipped("malformed payload")
            }
            DocOutcome::AlreadyStored { page_id, doc, .. } => {
                // Same page re-fetched through another alias/redirect
                // chain; its terms still feed successors' features.
                self.page_top_terms.insert(page_id, top_terms(&doc));
                self.stats.duplicates += 1;
                StepOutcome::Skipped("already stored")
            }
            DocOutcome::Stored {
                page_id,
                doc,
                judgment,
            } => {
                // Remember this page's top terms for its successors.
                self.page_top_terms.insert(page_id, top_terms(&doc));
                self.stats.stored_pages += 1;
                self.telemetry.stored.inc();
                if judgment.topic.is_some() {
                    self.stats.positively_classified += 1;
                }
                // Link extraction and enqueueing under the focusing rule.
                self.stats.extracted_links += doc.links.len() as u64;
                self.enqueue_links(&entry, &judgment, &doc, page_id);
                StepOutcome::Stored { page_id, judgment }
            }
        }
    }

    /// Record a failure against `host`'s breaker and roll the outcome
    /// into the crawl counters.
    fn note_failure(&mut self, host: &str, now: u64) {
        let was_dead = self.hosts.is_bad(host);
        match self.hosts.record_failure(host, now) {
            FailureOutcome::Opened { until_ms } => {
                self.stats.breaker_opened += 1;
                self.telemetry.breaker_opened.inc();
                self.telemetry.events.emit(
                    Event::at(now, "crawl.breaker.open")
                        .with("host", host)
                        .with("until_ms", until_ms),
                );
            }
            FailureOutcome::Died if !was_dead => {
                self.stats.hosts_dead += 1;
                self.telemetry.breaker_dead.inc();
                self.telemetry
                    .events
                    .emit(Event::at(now, "crawl.breaker.dead").with("host", host));
            }
            _ => {}
        }
    }

    /// Park `entry` for an exponential-backoff retry when its per-URL
    /// attempt budget and the host's breaker allow another try.
    fn maybe_retry(&mut self, entry: QueueEntry, now: u64) {
        if entry.attempt >= self.config.max_retries {
            return;
        }
        let Some(host) = host_of_url(&entry.url) else {
            return;
        };
        if !self.hosts.retries_left(host) {
            return;
        }
        let backoff = self.retry_backoff(&entry.url, entry.attempt);
        self.stats.retries += 1;
        self.stats.backoff_wait_ms += backoff;
        self.telemetry.retries.inc();
        self.telemetry.retry_backoff_ms.observe(backoff);
        self.telemetry.frontier_park.inc();
        self.frontier.park(
            QueueEntry {
                attempt: entry.attempt + 1,
                ..entry
            },
            now + backoff,
        );
    }

    /// Backoff before retry `attempt` of `url`: `retry_backoff_ms <<
    /// attempt`, capped by the breaker's ceiling, with deterministic
    /// per-URL jitter so co-failing URLs don't retry in lockstep.
    fn retry_backoff(&self, url: &str, attempt: u32) -> u64 {
        let base = self
            .config
            .retry_backoff_ms
            .checked_shl(attempt.min(20))
            .unwrap_or(u64::MAX)
            .min(self.config.breaker.max_backoff_ms)
            .max(1);
        let amplitude = base * self.config.breaker.jitter_permille as u64 / 1000;
        if amplitude == 0 {
            return base;
        }
        base - amplitude + fxhash::hash_one(&(url, attempt, 0x5EEDu32)) % (2 * amplitude + 1)
    }

    fn enqueue_links(
        &mut self,
        entry: &QueueEntry,
        judgment: &Judgment,
        doc: &bingo_textproc::AnalyzedDocument,
        page_id: u64,
    ) {
        let child_depth = entry.depth + 1;
        if self.config.max_depth > 0 && child_depth > self.config.max_depth {
            return;
        }

        // Decide how this document propagates focus (Section 3.3).
        let on_topic = match (self.config.focus, judgment.topic) {
            // Sharp: the document must be classified into the same topic
            // it was queued for (seeds with src_topic None accept any
            // positive classification).
            (FocusRule::Sharp, Some(t)) => entry.src_topic.is_none() || entry.src_topic == Some(t),
            // Soft: any topic of interest counts.
            (FocusRule::Soft, Some(_)) => true,
            (_, None) => false,
        };

        let (tunnel, src_topic, base_priority) = if on_topic {
            (
                0,
                judgment.topic.or(entry.src_topic),
                judgment.confidence.max(0.0),
            )
        } else {
            // Tunnelling through a rejected (or off-topic) page.
            let tunnel = entry.tunnel + 1;
            if tunnel > self.config.max_tunnel {
                return;
            }
            let parent = if entry.priority.is_finite() && entry.priority < 1e12 {
                entry.priority
            } else {
                1.0
            };
            (
                tunnel,
                entry.src_topic,
                (parent * self.config.tunnel_decay).max(0.001),
            )
        };

        for link in &doc.links {
            let url = &link.href;
            if url.len() > MAX_URL_LEN {
                self.stats.url_rejected += 1;
                continue;
            }
            let Some(link_host) = host_of_url(url) else {
                self.stats.url_rejected += 1;
                continue;
            };
            if link_host.len() > MAX_HOSTNAME_LEN || self.config.locked_hosts.contains(link_host) {
                self.stats.url_rejected += 1;
                continue;
            }
            if let Some(allowed) = &self.config.allowed_hosts {
                if !allowed.contains(link_host) {
                    continue;
                }
            }
            if self.hosts.is_bad(link_host) {
                continue;
            }
            if !self.dedup.mark_url(url) {
                continue; // already queued or visited
            }
            // Depth-first learning gives deeper URLs higher priority;
            // best-first harvesting orders by confidence. (Link rows are
            // emitted by the pipeline's load stage, independent of these
            // enqueue filters.)
            let priority = match self.config.strategy {
                CrawlStrategy::DepthFirst => child_depth as f32 * 10.0 + base_priority,
                CrawlStrategy::BestFirst => base_priority,
            };
            // Authority blend (config-gated, default off):
            // α·content_priority + β·host_authority(link host). With
            // α = 1, β = 0 this is the identity on finite priorities.
            let priority = match &self.authority {
                Some(auth) => auth.blend(priority, link_host),
                None => priority,
            };
            self.frontier.push(QueueEntry {
                url: url.clone(),
                priority,
                depth: child_depth,
                tunnel,
                src_topic,
                src_page: page_id,
                anchor_terms: link.anchor_terms.clone(),
                redirects: 0,
                attempt: 0,
            });
            self.telemetry.frontier_push.inc();
        }
        self.stats.queue_overflow = self.frontier.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PageContext;
    use bingo_textproc::AnalyzedDocument;
    use bingo_webworld::gen::WorldConfig;

    /// Accept everything into topic 0 with constant confidence.
    fn accept_all() -> impl FnMut(&AnalyzedDocument, &PageContext) -> Judgment {
        |_doc, _ctx| Judgment {
            topic: Some(0),
            confidence: 1.0,
        }
    }

    /// Reject everything.
    fn reject_all() -> impl FnMut(&AnalyzedDocument, &PageContext) -> Judgment {
        |_doc, _ctx| Judgment::reject(-1.0)
    }

    fn setup(seed: u64) -> (Crawler, Vocabulary) {
        let world = Arc::new(WorldConfig::small_test(seed).build());
        let config = CrawlConfig {
            max_depth: 0,
            ..CrawlConfig::default()
        };
        let crawler = Crawler::new(world, config, DocumentStore::new());
        (crawler, Vocabulary::new())
    }

    /// Best-first config with the authority blend on and a short
    /// recompute cadence so small test crawls exercise it.
    fn authority_config(alpha: f32, beta: f32) -> CrawlConfig {
        CrawlConfig {
            max_depth: 0,
            strategy: CrawlStrategy::BestFirst,
            authority: crate::authority::AuthorityConfig {
                enabled: true,
                alpha,
                beta,
                recompute_every_batches: 4,
                ..crate::authority::AuthorityConfig::default()
            },
            ..CrawlConfig::default()
        }
    }

    /// Accept into topic 0 with document-dependent confidence, so
    /// best-first ordering actually discriminates.
    fn varying_confidence() -> impl FnMut(&AnalyzedDocument, &PageContext) -> Judgment {
        |doc, _ctx| Judgment {
            topic: Some(0),
            confidence: 0.1 + (doc.links.len() % 8) as f32 / 8.0,
        }
    }

    /// The per-document fetch order of a finished crawl: (fetched_at,
    /// id), in virtual-time order. Byte-equal sequences mean the two
    /// crawls popped the frontier in the same order.
    fn fetch_order(c: &Crawler) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = c
            .store()
            .all_documents()
            .iter()
            .map(|d| (d.fetched_at, d.id))
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn authority_blend_feeds_graph_and_changes_ordering() {
        let world = Arc::new(WorldConfig::small_test(57).build());
        let run = |config: CrawlConfig| {
            let mut c = Crawler::new(world.clone(), config, DocumentStore::new());
            c.add_seed(&world.url_of(1), Some(0));
            let mut judge = varying_confidence();
            let mut vocab = Vocabulary::new();
            c.run_until(u64::MAX, &mut judge, &mut vocab);
            c
        };
        let plain = run(CrawlConfig {
            max_depth: 0,
            strategy: CrawlStrategy::BestFirst,
            ..CrawlConfig::default()
        });
        let blended = run(authority_config(0.6, 0.4));

        // The tee observed the harvest and recomputed on cadence.
        let auth = blended.authority().expect("authority enabled");
        assert!(plain.authority().is_none());
        assert!(
            auth.host_count() > 3,
            "graph too small: {}",
            auth.host_count()
        );
        assert!(auth.edge_count() > 0);
        assert!(auth.recomputes() > 0, "cadence never fired");
        let snap = blended.telemetry().registry.snapshot();
        assert!(snap.gauges["crawl.graph.hosts"] > 3);
        assert!(snap.counters["crawl.graph.links"] > 0);
        assert!(snap.counters["crawl.graph.recomputes"] > 0);

        // β > 0 reorders the frontier relative to the pure-content run
        // (same harvest set in a fault-free world, different order).
        assert_ne!(
            fetch_order(&plain),
            fetch_order(&blended),
            "blend had no effect on frontier ordering"
        );
    }

    #[test]
    fn authority_identity_blend_is_bit_identical_to_disabled() {
        let world = Arc::new(WorldConfig::small_test(58).build());
        let run = |config: CrawlConfig| {
            let mut c = Crawler::new(world.clone(), config, DocumentStore::new());
            c.add_seed(&world.url_of(1), Some(0));
            let mut judge = varying_confidence();
            let mut vocab = Vocabulary::new();
            c.run_until(u64::MAX, &mut judge, &mut vocab);
            c
        };
        let disabled = run(CrawlConfig {
            max_depth: 0,
            strategy: CrawlStrategy::BestFirst,
            ..CrawlConfig::default()
        });
        // α = 1, β = 0: the blend is the identity on every finite
        // priority, so the whole crawl must replay identically even
        // though the graph machinery runs.
        let identity = run(authority_config(1.0, 0.0));
        assert_eq!(fetch_order(&disabled), fetch_order(&identity));
        assert_eq!(
            serde_json::to_string(disabled.stats()).unwrap(),
            serde_json::to_string(identity.stats()).unwrap()
        );
    }

    #[test]
    fn authority_checkpoint_resume_replays_identical_orderings() {
        let world = Arc::new(WorldConfig::small_test(59).build());
        let config = authority_config(0.6, 0.4);
        let mut crawler = Crawler::new(world.clone(), config.clone(), DocumentStore::new());
        crawler.add_seed(&world.url_of(1), Some(0));
        let mut judge = varying_confidence();
        let mut vocab = Vocabulary::new();
        crawler.run_until(4_000, &mut judge, &mut vocab);

        let cp = crawler.checkpoint();
        assert!(
            cp.host_graph.is_some(),
            "enabled blend must checkpoint the graph"
        );
        // Checkpointing is a pure read and includes the graph.
        assert_eq!(
            serde_json::to_string(&cp).unwrap(),
            serde_json::to_string(&crawler.checkpoint()).unwrap()
        );

        // Two replicas restored from the same checkpoint (deep store
        // copies) must finish the crawl byte-identically: same fetch
        // order, same stats, same final checkpoint — including the
        // host-graph state driving the blend.
        let replica = || {
            let mut buf = Vec::new();
            bingo_store::persist::write_snapshot(crawler.store(), &mut buf).unwrap();
            let store_copy = bingo_store::persist::read_snapshot(&buf[..]).unwrap();
            let mut r = Crawler::new(world.clone(), config.clone(), store_copy);
            r.restore_checkpoint(crawler.checkpoint());
            r
        };
        let (mut r1, mut r2) = (replica(), replica());
        let auth1 = r1.authority().expect("replica has authority").clone();
        assert_eq!(
            auth1.host_count(),
            crawler.authority().unwrap().host_count(),
            "restore must rebuild the graph"
        );
        let mut judge1 = varying_confidence();
        let mut judge2 = varying_confidence();
        let mut vocab1 = vocab.clone();
        let mut vocab2 = vocab.clone();
        let s1 = r1.run_until(u64::MAX, &mut judge1, &mut vocab1);
        let s2 = r2.run_until(u64::MAX, &mut judge2, &mut vocab2);
        assert_eq!(s1, s2);
        assert_eq!(
            fetch_order(&r1),
            fetch_order(&r2),
            "resumed crawls must pop the frontier in the same order"
        );
        assert_eq!(
            serde_json::to_string(&r1.checkpoint()).unwrap(),
            serde_json::to_string(&r2.checkpoint()).unwrap(),
            "final states (frontier + host graph) must be byte-identical"
        );

        // And the resumed harvest matches the uninterrupted original.
        // (Set equality, not timing: the DNS cache is deliberately not
        // checkpointed, so the resumed run re-resolves and fetch
        // timestamps shift by the cache-miss latency.)
        crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        let ids = |c: &Crawler| {
            let mut v: Vec<u64> = c.store().all_documents().iter().map(|d| d.id).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(
            ids(&crawler),
            ids(&r1),
            "resume must reach the original's harvest"
        );
    }

    #[test]
    fn crawl_explores_and_stores() {
        let (mut crawler, mut vocab) = setup(31);
        let seed_url = crawler.world().url_of(1);
        crawler.add_seed(&seed_url, Some(0));
        let mut judge = accept_all();
        let stored = crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        let stats = crawler.stats().clone();
        assert!(stored > 50, "only {stored} stored");
        assert_eq!(stats.stored_pages, stored);
        assert!(stats.extracted_links > stats.stored_pages);
        assert!(stats.visited_hosts > 3);
        assert!(stats.elapsed_ms > 0);
        assert_eq!(stats.positively_classified, stored);
        assert_eq!(crawler.store().document_count() as u64, stored);
    }

    #[test]
    fn rejection_limits_spread_via_tunnelling() {
        let (mut crawler_r, mut vocab_r) = setup(31);
        let seed_url = crawler_r.world().url_of(1);
        crawler_r.add_seed(&seed_url, Some(0));
        let mut reject = reject_all();
        let stored_rejecting = crawler_r.run_until(u64::MAX, &mut reject, &mut vocab_r);

        let (mut crawler_a, mut vocab_a) = setup(31);
        crawler_a.add_seed(&seed_url, Some(0));
        let mut accept = accept_all();
        let stored_accepting = crawler_a.run_until(u64::MAX, &mut accept, &mut vocab_a);

        // With everything rejected, only tunnelling (≤2 steps) spreads the
        // crawl, so far fewer pages are reached.
        assert!(
            stored_rejecting < stored_accepting / 2,
            "tunnelling bound violated: rejecting={stored_rejecting} accepting={stored_accepting}"
        );
        assert!(
            stored_rejecting > 0,
            "tunnelling must still pass welcome pages"
        );
    }

    #[test]
    fn domain_restriction_confines_crawl() {
        let world = Arc::new(WorldConfig::small_test(31).build());
        let seed_url = world.url_of(1);
        let seed_host = bingo_webworld::fetch::host_of_url(&seed_url)
            .unwrap()
            .to_string();
        let config = CrawlConfig {
            max_depth: 0,
            allowed_hosts: Some([seed_host.clone()].into_iter().collect()),
            ..CrawlConfig::default()
        };
        let mut crawler = Crawler::new(world, config, DocumentStore::new());
        crawler.add_seed(&seed_url, Some(0));
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        crawler.store().for_each_document(|row| {
            let h = bingo_webworld::fetch::host_of_url(&row.url).unwrap();
            assert_eq!(h, seed_host, "crawled outside allowed domain: {}", row.url);
        });
    }

    #[test]
    fn locked_hosts_never_visited() {
        let world = Arc::new(WorldConfig::small_test(31).build());
        let locked = world.host(0).name.clone();
        let seed_url = world.url_of(1);
        let config = CrawlConfig {
            max_depth: 0,
            locked_hosts: [locked.clone()].into_iter().collect(),
            ..CrawlConfig::default()
        };
        let mut crawler = Crawler::new(world, config, DocumentStore::new());
        crawler.add_seed(&seed_url, Some(0));
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        crawler.store().for_each_document(|row| {
            assert_ne!(
                bingo_webworld::fetch::host_of_url(&row.url).unwrap(),
                locked
            );
        });
    }

    #[test]
    fn duplicates_are_dismissed() {
        let (mut crawler, mut vocab) = setup(33);
        let seed_url = crawler.world().url_of(1);
        crawler.add_seed(&seed_url, Some(0));
        let mut judge = accept_all();
        crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        // Every stored page id is unique (aliases collapsed).
        let docs = crawler.store().all_documents();
        let ids: std::collections::HashSet<u64> = docs.iter().map(|d| d.id).collect();
        assert_eq!(ids.len(), docs.len());
        assert!(crawler.stats().duplicates > 0, "aliases should be caught");
    }

    #[test]
    fn media_filtered_and_errors_survived() {
        let (mut crawler, mut vocab) = setup(34);
        let seed_url = crawler.world().url_of(1);
        crawler.add_seed(&seed_url, Some(0));
        let mut judge = accept_all();
        crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        let stats = crawler.stats();
        assert!(stats.mime_rejected > 0, "video links must be filtered");
        assert!(stats.fetch_errors > 0, "dead/flaky hosts must show up");
        assert!(stats.url_rejected > 0, "trap URLs must be rejected");
        // No stored video documents.
        crawler.store().for_each_document(|row| {
            assert_ne!(row.mime, bingo_textproc::MimeType::Video);
        });
    }

    #[test]
    fn depth_limit_respected() {
        let world = Arc::new(WorldConfig::small_test(31).build());
        let seed_url = world.url_of(1);
        let config = CrawlConfig {
            max_depth: 2,
            ..CrawlConfig::default()
        };
        let mut crawler = Crawler::new(world, config, DocumentStore::new());
        crawler.add_seed(&seed_url, Some(0));
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        assert!(crawler.stats().max_depth <= 2);
        crawler
            .store()
            .for_each_document(|row| assert!(row.depth <= 2));
    }

    #[test]
    fn deterministic_crawl() {
        let run = || {
            let (mut crawler, mut vocab) = setup(35);
            let seed_url = crawler.world().url_of(1);
            crawler.add_seed(&seed_url, Some(0));
            let mut judge = accept_all();
            crawler.run_until(1_000_000, &mut judge, &mut vocab);
            (
                crawler.stats().clone().stored_pages,
                crawler.stats().visited_urls,
                crawler.clock_ms(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn time_budget_halts_crawl() {
        let (mut crawler, mut vocab) = setup(36);
        let seed_url = crawler.world().url_of(1);
        crawler.add_seed(&seed_url, Some(0));
        let mut judge = accept_all();
        crawler.run_until(500, &mut judge, &mut vocab);
        let early = crawler.stats().stored_pages;
        crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        let late = crawler.stats().stored_pages;
        assert!(early < late, "crawl must be resumable after a budget stop");
    }

    #[test]
    fn per_host_politeness_serializes_single_host_crawls() {
        // Crawl restricted to one host: with 1 connection slot the crawl
        // must take longer (virtual time) than with 8 slots, because
        // fetches serialize.
        let elapsed_with = |conns: usize| {
            let world = Arc::new(WorldConfig::small_test(31).build());
            let seed_url = world.url_of(1);
            let host = bingo_webworld::fetch::host_of_url(&seed_url)
                .unwrap()
                .to_string();
            let config = CrawlConfig {
                max_depth: 0,
                per_host_connections: conns,
                allowed_hosts: Some([host].into_iter().collect()),
                ..CrawlConfig::default()
            };
            let mut crawler = Crawler::new(world, config, DocumentStore::new());
            crawler.add_seed(&seed_url, Some(0));
            let mut judge = accept_all();
            let mut vocab = Vocabulary::new();
            crawler.run_until(u64::MAX, &mut judge, &mut vocab);
            (crawler.stats().stored_pages, crawler.stats().elapsed_ms)
        };
        let (stored_1, time_1) = elapsed_with(1);
        let (stored_8, time_8) = elapsed_with(8);
        assert_eq!(stored_1, stored_8, "same pages crawled either way");
        assert!(
            time_1 > time_8,
            "1 connection must be slower: {time_1} vs {time_8}"
        );
    }

    #[test]
    fn resume_from_store_never_refetches() {
        // First session: crawl with a budget, snapshot the store.
        let world = Arc::new(WorldConfig::small_test(44).build());
        let seed_url = world.url_of(1);
        let store = DocumentStore::new();
        let mut crawler = Crawler::new(
            world.clone(),
            CrawlConfig {
                max_depth: 0,
                ..CrawlConfig::default()
            },
            store.clone(),
        );
        crawler.add_seed(&seed_url, Some(0));
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        crawler.run_until(3_000, &mut judge, &mut vocab);
        let first_ids: std::collections::HashSet<u64> =
            store.all_documents().iter().map(|d| d.id).collect();
        assert!(!first_ids.is_empty());

        // Second session: fresh crawler over the same store, resumed.
        let mut resumed = Crawler::new(
            world.clone(),
            CrawlConfig {
                max_depth: 0,
                ..CrawlConfig::default()
            },
            store.clone(),
        );
        resumed.resume_from_store();
        assert_eq!(resumed.stats().stored_pages, first_ids.len() as u64);
        // Seeding the same URLs again is a no-op (already marked)...
        resumed.add_seed(&seed_url, Some(0));
        assert_eq!(resumed.frontier_len(), 0, "seed was refetched");
        // ...but seeding an uncrawled page continues the crawl without
        // duplicate-key errors.
        let fresh = (0..world.page_count() as u64)
            .find(|id| {
                !first_ids.contains(id)
                    && world.page(*id).redirect_to.is_none()
                    && world.page(*id).size_hint.is_none()
                    && world.host(world.page(*id).host).behavior
                        == bingo_webworld::HostBehavior::Normal
            })
            .unwrap();
        resumed.add_seed(&world.url_of(fresh), Some(0));
        let mut judge = accept_all();
        resumed.run_until(u64::MAX, &mut judge, &mut vocab);
        assert!(resumed.stats().stored_pages as usize > first_ids.len());
        // "already stored" duplicates may only come from alias pages, not
        // from re-walking the first session's URLs.
        let all_ids: std::collections::HashSet<u64> =
            store.all_documents().iter().map(|d| d.id).collect();
        assert!(all_ids.is_superset(&first_ids));
    }

    #[test]
    fn chaos_crawl_survives_and_exercises_breakers() {
        // A chaos world injects 5xx bursts, outages, slow drips,
        // truncated bodies, DNS flaps and redirect loops; the crawl must
        // still harvest a useful fraction and the new machinery must
        // actually fire.
        let world = Arc::new(bingo_webworld::gen::WorldConfig::chaos(41).build());
        assert!(!world.faults().is_empty(), "chaos preset installs faults");
        let config = CrawlConfig {
            max_depth: 0,
            ..CrawlConfig::default()
        };
        let mut crawler = Crawler::new(world.clone(), config, DocumentStore::new());
        crawler.add_seed(&world.url_of(1), Some(0));
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        let stored = crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        let stats = crawler.stats();
        assert!(stored > 20, "chaos crawl collapsed: {stored} stored");
        assert!(stats.retries > 0, "transient faults must trigger retries");
        assert!(stats.backoff_wait_ms > 0, "retries must wait");
        assert!(
            stats.breaker_opened > 0,
            "fault bursts must trip breakers: {stats:?}"
        );
        assert!(
            stats.breaker_probes > 0,
            "open breakers must issue probes: {stats:?}"
        );
    }

    #[test]
    fn truncated_bodies_are_retried_and_counted() {
        // Deterministic corruption: every body on the seed's host is
        // truncated for the first 10 virtual seconds. The crawler must
        // count the waste, retry with backoff, and eventually (after the
        // window) harvest the host's pages anyway.
        let mut world = WorldConfig::small_test(31).build();
        let host_id = world.page(1).host;
        let mut plan = bingo_webworld::FaultPlan::empty();
        plan.insert_window(
            host_id,
            bingo_webworld::FaultWindow {
                start_ms: 0,
                end_ms: 10_000,
                kind: bingo_webworld::FaultKind::Truncate { keep_permille: 300 },
            },
        );
        world.install_faults(plan);
        let seeds: Vec<u64> = (0..world.page_count() as u64)
            .filter(|&id| {
                world.page(id).host == host_id
                    && world.page(id).redirect_to.is_none()
                    && world.page(id).size_hint.is_none()
            })
            .take(8)
            .collect();
        let world = Arc::new(world);
        let mut crawler = Crawler::new(
            world.clone(),
            CrawlConfig {
                max_depth: 0,
                // Generous recovery budget: the window outlasts several
                // breaker cycles.
                breaker: crate::hosts::BreakerConfig {
                    max_open_cycles: 10,
                    ..Default::default()
                },
                ..CrawlConfig::default()
            },
            DocumentStore::new(),
        );
        for &id in &seeds {
            crawler.add_seed(&world.url_of(id), Some(0));
        }
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        let stored = crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        let stats = crawler.stats();
        assert!(stats.truncated_fetches > 0, "truncation unseen: {stats:?}");
        assert!(stats.wasted_bytes > 0, "wasted bytes uncounted: {stats:?}");
        assert!(stats.retries > 0, "truncated bodies must be retried");
        assert!(stored > 0, "crawl must survive the corruption window");
    }

    #[test]
    fn breaker_recovers_hosts_the_paper_would_abandon() {
        // Deterministic outage: the seed's host is down for the first 3
        // virtual seconds. The paper's escalation would tag it bad after
        // 3 failed retrials and lose it forever; the breaker probes it
        // after backoff and recovers the host's harvest.
        let mut world = WorldConfig::small_test(31).build();
        let host_id = world.page(1).host;
        let mut plan = bingo_webworld::FaultPlan::empty();
        plan.insert_window(
            host_id,
            bingo_webworld::FaultWindow {
                start_ms: 0,
                end_ms: 12_000,
                kind: bingo_webworld::FaultKind::Outage,
            },
        );
        world.install_faults(plan);
        // Seed several pages of the faulty host so the breaker gets
        // enough traffic to trip, probe and close.
        let seeds: Vec<u64> = (0..world.page_count() as u64)
            .filter(|&id| {
                world.page(id).host == host_id
                    && world.page(id).redirect_to.is_none()
                    && world.page(id).size_hint.is_none()
            })
            .take(8)
            .collect();
        assert!(seeds.len() >= 4, "need several pages on the seed host");
        let world = Arc::new(world);
        let mut crawler = Crawler::new(
            world.clone(),
            CrawlConfig {
                max_depth: 0,
                breaker: crate::hosts::BreakerConfig {
                    max_open_cycles: 10,
                    ..Default::default()
                },
                ..CrawlConfig::default()
            },
            DocumentStore::new(),
        );
        for &id in &seeds {
            crawler.add_seed(&world.url_of(id), Some(0));
        }
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        let stored = crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        let stats = crawler.stats();
        assert!(stats.breaker_opened > 0, "outage must trip: {stats:?}");
        assert!(stats.breaker_probes > 0, "no probe issued: {stats:?}");
        assert!(
            stats.breaker_closed > 0,
            "no breaker ever recovered: {stats:?}"
        );
        assert!(stored > 0, "crawl must survive the outage");
        assert!(
            crawler
                .store()
                .all_documents()
                .iter()
                .any(|d| d.host == host_id),
            "recovered host must contribute to the harvest"
        );
    }

    #[test]
    fn checkpoint_round_trip_preserves_crawl_state() {
        let (mut crawler, mut vocab) = setup(38);
        let seed_url = crawler.world().url_of(1);
        crawler.add_seed(&seed_url, Some(0));
        let mut judge = accept_all();
        crawler.run_until(5_000, &mut judge, &mut vocab);
        let cp = crawler.checkpoint();
        // Checkpointing is a pure read: doing it twice gives identical
        // records.
        assert_eq!(
            serde_json::to_string(&cp).unwrap(),
            serde_json::to_string(&crawler.checkpoint()).unwrap()
        );
        // Two replicas restored from the same checkpoint (each with a
        // deep copy of the store — DocumentStore::clone shares state)
        // must continue *byte-identically*.
        let replica = || {
            let mut buf = Vec::new();
            bingo_store::persist::write_snapshot(crawler.store(), &mut buf).unwrap();
            let store_copy = bingo_store::persist::read_snapshot(&buf[..]).unwrap();
            let mut r = Crawler::new(crawler.world().clone(), crawler.config.clone(), store_copy);
            r.restore_checkpoint(crawler.checkpoint());
            r
        };
        let (mut r1, mut r2) = (replica(), replica());
        assert_eq!(r1.clock_ms(), crawler.clock_ms());
        assert_eq!(r1.frontier_len(), crawler.frontier_len());
        let mut judge2 = accept_all();
        let mut vocab1 = vocab.clone();
        let mut vocab2 = vocab.clone();
        let b1 = r1.run_until(u64::MAX, &mut judge2, &mut vocab1);
        let mut judge3 = accept_all();
        let b2 = r2.run_until(u64::MAX, &mut judge3, &mut vocab2);
        assert_eq!(b1, b2, "same-checkpoint resumes must match");
        assert_eq!(
            serde_json::to_string(r1.stats()).unwrap(),
            serde_json::to_string(r2.stats()).unwrap()
        );
        // The resumed crawl reaches the same harvest as the
        // uninterrupted original (fault-free world: the page set is
        // timing-independent; only the non-checkpointed DNS cache makes
        // operational counters drift).
        let a = crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        assert_eq!(crawler.stats().stored_pages, r1.stats().stored_pages);
        let ids = |c: &Crawler| -> Vec<u64> {
            let mut v: Vec<u64> = c.store().all_documents().iter().map(|d| d.id).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(ids(&crawler), ids(&r1), "harvest sets must match");
        assert_eq!(a, b1, "stored counts after resume must match");
    }

    #[test]
    fn auto_checkpoint_writes_sessions() {
        let dir = std::env::temp_dir().join("bingo-auto-checkpoint-test");
        std::fs::remove_dir_all(&dir).ok();
        let world = Arc::new(WorldConfig::small_test(39).build());
        let config = CrawlConfig {
            max_depth: 0,
            checkpoint_every_docs: 10,
            checkpoint_dir: Some(dir.clone()),
            ..CrawlConfig::default()
        };
        let mut crawler = Crawler::new(world.clone(), config.clone(), DocumentStore::new());
        crawler.add_seed(&world.url_of(1), Some(0));
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        assert!(crawler.stats().checkpoints_written > 0);
        // Sessions are checkpoint generations: a manifest-committed
        // directory holding both files.
        let newest = durable::find_newest_complete(&dir).expect("a complete generation");
        assert!(newest.dir.join("crawler.json").exists());
        assert!(newest.dir.join("store.jsonl").exists());
        // Keep-last-K pruning bounds the session directory.
        let generations = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with("gen-"))
            .count();
        assert!(
            generations <= crawler.config.checkpoint_keep,
            "pruning must bound generations: {generations} kept"
        );
        if crawler.stats().checkpoints_written > crawler.config.checkpoint_keep as u64 {
            let snap = crawler.telemetry().registry.snapshot();
            assert!(
                snap.counters["crawl.checkpoint.pruned"] > 0,
                "pruned generations must be counted"
            );
        }
        // The session loads back into a working crawler.
        let resumed = Crawler::resume_session(world, config, &dir).unwrap();
        assert!(resumed.store().document_count() > 0);
        assert!(resumed.clock_ms() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn legacy_flat_sessions_still_resume() {
        // Sessions written before the generation layout (store.jsonl +
        // crawler.json directly in the directory) must keep loading.
        let dir = std::env::temp_dir().join("bingo-legacy-session-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let world = Arc::new(WorldConfig::small_test(39).build());
        let config = CrawlConfig {
            max_depth: 0,
            ..CrawlConfig::default()
        };
        let mut crawler = Crawler::new(world.clone(), config.clone(), DocumentStore::new());
        crawler.add_seed(&world.url_of(1), Some(0));
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        crawler.run_until(10_000, &mut judge, &mut vocab);
        assert!(crawler.stats().stored_pages > 0);
        bingo_store::persist::save(crawler.store(), dir.join(STORE_FILE)).unwrap();
        crate::checkpoint::save_checkpoint(&crawler.checkpoint(), dir.join(CRAWLER_FILE)).unwrap();
        let resumed = Crawler::resume_session(world, config, &dir).unwrap();
        assert_eq!(
            resumed.store().document_count(),
            crawler.store().document_count()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn redirects_reach_canonical_pages() {
        let (mut crawler, mut vocab) = setup(37);
        let seed_url = crawler.world().url_of(1);
        crawler.add_seed(&seed_url, Some(0));
        let mut judge = accept_all();
        crawler.run_until(u64::MAX, &mut judge, &mut vocab);
        assert!(crawler.stats().redirects > 0, "redirect stubs exist");
    }
}
