//! Crawl checkpoints: the crawler's full mid-crawl state in one
//! serializable record, so a crawl killed at any point (the paper's
//! multi-day harvests make that a certainty, Section 4.2) resumes from
//! the last checkpoint instead of restarting.
//!
//! A checkpoint captures everything [`crate::Crawler`] owns besides the
//! world and the document store: virtual clock, statistics, frontier
//! (including parked backoff entries), duplicate fingerprints, per-host
//! breaker health, simulated thread/connection-slot timelines and the
//! neighbour-term cache. All collection-backed fields are stored as
//! sorted vectors so two checkpoints of identical state are
//! byte-identical.
//!
//! Files are written atomically (temp file + rename) so a kill *during*
//! a checkpoint write never leaves a torn file behind; the previous
//! checkpoint survives.

use crate::dedup::DedupSnapshot;
use crate::frontier::FrontierSnapshot;
use crate::hosts::HostHealth;
use crate::types::CrawlStats;
use bingo_textproc::TermId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Format marker of checkpoint files.
pub const MAGIC: &str = "bingo-checkpoint";
/// Current checkpoint format version.
pub const VERSION: u32 = 1;

/// File name of the crawler checkpoint inside a session directory.
pub const CRAWLER_FILE: &str = "crawler.json";
/// File name of the store snapshot inside a session directory.
pub const STORE_FILE: &str = "store.jsonl";

/// The crawler's complete mid-crawl state (everything except the world
/// and the document store, which is snapshotted separately).
///
/// Serialization is hand-written (not derived) for one reason: the
/// `host_graph` field must be *omitted entirely* when `None` so that
/// authority-free crawls produce byte-identical checkpoint files to
/// builds that predate the field, and files without it still load.
#[derive(Debug, Clone)]
pub struct CrawlCheckpoint {
    /// Format marker ([`MAGIC`]).
    pub magic: String,
    /// Format version ([`VERSION`]).
    pub version: u32,
    /// Virtual clock at checkpoint time.
    pub clock_ms: u64,
    /// Crawl counters so far.
    pub stats: CrawlStats,
    /// Frontier queues, including parked backoff entries.
    pub frontier: FrontierSnapshot,
    /// Duplicate-fingerprint sets.
    pub dedup: DedupSnapshot,
    /// Per-host breaker health, sorted by hostname.
    pub host_health: Vec<(String, HostHealth)>,
    /// Hosts successfully visited, sorted.
    pub visited_hosts: Vec<String>,
    /// Simulated thread pool: (free-at, thread id), sorted.
    pub threads: Vec<(u64, usize)>,
    /// Per-host connection slots: (host, free-at per slot), sorted.
    pub host_slots: Vec<(String, Vec<u64>)>,
    /// Neighbour-term cache: (page id, top terms), sorted by page.
    pub page_top_terms: Vec<(u64, Vec<TermId>)>,
    /// Host-graph authority state; present only when the authority
    /// blend is enabled, and skipped entirely when absent so checkpoint
    /// bytes are unchanged for authority-free crawls.
    pub host_graph: Option<crate::authority::AuthorityCheckpoint>,
}

impl Serialize for CrawlCheckpoint {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("magic".to_string(), self.magic.to_value()),
            ("version".to_string(), self.version.to_value()),
            ("clock_ms".to_string(), self.clock_ms.to_value()),
            ("stats".to_string(), self.stats.to_value()),
            ("frontier".to_string(), self.frontier.to_value()),
            ("dedup".to_string(), self.dedup.to_value()),
            ("host_health".to_string(), self.host_health.to_value()),
            ("visited_hosts".to_string(), self.visited_hosts.to_value()),
            ("threads".to_string(), self.threads.to_value()),
            ("host_slots".to_string(), self.host_slots.to_value()),
            ("page_top_terms".to_string(), self.page_top_terms.to_value()),
        ];
        if let Some(hg) = &self.host_graph {
            fields.push(("host_graph".to_string(), hg.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for CrawlCheckpoint {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn req<T: Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::Error> {
            match v.get(name) {
                Some(x) => T::from_value(x),
                None => Err(serde::Error::custom(format!(
                    "missing field `{name}` in CrawlCheckpoint"
                ))),
            }
        }
        Ok(CrawlCheckpoint {
            magic: req(v, "magic")?,
            version: req(v, "version")?,
            clock_ms: req(v, "clock_ms")?,
            stats: req(v, "stats")?,
            frontier: req(v, "frontier")?,
            dedup: req(v, "dedup")?,
            host_health: req(v, "host_health")?,
            visited_hosts: req(v, "visited_hosts")?,
            threads: req(v, "threads")?,
            host_slots: req(v, "host_slots")?,
            page_top_terms: req(v, "page_top_terms")?,
            host_graph: match v.get("host_graph") {
                Some(x) => Some(Deserialize::from_value(x)?),
                None => None,
            },
        })
    }
}

/// Why a checkpoint could not be written or read back.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure.
    Io(String),
    /// The file exists but is not a valid checkpoint.
    Format(String),
    /// The session's store snapshot failed to save/load.
    Store(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::Format(e) => write!(f, "bad checkpoint: {e}"),
            CheckpointError::Store(e) => write!(f, "session store error: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e.to_string())
    }
}

/// Serialize `cp` to a JSON byte string (the exact bytes
/// [`save_checkpoint`] writes).
pub fn checkpoint_bytes(cp: &CrawlCheckpoint) -> Result<Vec<u8>, CheckpointError> {
    serde_json::to_string(cp)
        .map(String::into_bytes)
        .map_err(|e| CheckpointError::Format(e.to_string()))
}

/// Serialize `cp` to `path` atomically: the bytes land in a sibling
/// temp file first, are fsynced, and replace `path` in one rename.
pub fn save_checkpoint<P: AsRef<Path>>(
    cp: &CrawlCheckpoint,
    path: P,
) -> Result<(), CheckpointError> {
    let json = checkpoint_bytes(cp)?;
    bingo_store::durable::atomic_write(path.as_ref(), &json)?;
    Ok(())
}

/// Read a checkpoint back, validating magic and version.
pub fn load_checkpoint<P: AsRef<Path>>(path: P) -> Result<CrawlCheckpoint, CheckpointError> {
    let bytes = std::fs::read_to_string(path)?;
    let cp: CrawlCheckpoint =
        serde_json::from_str(&bytes).map_err(|e| CheckpointError::Format(e.to_string()))?;
    if cp.magic != MAGIC {
        return Err(CheckpointError::Format(format!("bad magic {:?}", cp.magic)));
    }
    if cp.version != VERSION {
        return Err(CheckpointError::Format(format!(
            "unsupported version {}",
            cp.version
        )));
    }
    Ok(cp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> CrawlCheckpoint {
        CrawlCheckpoint {
            magic: MAGIC.to_string(),
            version: VERSION,
            clock_ms: 123,
            stats: CrawlStats::default(),
            frontier: FrontierSnapshot {
                incoming: vec![Vec::new()],
                outgoing: vec![Vec::new()],
                parked: Vec::new(),
                overflow: 0,
            },
            dedup: DedupSnapshot {
                url_hashes: vec![1, 2],
                ip_path: vec![(1, 2)],
                ip_size: vec![(1, 100)],
            },
            host_health: vec![("h".into(), HostHealth::default())],
            visited_hosts: vec!["h".into()],
            threads: vec![(0, 0), (5, 1)],
            host_slots: vec![("h".into(), vec![0, 7])],
            page_top_terms: vec![(3, vec![TermId(1), TermId(9)])],
            host_graph: None,
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("bingo-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.json");
        let cp = minimal();
        save_checkpoint(&cp, &path).unwrap();
        let loaded = load_checkpoint(&path).unwrap();
        assert_eq!(loaded.clock_ms, 123);
        assert_eq!(loaded.dedup.url_hashes, vec![1, 2]);
        assert_eq!(loaded.threads, vec![(0, 0), (5, 1)]);
        assert_eq!(loaded.page_top_terms, vec![(3, vec![TermId(1), TermId(9)])]);
        // Saving the loaded checkpoint reproduces the same bytes.
        let path2 = dir.join("cp2.json");
        save_checkpoint(&loaded, &path2).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap()
        );
        std::fs::remove_file(path).ok();
        std::fs::remove_file(path2).ok();
    }

    #[test]
    fn rejects_garbage_and_bad_magic() {
        let dir = std::env::temp_dir().join("bingo-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, b"not json").unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Format(_))
        ));
        let mut cp = minimal();
        cp.magic = "nope".into();
        save_checkpoint(&cp, &path).unwrap();
        assert!(matches!(
            load_checkpoint(&path),
            Err(CheckpointError::Format(_))
        ));
        assert!(matches!(
            load_checkpoint(dir.join("missing.json")),
            Err(CheckpointError::Io(_))
        ));
        std::fs::remove_file(path).ok();
    }
}
