//! The crawl frontier (Section 4.2, "crawl queue management").
//!
//! "The queue manager maintains several queues, one (large) incoming and
//! one (small) outgoing queue for each topic, implemented as Red-Black
//! trees. ... URLs are prioritized based on their SVM confidence scores.
//! Incoming URL queues are limited to 25.000 links, outgoing URL queues
//! to 1000 links, to avoid uncontrolled memory usage."
//!
//! `BTreeMap` is Rust's red-black-equivalent ordered tree. Keys order by
//! descending priority with FIFO tie-breaking; when a capacity is hit the
//! *worst* entry is evicted, so the queues degrade gracefully under
//! pressure. URLs move from incoming to outgoing lazily — the outgoing
//! queue is refilled when it runs low, which in the paper is the moment
//! DNS prefetching is triggered for the promising candidates.
//!
//! # Spilling (memory-bounded crawls)
//!
//! With a [`SpillConfig`], each incoming queue keeps only a bounded *hot
//! set* of entry payloads in memory; the cold tail is appended to a
//! per-slot spill file and read back by offset when popped. The ordered
//! key index stays fully in memory (a key is ~40 bytes vs. hundreds for
//! a URL + anchor terms payload), so pop order, eviction and capacity
//! semantics are **bit-identical** to the unspilled frontier — spilling
//! changes where bytes live, never what pops next. Spill files are pure
//! scratch: checkpoints materialize every entry into the snapshot, so
//! crash recovery never reads a spill file, and stale files from a
//! killed run are deleted when the next frontier claims the directory.

use crate::types::QueuePriority;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;

/// One queued crawl task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueEntry {
    /// Target URL.
    pub url: String,
    /// Queue priority (SVM confidence, possibly tunnel-decayed).
    pub priority: f32,
    /// Crawl depth this URL will be fetched at.
    pub depth: u32,
    /// Tunnelling steps taken through rejected pages so far.
    pub tunnel: u32,
    /// Topic of the parent document that enqueued the URL.
    pub src_topic: Option<u32>,
    /// Page id of the enqueuing parent (0 = seed).
    pub src_page: u64,
    /// Anchor terms of the enqueuing link.
    pub anchor_terms: Vec<bingo_textproc::TermId>,
    /// Redirect hops already taken for this URL.
    pub redirects: u32,
    /// Fetch attempt number (for retry bookkeeping).
    pub attempt: u32,
}

impl QueueEntry {
    /// A seed entry at depth 0 with maximal priority.
    pub fn seed(url: &str, topic: Option<u32>) -> Self {
        QueueEntry {
            url: url.to_string(),
            priority: f32::MAX,
            depth: 0,
            tunnel: 0,
            src_topic: topic,
            src_page: 0,
            anchor_terms: Vec::new(),
            redirects: 0,
            attempt: 0,
        }
    }
}

/// Spill configuration: where incoming queues park their cold tail and
/// how many entry payloads per queue stay resident.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory holding the per-slot spill files (created if missing;
    /// stale spill files from earlier runs are deleted).
    pub dir: PathBuf,
    /// Maximum in-memory entry payloads per incoming queue.
    pub hot_cap: usize,
}

/// Where one queued entry's payload lives.
#[derive(Debug)]
enum Slot {
    /// Payload resident in memory.
    Hot(QueueEntry),
    /// Payload appended to the spill file at `offset..offset + len`.
    Spilled { offset: u64, len: u32 },
}

/// Disk backing of one spilling queue.
#[derive(Debug)]
struct SpillState {
    file: File,
    /// Append cursor (the file is pure scratch — popped and evicted
    /// entries leave garbage behind; the file is truncated whenever the
    /// last spilled entry is consumed).
    write_off: u64,
    hot_cap: usize,
    /// Keys currently held as [`Slot::Hot`], for O(log n) demotion.
    hot_keys: BTreeSet<(QueuePriority, u64)>,
    /// Live (non-garbage) spilled entries.
    spilled: usize,
}

impl SpillState {
    fn write_entry(&mut self, entry: &QueueEntry) -> Slot {
        let mut buf = Vec::new();
        serde_json::to_writer(&mut buf, entry).expect("queue entry serializes");
        let slot = Slot::Spilled {
            offset: self.write_off,
            len: buf.len() as u32,
        };
        buf.push(b'\n');
        self.file
            .write_all_at(&buf, self.write_off)
            .expect("frontier spill write failed");
        self.write_off += buf.len() as u64;
        self.spilled += 1;
        slot
    }

    fn read_entry(&self, offset: u64, len: u32) -> QueueEntry {
        let mut buf = vec![0u8; len as usize];
        self.file
            .read_exact_at(&mut buf, offset)
            .expect("frontier spill read failed");
        let text = std::str::from_utf8(&buf).expect("frontier spill utf8");
        serde_json::from_str(text).expect("frontier spill entry parses")
    }
}

/// Ordered queue keyed by descending priority, FIFO within equal
/// priorities, with worst-entry eviction at capacity. With a spill
/// state attached, only the best `hot_cap` payloads stay in memory.
#[derive(Debug, Default)]
struct PriorityQueue {
    entries: BTreeMap<(QueuePriority, u64), Slot>,
    seq: u64,
    spill: Option<SpillState>,
}

impl PriorityQueue {
    fn spilling(dir: &std::path::Path, slot: usize, hot_cap: usize) -> Self {
        let path = dir.join(format!("slot-{slot}.spill"));
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .expect("frontier spill file");
        PriorityQueue {
            entries: BTreeMap::new(),
            seq: 0,
            spill: Some(SpillState {
                file,
                write_off: 0,
                hot_cap: hot_cap.max(1),
                hot_keys: BTreeSet::new(),
                spilled: 0,
            }),
        }
    }

    fn push(&mut self, entry: QueueEntry, cap: usize) -> bool {
        let key = (QueuePriority::new(entry.priority), self.seq);
        self.seq += 1;
        self.entries.insert(key, Slot::Hot(entry));
        if let Some(st) = &mut self.spill {
            st.hot_keys.insert(key);
            // Demote the worst hot payload once the hot set overflows —
            // the ordered index is untouched, so pop order is unchanged.
            if st.hot_keys.len() > st.hot_cap {
                let worst_hot = *st.hot_keys.iter().next_back().expect("non-empty");
                st.hot_keys.remove(&worst_hot);
                let slot = self.entries.get_mut(&worst_hot).expect("indexed");
                if let Slot::Hot(e) = slot {
                    let spilled = st.write_entry(e);
                    *slot = spilled;
                }
            }
        }
        if self.entries.len() > cap {
            // Evict the worst (largest key: lowest priority, newest).
            let worst = *self.entries.keys().next_back().expect("non-empty");
            match self.entries.remove(&worst) {
                Some(Slot::Hot(_)) => {
                    if let Some(st) = &mut self.spill {
                        st.hot_keys.remove(&worst);
                    }
                }
                Some(Slot::Spilled { .. }) => {
                    let st = self.spill.as_mut().expect("spilled slot implies spill");
                    st.spilled -= 1; // bytes become garbage in the file
                }
                None => unreachable!(),
            }
            self.maybe_reclaim();
            return false;
        }
        true
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        let best = *self.entries.keys().next()?;
        let entry = match self.entries.remove(&best)? {
            Slot::Hot(e) => {
                if let Some(st) = &mut self.spill {
                    st.hot_keys.remove(&best);
                }
                e
            }
            Slot::Spilled { offset, len } => {
                let st = self.spill.as_mut().expect("spilled slot implies spill");
                st.spilled -= 1;
                st.read_entry(offset, len)
            }
        };
        self.maybe_reclaim();
        Some(entry)
    }

    /// Truncate the spill file once no live entry references it, so a
    /// long crawl's scratch space is bounded by frontier churn, not
    /// crawl length.
    fn maybe_reclaim(&mut self) {
        if let Some(st) = &mut self.spill {
            if st.spilled == 0 && st.write_off > 0 {
                st.file.set_len(0).expect("frontier spill truncate");
                st.write_off = 0;
            }
        }
    }

    fn peek_priority(&self) -> Option<f32> {
        self.entries.keys().next().map(|(p, _)| p.as_f32())
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    /// Entries whose payload currently lives on disk.
    fn spilled_len(&self) -> usize {
        self.spill.as_ref().map_or(0, |st| st.spilled)
    }

    /// Materialize an entry for snapshotting without consuming it.
    fn materialize(&self, slot: &Slot) -> QueueEntry {
        match slot {
            Slot::Hot(e) => e.clone(),
            Slot::Spilled { offset, len } => self
                .spill
                .as_ref()
                .expect("spilled slot implies spill")
                .read_entry(*offset, *len),
        }
    }
}

/// Per-topic incoming/outgoing queues. Topic `None` (tunnelled links from
/// pages not yet attributable to a topic) shares a dedicated queue slot.
#[derive(Debug)]
pub struct Frontier {
    incoming: Vec<PriorityQueue>,
    outgoing: Vec<PriorityQueue>,
    incoming_cap: usize,
    outgoing_cap: usize,
    /// URLs waiting out a retry/breaker backoff, keyed by
    /// `(release_ms, seq)` so the earliest release pops first.
    parked: BTreeMap<(u64, u64), QueueEntry>,
    park_seq: u64,
    /// Links dropped due to capacity.
    pub overflow: u64,
}

impl Frontier {
    /// Frontier over `topics` topic queues plus the shared untopiced slot.
    pub fn new(topics: usize, incoming_cap: usize, outgoing_cap: usize) -> Self {
        Self::with_spill(topics, incoming_cap, outgoing_cap, None)
    }

    /// Like [`Frontier::new`], but with the incoming queues' cold tail
    /// spilled to per-slot files when a [`SpillConfig`] is given. The
    /// outgoing queues (≤1000 entries) and the parked set stay resident.
    /// Stale spill files in the directory are deleted first.
    pub fn with_spill(
        topics: usize,
        incoming_cap: usize,
        outgoing_cap: usize,
        spill: Option<SpillConfig>,
    ) -> Self {
        let n = topics + 1;
        let incoming = match &spill {
            Some(cfg) => {
                std::fs::create_dir_all(&cfg.dir).expect("frontier spill dir");
                remove_stale_spill_files(&cfg.dir);
                (0..n)
                    .map(|slot| PriorityQueue::spilling(&cfg.dir, slot, cfg.hot_cap))
                    .collect()
            }
            None => (0..n).map(|_| PriorityQueue::default()).collect(),
        };
        Frontier {
            incoming,
            outgoing: (0..n).map(|_| PriorityQueue::default()).collect(),
            incoming_cap,
            outgoing_cap,
            parked: BTreeMap::new(),
            park_seq: 0,
            overflow: 0,
        }
    }

    fn slot(&self, topic: Option<u32>) -> usize {
        match topic {
            Some(t) if (t as usize) < self.incoming.len() - 1 => t as usize,
            _ => self.incoming.len() - 1,
        }
    }

    /// Enqueue into the topic's incoming queue.
    pub fn push(&mut self, entry: QueueEntry) {
        let slot = self.slot(entry.src_topic);
        if !self.incoming[slot].push(entry, self.incoming_cap) {
            self.overflow += 1;
        }
    }

    /// Enqueue directly into the outgoing queue (seeds, retries, hub
    /// boosts after retraining).
    pub fn push_outgoing(&mut self, entry: QueueEntry) {
        let slot = self.slot(entry.src_topic);
        if !self.outgoing[slot].push(entry, self.outgoing_cap) {
            self.overflow += 1;
        }
    }

    /// Take the globally best URL: refill outgoing queues that run low,
    /// then pop the best entry across all outgoing queues.
    pub fn pop(&mut self) -> Option<QueueEntry> {
        // Refill: move the best incoming entries into outgoing when the
        // outgoing side is below a quarter of its capacity. This is the
        // point where the real system starts asynchronous DNS resolution
        // "only for promising crawl candidates".
        for slot in 0..self.outgoing.len() {
            while self.outgoing[slot].len() < (self.outgoing_cap / 4).max(1) {
                match self.incoming[slot].pop() {
                    Some(e) => {
                        self.outgoing[slot].push(e, self.outgoing_cap);
                    }
                    None => break,
                }
            }
        }
        let best_slot = (0..self.outgoing.len())
            .filter_map(|s| self.outgoing[s].peek_priority().map(|p| (s, p)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(s, _)| s)?;
        self.outgoing[best_slot].pop()
    }

    /// Park a URL until virtual time `release_ms` (retry backoff or an
    /// open circuit breaker). Parked entries do not compete for pops
    /// until released.
    pub fn park(&mut self, entry: QueueEntry, release_ms: u64) {
        self.parked.insert((release_ms, self.park_seq), entry);
        self.park_seq += 1;
    }

    /// Move every parked entry whose release time has arrived back into
    /// its outgoing queue. Returns how many were released.
    pub fn release_due(&mut self, now_ms: u64) -> usize {
        let mut released = 0;
        while let Some((&(release_ms, seq), _)) = self.parked.iter().next() {
            if release_ms > now_ms {
                break;
            }
            let entry = self.parked.remove(&(release_ms, seq)).expect("just peeked");
            self.push_outgoing(entry);
            released += 1;
        }
        released
    }

    /// Earliest release time among parked entries.
    pub fn next_release(&self) -> Option<u64> {
        self.parked.keys().next().map(|&(t, _)| t)
    }

    /// Number of parked URLs.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Total queued URLs (including parked ones).
    pub fn len(&self) -> usize {
        self.incoming
            .iter()
            .chain(self.outgoing.iter())
            .map(PriorityQueue::len)
            .sum::<usize>()
            + self.parked.len()
    }

    /// True when no URLs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Queued URLs whose payload currently lives in spill files rather
    /// than memory (0 without a [`SpillConfig`]).
    pub fn spilled_len(&self) -> usize {
        self.incoming.iter().map(PriorityQueue::spilled_len).sum()
    }

    /// Serializable snapshot. Entries are listed in pop order per queue
    /// (priority order), parked entries in release order, so the
    /// snapshot is byte-stable for identical frontiers. Spilled entries
    /// are materialized from disk: a checkpoint is self-contained and
    /// recovery never depends on spill scratch files.
    pub fn snapshot(&self) -> FrontierSnapshot {
        let drain = |q: &PriorityQueue| -> Vec<QueueEntry> {
            q.entries.values().map(|s| q.materialize(s)).collect()
        };
        FrontierSnapshot {
            incoming: self.incoming.iter().map(drain).collect(),
            outgoing: self.outgoing.iter().map(drain).collect(),
            parked: self
                .parked
                .iter()
                .map(|(&(t, _), e)| (t, e.clone()))
                .collect(),
            overflow: self.overflow,
        }
    }

    /// Rebuild a frontier from a snapshot.
    pub fn restore(snap: FrontierSnapshot, incoming_cap: usize, outgoing_cap: usize) -> Self {
        Self::restore_with(snap, incoming_cap, outgoing_cap, None)
    }

    /// Rebuild a frontier from a snapshot, re-spilling the incoming
    /// queues' cold tail when a [`SpillConfig`] is given. Snapshots
    /// are backend-agnostic, so a checkpoint taken by a spilling crawl
    /// restores into a plain frontier and vice versa.
    pub fn restore_with(
        snap: FrontierSnapshot,
        incoming_cap: usize,
        outgoing_cap: usize,
        spill: Option<SpillConfig>,
    ) -> Self {
        let topics = snap.incoming.len().saturating_sub(1);
        let mut f = Self::with_spill(topics, incoming_cap, outgoing_cap, spill);
        for (slot, entries) in snap.incoming.into_iter().enumerate() {
            for e in entries {
                f.incoming[slot].push(e, incoming_cap);
            }
        }
        for (slot, entries) in snap.outgoing.into_iter().enumerate() {
            for e in entries {
                f.outgoing[slot].push(e, outgoing_cap);
            }
        }
        f.overflow = snap.overflow;
        for (release_ms, entry) in snap.parked {
            f.park(entry, release_ms);
        }
        f
    }
}

/// Delete leftover `slot-*.spill` files (scratch from a crashed or
/// superseded run) in `dir`. Spill files are never part of recovery —
/// checkpoints are self-contained — so stale ones are pure garbage.
fn remove_stale_spill_files(dir: &std::path::Path) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.filter_map(|e| e.ok()) {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("slot-") && name.ends_with(".spill") {
            std::fs::remove_file(entry.path()).ok();
        }
    }
}

/// Serialized form of a [`Frontier`] for crawl checkpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontierSnapshot {
    /// Incoming queue contents per slot, in priority order.
    pub incoming: Vec<Vec<QueueEntry>>,
    /// Outgoing queue contents per slot, in priority order.
    pub outgoing: Vec<Vec<QueueEntry>>,
    /// Parked entries as `(release_ms, entry)` in release order.
    pub parked: Vec<(u64, QueueEntry)>,
    /// Overflow counter at snapshot time.
    pub overflow: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(url: &str, priority: f32, topic: Option<u32>) -> QueueEntry {
        QueueEntry {
            url: url.to_string(),
            priority,
            ..QueueEntry::seed(url, topic)
        }
    }

    #[test]
    fn pops_highest_priority_first() {
        let mut f = Frontier::new(2, 100, 10);
        f.push(entry("low", 0.1, Some(0)));
        f.push(entry("high", 0.9, Some(0)));
        f.push(entry("mid", 0.5, Some(0)));
        assert_eq!(f.pop().unwrap().url, "high");
        assert_eq!(f.pop().unwrap().url, "mid");
        assert_eq!(f.pop().unwrap().url, "low");
        assert!(f.pop().is_none());
    }

    #[test]
    fn fifo_within_equal_priority() {
        let mut f = Frontier::new(1, 100, 10);
        f.push(entry("first", 0.5, Some(0)));
        f.push(entry("second", 0.5, Some(0)));
        assert_eq!(f.pop().unwrap().url, "first");
        assert_eq!(f.pop().unwrap().url, "second");
    }

    #[test]
    fn capacity_evicts_worst() {
        let mut f = Frontier::new(1, 3, 2);
        for i in 0..5 {
            f.push(entry(&format!("u{i}"), i as f32 / 10.0, Some(0)));
        }
        assert_eq!(f.overflow, 2);
        // The three best survive: u4, u3, u2.
        let mut got = Vec::new();
        while let Some(e) = f.pop() {
            got.push(e.url);
        }
        assert_eq!(got, vec!["u4", "u3", "u2"]);
    }

    #[test]
    fn pops_best_across_topics() {
        let mut f = Frontier::new(2, 100, 10);
        f.push(entry("t0", 0.3, Some(0)));
        f.push(entry("t1", 0.8, Some(1)));
        f.push(entry("untopiced", 0.5, None));
        assert_eq!(f.pop().unwrap().url, "t1");
        assert_eq!(f.pop().unwrap().url, "untopiced");
        assert_eq!(f.pop().unwrap().url, "t0");
    }

    #[test]
    fn unknown_topic_goes_to_shared_slot() {
        let mut f = Frontier::new(1, 100, 10);
        f.push(entry("weird", 0.5, Some(42)));
        assert_eq!(f.pop().unwrap().url, "weird");
    }

    #[test]
    fn outgoing_refills_from_incoming() {
        let mut f = Frontier::new(1, 1000, 40);
        for i in 0..100 {
            f.push(entry(&format!("u{i}"), (i % 10) as f32, Some(0)));
        }
        assert_eq!(f.len(), 100);
        let first = f.pop().unwrap();
        assert_eq!(first.priority, 9.0);
        assert_eq!(f.len(), 99);
    }

    #[test]
    fn parked_entries_wait_for_release() {
        let mut f = Frontier::new(1, 100, 10);
        f.park(entry("later", 0.9, Some(0)), 500);
        f.park(entry("soon", 0.1, Some(0)), 100);
        assert_eq!(f.len(), 2);
        assert_eq!(f.parked_len(), 2);
        assert!(f.pop().is_none(), "parked URLs are not poppable");
        assert_eq!(f.next_release(), Some(100));
        assert_eq!(f.release_due(99), 0);
        assert_eq!(f.release_due(100), 1);
        assert_eq!(f.pop().unwrap().url, "soon");
        assert_eq!(f.next_release(), Some(500));
        assert_eq!(f.release_due(1000), 1);
        assert_eq!(f.pop().unwrap().url, "later");
        assert!(f.next_release().is_none());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut f = Frontier::new(2, 100, 10);
        f.push(entry("a", 0.3, Some(0)));
        f.push(entry("b", 0.8, Some(1)));
        f.push_outgoing(entry("c", 0.5, None));
        f.park(entry("p", 0.1, Some(0)), 777);
        f.overflow = 3;
        let snap = f.snapshot();
        let mut r = Frontier::restore(snap, 100, 10);
        assert_eq!(r.len(), f.len());
        assert_eq!(r.parked_len(), 1);
        assert_eq!(r.overflow, 3);
        assert_eq!(r.next_release(), Some(777));
        // Pop order is preserved across the round trip.
        let mut orig = Vec::new();
        while let Some(e) = f.pop() {
            orig.push(e.url);
        }
        let mut rest = Vec::new();
        while let Some(e) = r.pop() {
            rest.push(e.url);
        }
        assert_eq!(orig, rest);
    }

    #[test]
    fn seed_has_max_priority() {
        let mut f = Frontier::new(1, 100, 10);
        f.push(entry("normal", 100.0, Some(0)));
        f.push_outgoing(QueueEntry::seed("http://seed/", Some(0)));
        assert_eq!(f.pop().unwrap().url, "http://seed/");
    }

    fn spill_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bingo-frontier-spill-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn spill(tag: &str, hot_cap: usize) -> Option<SpillConfig> {
        Some(SpillConfig {
            dir: spill_dir(tag),
            hot_cap,
        })
    }

    #[test]
    fn spilling_frontier_pops_identically_to_plain() {
        let mut plain = Frontier::new(2, 50, 5);
        let mut spilled = Frontier::with_spill(2, 50, 5, spill("ident", 4));
        // Interleaved pushes and pops across topics with duplicate
        // priorities, evictions (cap 50 exceeded) and parks.
        for i in 0..200u64 {
            let pri = ((i * 37) % 90) as f32 / 100.0;
            let topic = match i % 4 {
                0 => Some(0),
                1 => Some(1),
                2 => None,
                _ => Some(0),
            };
            let e = entry(&format!("u{i}"), pri, topic);
            plain.push(e.clone());
            spilled.push(e);
            if i % 7 == 6 {
                let a = plain.pop().map(|e| e.url);
                let b = spilled.pop().map(|e| e.url);
                assert_eq!(a, b, "pop {i} diverged");
            }
            if i % 31 == 30 {
                let e = entry(&format!("parked{i}"), 0.95, Some(1));
                plain.park(e.clone(), i * 10);
                spilled.park(e, i * 10);
                plain.release_due(i * 10);
                spilled.release_due(i * 10);
            }
        }
        assert_eq!(plain.len(), spilled.len());
        assert_eq!(plain.overflow, spilled.overflow);
        assert!(spilled.spilled_len() > 0, "tail should have spilled");
        assert_eq!(plain.spilled_len(), 0);
        // Drain completely: the whole pop sequence matches.
        loop {
            let a = plain.pop().map(|e| e.url);
            let b = spilled.pop().map(|e| e.url);
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn spill_preserves_per_slot_priority_order_and_payloads() {
        let mut f = Frontier::with_spill(0, 1000, 1, spill("order", 2));
        // One slot, hot cap 2: almost everything spills. Payload fields
        // must survive the disk round trip intact.
        for i in 0..50u64 {
            let mut e = entry(&format!("u{i}"), (i % 10) as f32 / 10.0, None);
            e.depth = i as u32;
            e.anchor_terms = vec![bingo_textproc::TermId(i as u32)];
            f.push(e);
        }
        assert!(f.spilled_len() >= 40);
        let mut last = f32::MAX;
        let mut seen = 0;
        while let Some(e) = f.pop() {
            assert!(e.priority <= last, "priority order violated");
            last = e.priority;
            let i: u64 = e.url.trim_start_matches('u').parse().unwrap();
            assert_eq!(e.depth, i as u32, "payload depth corrupted");
            assert_eq!(e.anchor_terms, vec![bingo_textproc::TermId(i as u32)]);
            seen += 1;
        }
        assert_eq!(seen, 50);
        assert_eq!(f.spilled_len(), 0);
    }

    #[test]
    fn snapshot_of_spilling_frontier_matches_plain_and_restores() {
        let mut plain = Frontier::new(1, 30, 4);
        let mut spilled = Frontier::with_spill(1, 30, 4, spill("snap", 3));
        for i in 0..60u64 {
            let e = entry(&format!("u{i}"), ((i * 13) % 40) as f32 / 40.0, Some(0));
            plain.push(e.clone());
            spilled.push(e);
        }
        let ps = plain.snapshot();
        let ss = spilled.snapshot();
        // Snapshots are backend-agnostic: byte-identical contents.
        let mut a = Vec::new();
        let mut b = Vec::new();
        serde_json::to_writer(&mut a, &ps).unwrap();
        serde_json::to_writer(&mut b, &ss).unwrap();
        assert_eq!(a, b, "snapshot bytes diverged");
        // A spilled snapshot restores into a plain frontier and vice
        // versa, with identical pop sequences.
        let mut from_spill = Frontier::restore(ss, 30, 4);
        let mut to_spill = Frontier::restore_with(ps, 30, 4, spill("snap2", 3));
        loop {
            let x = from_spill.pop().map(|e| e.url);
            let y = to_spill.pop().map(|e| e.url);
            let z = plain.pop().map(|e| e.url);
            assert_eq!(x, z);
            assert_eq!(y, z);
            if z.is_none() {
                break;
            }
        }
    }

    #[test]
    fn spill_file_reclaimed_when_drained_and_stale_files_removed() {
        let dir = spill_dir("reclaim");
        let cfg = Some(SpillConfig {
            dir: dir.clone(),
            hot_cap: 1,
        });
        let mut f = Frontier::with_spill(0, 100, 1, cfg.clone());
        for i in 0..20u64 {
            f.push(entry(&format!("u{i}"), 0.5, None));
        }
        let path = dir.join("slot-0.spill");
        assert!(std::fs::metadata(&path).unwrap().len() > 0);
        while f.pop().is_some() {}
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            0,
            "drained spill file must be truncated"
        );
        // A crashed run's leftovers vanish when a new frontier claims
        // the directory.
        std::fs::write(dir.join("slot-7.spill"), b"stale garbage").unwrap();
        drop(f);
        let f2 = Frontier::with_spill(0, 100, 1, cfg);
        assert!(!dir.join("slot-7.spill").exists(), "stale spill survived");
        assert_eq!(f2.len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
