//! The crawl frontier (Section 4.2, "crawl queue management").
//!
//! "The queue manager maintains several queues, one (large) incoming and
//! one (small) outgoing queue for each topic, implemented as Red-Black
//! trees. ... URLs are prioritized based on their SVM confidence scores.
//! Incoming URL queues are limited to 25.000 links, outgoing URL queues
//! to 1000 links, to avoid uncontrolled memory usage."
//!
//! `BTreeMap` is Rust's red-black-equivalent ordered tree. Keys order by
//! descending priority with FIFO tie-breaking; when a capacity is hit the
//! *worst* entry is evicted, so the queues degrade gracefully under
//! pressure. URLs move from incoming to outgoing lazily — the outgoing
//! queue is refilled when it runs low, which in the paper is the moment
//! DNS prefetching is triggered for the promising candidates.

use crate::types::QueuePriority;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One queued crawl task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueEntry {
    /// Target URL.
    pub url: String,
    /// Queue priority (SVM confidence, possibly tunnel-decayed).
    pub priority: f32,
    /// Crawl depth this URL will be fetched at.
    pub depth: u32,
    /// Tunnelling steps taken through rejected pages so far.
    pub tunnel: u32,
    /// Topic of the parent document that enqueued the URL.
    pub src_topic: Option<u32>,
    /// Page id of the enqueuing parent (0 = seed).
    pub src_page: u64,
    /// Anchor terms of the enqueuing link.
    pub anchor_terms: Vec<bingo_textproc::TermId>,
    /// Redirect hops already taken for this URL.
    pub redirects: u32,
    /// Fetch attempt number (for retry bookkeeping).
    pub attempt: u32,
}

impl QueueEntry {
    /// A seed entry at depth 0 with maximal priority.
    pub fn seed(url: &str, topic: Option<u32>) -> Self {
        QueueEntry {
            url: url.to_string(),
            priority: f32::MAX,
            depth: 0,
            tunnel: 0,
            src_topic: topic,
            src_page: 0,
            anchor_terms: Vec::new(),
            redirects: 0,
            attempt: 0,
        }
    }
}

/// Ordered queue keyed by descending priority, FIFO within equal
/// priorities, with worst-entry eviction at capacity.
#[derive(Debug, Default)]
struct PriorityQueue {
    entries: BTreeMap<(QueuePriority, u64), QueueEntry>,
    seq: u64,
}

impl PriorityQueue {
    fn push(&mut self, entry: QueueEntry, cap: usize) -> bool {
        let key = (QueuePriority::new(entry.priority), self.seq);
        self.seq += 1;
        self.entries.insert(key, entry);
        if self.entries.len() > cap {
            // Evict the worst (largest key: lowest priority, newest).
            let worst = *self.entries.keys().next_back().expect("non-empty");
            self.entries.remove(&worst);
            return false;
        }
        true
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        let best = *self.entries.keys().next()?;
        self.entries.remove(&best)
    }

    fn peek_priority(&self) -> Option<f32> {
        self.entries.keys().next().map(|(p, _)| p.as_f32())
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Per-topic incoming/outgoing queues. Topic `None` (tunnelled links from
/// pages not yet attributable to a topic) shares a dedicated queue slot.
#[derive(Debug)]
pub struct Frontier {
    incoming: Vec<PriorityQueue>,
    outgoing: Vec<PriorityQueue>,
    incoming_cap: usize,
    outgoing_cap: usize,
    /// URLs waiting out a retry/breaker backoff, keyed by
    /// `(release_ms, seq)` so the earliest release pops first.
    parked: BTreeMap<(u64, u64), QueueEntry>,
    park_seq: u64,
    /// Links dropped due to capacity.
    pub overflow: u64,
}

impl Frontier {
    /// Frontier over `topics` topic queues plus the shared untopiced slot.
    pub fn new(topics: usize, incoming_cap: usize, outgoing_cap: usize) -> Self {
        let n = topics + 1;
        Frontier {
            incoming: (0..n).map(|_| PriorityQueue::default()).collect(),
            outgoing: (0..n).map(|_| PriorityQueue::default()).collect(),
            incoming_cap,
            outgoing_cap,
            parked: BTreeMap::new(),
            park_seq: 0,
            overflow: 0,
        }
    }

    fn slot(&self, topic: Option<u32>) -> usize {
        match topic {
            Some(t) if (t as usize) < self.incoming.len() - 1 => t as usize,
            _ => self.incoming.len() - 1,
        }
    }

    /// Enqueue into the topic's incoming queue.
    pub fn push(&mut self, entry: QueueEntry) {
        let slot = self.slot(entry.src_topic);
        if !self.incoming[slot].push(entry, self.incoming_cap) {
            self.overflow += 1;
        }
    }

    /// Enqueue directly into the outgoing queue (seeds, retries, hub
    /// boosts after retraining).
    pub fn push_outgoing(&mut self, entry: QueueEntry) {
        let slot = self.slot(entry.src_topic);
        if !self.outgoing[slot].push(entry, self.outgoing_cap) {
            self.overflow += 1;
        }
    }

    /// Take the globally best URL: refill outgoing queues that run low,
    /// then pop the best entry across all outgoing queues.
    pub fn pop(&mut self) -> Option<QueueEntry> {
        // Refill: move the best incoming entries into outgoing when the
        // outgoing side is below a quarter of its capacity. This is the
        // point where the real system starts asynchronous DNS resolution
        // "only for promising crawl candidates".
        for slot in 0..self.outgoing.len() {
            while self.outgoing[slot].len() < (self.outgoing_cap / 4).max(1) {
                match self.incoming[slot].pop() {
                    Some(e) => {
                        self.outgoing[slot].push(e, self.outgoing_cap);
                    }
                    None => break,
                }
            }
        }
        let best_slot = (0..self.outgoing.len())
            .filter_map(|s| self.outgoing[s].peek_priority().map(|p| (s, p)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(s, _)| s)?;
        self.outgoing[best_slot].pop()
    }

    /// Park a URL until virtual time `release_ms` (retry backoff or an
    /// open circuit breaker). Parked entries do not compete for pops
    /// until released.
    pub fn park(&mut self, entry: QueueEntry, release_ms: u64) {
        self.parked.insert((release_ms, self.park_seq), entry);
        self.park_seq += 1;
    }

    /// Move every parked entry whose release time has arrived back into
    /// its outgoing queue. Returns how many were released.
    pub fn release_due(&mut self, now_ms: u64) -> usize {
        let mut released = 0;
        while let Some((&(release_ms, seq), _)) = self.parked.iter().next() {
            if release_ms > now_ms {
                break;
            }
            let entry = self.parked.remove(&(release_ms, seq)).expect("just peeked");
            self.push_outgoing(entry);
            released += 1;
        }
        released
    }

    /// Earliest release time among parked entries.
    pub fn next_release(&self) -> Option<u64> {
        self.parked.keys().next().map(|&(t, _)| t)
    }

    /// Number of parked URLs.
    pub fn parked_len(&self) -> usize {
        self.parked.len()
    }

    /// Total queued URLs (including parked ones).
    pub fn len(&self) -> usize {
        self.incoming
            .iter()
            .chain(self.outgoing.iter())
            .map(PriorityQueue::len)
            .sum::<usize>()
            + self.parked.len()
    }

    /// True when no URLs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializable snapshot. Entries are listed in pop order per queue
    /// (priority order), parked entries in release order, so the
    /// snapshot is byte-stable for identical frontiers.
    pub fn snapshot(&self) -> FrontierSnapshot {
        let drain =
            |q: &PriorityQueue| -> Vec<QueueEntry> { q.entries.values().cloned().collect() };
        FrontierSnapshot {
            incoming: self.incoming.iter().map(drain).collect(),
            outgoing: self.outgoing.iter().map(drain).collect(),
            parked: self
                .parked
                .iter()
                .map(|(&(t, _), e)| (t, e.clone()))
                .collect(),
            overflow: self.overflow,
        }
    }

    /// Rebuild a frontier from a snapshot.
    pub fn restore(snap: FrontierSnapshot, incoming_cap: usize, outgoing_cap: usize) -> Self {
        let fill = |entries: Vec<QueueEntry>, cap: usize| -> PriorityQueue {
            let mut q = PriorityQueue::default();
            for e in entries {
                q.push(e, cap);
            }
            q
        };
        let mut f = Frontier {
            incoming: snap
                .incoming
                .into_iter()
                .map(|q| fill(q, incoming_cap))
                .collect(),
            outgoing: snap
                .outgoing
                .into_iter()
                .map(|q| fill(q, outgoing_cap))
                .collect(),
            incoming_cap,
            outgoing_cap,
            parked: BTreeMap::new(),
            park_seq: 0,
            overflow: snap.overflow,
        };
        for (release_ms, entry) in snap.parked {
            f.park(entry, release_ms);
        }
        f
    }
}

/// Serialized form of a [`Frontier`] for crawl checkpoints.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrontierSnapshot {
    /// Incoming queue contents per slot, in priority order.
    pub incoming: Vec<Vec<QueueEntry>>,
    /// Outgoing queue contents per slot, in priority order.
    pub outgoing: Vec<Vec<QueueEntry>>,
    /// Parked entries as `(release_ms, entry)` in release order.
    pub parked: Vec<(u64, QueueEntry)>,
    /// Overflow counter at snapshot time.
    pub overflow: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(url: &str, priority: f32, topic: Option<u32>) -> QueueEntry {
        QueueEntry {
            url: url.to_string(),
            priority,
            ..QueueEntry::seed(url, topic)
        }
    }

    #[test]
    fn pops_highest_priority_first() {
        let mut f = Frontier::new(2, 100, 10);
        f.push(entry("low", 0.1, Some(0)));
        f.push(entry("high", 0.9, Some(0)));
        f.push(entry("mid", 0.5, Some(0)));
        assert_eq!(f.pop().unwrap().url, "high");
        assert_eq!(f.pop().unwrap().url, "mid");
        assert_eq!(f.pop().unwrap().url, "low");
        assert!(f.pop().is_none());
    }

    #[test]
    fn fifo_within_equal_priority() {
        let mut f = Frontier::new(1, 100, 10);
        f.push(entry("first", 0.5, Some(0)));
        f.push(entry("second", 0.5, Some(0)));
        assert_eq!(f.pop().unwrap().url, "first");
        assert_eq!(f.pop().unwrap().url, "second");
    }

    #[test]
    fn capacity_evicts_worst() {
        let mut f = Frontier::new(1, 3, 2);
        for i in 0..5 {
            f.push(entry(&format!("u{i}"), i as f32 / 10.0, Some(0)));
        }
        assert_eq!(f.overflow, 2);
        // The three best survive: u4, u3, u2.
        let mut got = Vec::new();
        while let Some(e) = f.pop() {
            got.push(e.url);
        }
        assert_eq!(got, vec!["u4", "u3", "u2"]);
    }

    #[test]
    fn pops_best_across_topics() {
        let mut f = Frontier::new(2, 100, 10);
        f.push(entry("t0", 0.3, Some(0)));
        f.push(entry("t1", 0.8, Some(1)));
        f.push(entry("untopiced", 0.5, None));
        assert_eq!(f.pop().unwrap().url, "t1");
        assert_eq!(f.pop().unwrap().url, "untopiced");
        assert_eq!(f.pop().unwrap().url, "t0");
    }

    #[test]
    fn unknown_topic_goes_to_shared_slot() {
        let mut f = Frontier::new(1, 100, 10);
        f.push(entry("weird", 0.5, Some(42)));
        assert_eq!(f.pop().unwrap().url, "weird");
    }

    #[test]
    fn outgoing_refills_from_incoming() {
        let mut f = Frontier::new(1, 1000, 40);
        for i in 0..100 {
            f.push(entry(&format!("u{i}"), (i % 10) as f32, Some(0)));
        }
        assert_eq!(f.len(), 100);
        let first = f.pop().unwrap();
        assert_eq!(first.priority, 9.0);
        assert_eq!(f.len(), 99);
    }

    #[test]
    fn parked_entries_wait_for_release() {
        let mut f = Frontier::new(1, 100, 10);
        f.park(entry("later", 0.9, Some(0)), 500);
        f.park(entry("soon", 0.1, Some(0)), 100);
        assert_eq!(f.len(), 2);
        assert_eq!(f.parked_len(), 2);
        assert!(f.pop().is_none(), "parked URLs are not poppable");
        assert_eq!(f.next_release(), Some(100));
        assert_eq!(f.release_due(99), 0);
        assert_eq!(f.release_due(100), 1);
        assert_eq!(f.pop().unwrap().url, "soon");
        assert_eq!(f.next_release(), Some(500));
        assert_eq!(f.release_due(1000), 1);
        assert_eq!(f.pop().unwrap().url, "later");
        assert!(f.next_release().is_none());
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut f = Frontier::new(2, 100, 10);
        f.push(entry("a", 0.3, Some(0)));
        f.push(entry("b", 0.8, Some(1)));
        f.push_outgoing(entry("c", 0.5, None));
        f.park(entry("p", 0.1, Some(0)), 777);
        f.overflow = 3;
        let snap = f.snapshot();
        let mut r = Frontier::restore(snap, 100, 10);
        assert_eq!(r.len(), f.len());
        assert_eq!(r.parked_len(), 1);
        assert_eq!(r.overflow, 3);
        assert_eq!(r.next_release(), Some(777));
        // Pop order is preserved across the round trip.
        let mut orig = Vec::new();
        while let Some(e) = f.pop() {
            orig.push(e.url);
        }
        let mut rest = Vec::new();
        while let Some(e) = r.pop() {
            rest.push(e.url);
        }
        assert_eq!(orig, rest);
    }

    #[test]
    fn seed_has_max_priority() {
        let mut f = Frontier::new(1, 100, 10);
        f.push(entry("normal", 100.0, Some(0)));
        f.push_outgoing(QueueEntry::seed("http://seed/", Some(0)));
        assert_eq!(f.pop().unwrap().url, "http://seed/");
    }
}
