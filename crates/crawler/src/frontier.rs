//! The crawl frontier (Section 4.2, "crawl queue management").
//!
//! "The queue manager maintains several queues, one (large) incoming and
//! one (small) outgoing queue for each topic, implemented as Red-Black
//! trees. ... URLs are prioritized based on their SVM confidence scores.
//! Incoming URL queues are limited to 25.000 links, outgoing URL queues
//! to 1000 links, to avoid uncontrolled memory usage."
//!
//! `BTreeMap` is Rust's red-black-equivalent ordered tree. Keys order by
//! descending priority with FIFO tie-breaking; when a capacity is hit the
//! *worst* entry is evicted, so the queues degrade gracefully under
//! pressure. URLs move from incoming to outgoing lazily — the outgoing
//! queue is refilled when it runs low, which in the paper is the moment
//! DNS prefetching is triggered for the promising candidates.

use crate::types::QueuePriority;
use std::collections::BTreeMap;

/// One queued crawl task.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueEntry {
    /// Target URL.
    pub url: String,
    /// Queue priority (SVM confidence, possibly tunnel-decayed).
    pub priority: f32,
    /// Crawl depth this URL will be fetched at.
    pub depth: u32,
    /// Tunnelling steps taken through rejected pages so far.
    pub tunnel: u32,
    /// Topic of the parent document that enqueued the URL.
    pub src_topic: Option<u32>,
    /// Page id of the enqueuing parent (0 = seed).
    pub src_page: u64,
    /// Anchor terms of the enqueuing link.
    pub anchor_terms: Vec<bingo_textproc::TermId>,
    /// Redirect hops already taken for this URL.
    pub redirects: u32,
    /// Fetch attempt number (for retry bookkeeping).
    pub attempt: u32,
}

impl QueueEntry {
    /// A seed entry at depth 0 with maximal priority.
    pub fn seed(url: &str, topic: Option<u32>) -> Self {
        QueueEntry {
            url: url.to_string(),
            priority: f32::MAX,
            depth: 0,
            tunnel: 0,
            src_topic: topic,
            src_page: 0,
            anchor_terms: Vec::new(),
            redirects: 0,
            attempt: 0,
        }
    }
}

/// Ordered queue keyed by descending priority, FIFO within equal
/// priorities, with worst-entry eviction at capacity.
#[derive(Debug, Default)]
struct PriorityQueue {
    entries: BTreeMap<(QueuePriority, u64), QueueEntry>,
    seq: u64,
}

impl PriorityQueue {
    fn push(&mut self, entry: QueueEntry, cap: usize) -> bool {
        let key = (QueuePriority::new(entry.priority), self.seq);
        self.seq += 1;
        self.entries.insert(key, entry);
        if self.entries.len() > cap {
            // Evict the worst (largest key: lowest priority, newest).
            let worst = *self.entries.keys().next_back().expect("non-empty");
            self.entries.remove(&worst);
            return false;
        }
        true
    }

    fn pop(&mut self) -> Option<QueueEntry> {
        let best = *self.entries.keys().next()?;
        self.entries.remove(&best)
    }

    fn peek_priority(&self) -> Option<f32> {
        self.entries.keys().next().map(|(p, _)| p.as_f32())
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// Per-topic incoming/outgoing queues. Topic `None` (tunnelled links from
/// pages not yet attributable to a topic) shares a dedicated queue slot.
#[derive(Debug)]
pub struct Frontier {
    incoming: Vec<PriorityQueue>,
    outgoing: Vec<PriorityQueue>,
    incoming_cap: usize,
    outgoing_cap: usize,
    /// Links dropped due to capacity.
    pub overflow: u64,
}

impl Frontier {
    /// Frontier over `topics` topic queues plus the shared untopiced slot.
    pub fn new(topics: usize, incoming_cap: usize, outgoing_cap: usize) -> Self {
        let n = topics + 1;
        Frontier {
            incoming: (0..n).map(|_| PriorityQueue::default()).collect(),
            outgoing: (0..n).map(|_| PriorityQueue::default()).collect(),
            incoming_cap,
            outgoing_cap,
            overflow: 0,
        }
    }

    fn slot(&self, topic: Option<u32>) -> usize {
        match topic {
            Some(t) if (t as usize) < self.incoming.len() - 1 => t as usize,
            _ => self.incoming.len() - 1,
        }
    }

    /// Enqueue into the topic's incoming queue.
    pub fn push(&mut self, entry: QueueEntry) {
        let slot = self.slot(entry.src_topic);
        if !self.incoming[slot].push(entry, self.incoming_cap) {
            self.overflow += 1;
        }
    }

    /// Enqueue directly into the outgoing queue (seeds, retries, hub
    /// boosts after retraining).
    pub fn push_outgoing(&mut self, entry: QueueEntry) {
        let slot = self.slot(entry.src_topic);
        if !self.outgoing[slot].push(entry, self.outgoing_cap) {
            self.overflow += 1;
        }
    }

    /// Take the globally best URL: refill outgoing queues that run low,
    /// then pop the best entry across all outgoing queues.
    pub fn pop(&mut self) -> Option<QueueEntry> {
        // Refill: move the best incoming entries into outgoing when the
        // outgoing side is below a quarter of its capacity. This is the
        // point where the real system starts asynchronous DNS resolution
        // "only for promising crawl candidates".
        for slot in 0..self.outgoing.len() {
            while self.outgoing[slot].len() < (self.outgoing_cap / 4).max(1) {
                match self.incoming[slot].pop() {
                    Some(e) => {
                        self.outgoing[slot].push(e, self.outgoing_cap);
                    }
                    None => break,
                }
            }
        }
        let best_slot = (0..self.outgoing.len())
            .filter_map(|s| self.outgoing[s].peek_priority().map(|p| (s, p)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(s, _)| s)?;
        self.outgoing[best_slot].pop()
    }

    /// Total queued URLs.
    pub fn len(&self) -> usize {
        self.incoming
            .iter()
            .chain(self.outgoing.iter())
            .map(PriorityQueue::len)
            .sum()
    }

    /// True when no URLs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(url: &str, priority: f32, topic: Option<u32>) -> QueueEntry {
        QueueEntry {
            url: url.to_string(),
            priority,
            ..QueueEntry::seed(url, topic)
        }
    }

    #[test]
    fn pops_highest_priority_first() {
        let mut f = Frontier::new(2, 100, 10);
        f.push(entry("low", 0.1, Some(0)));
        f.push(entry("high", 0.9, Some(0)));
        f.push(entry("mid", 0.5, Some(0)));
        assert_eq!(f.pop().unwrap().url, "high");
        assert_eq!(f.pop().unwrap().url, "mid");
        assert_eq!(f.pop().unwrap().url, "low");
        assert!(f.pop().is_none());
    }

    #[test]
    fn fifo_within_equal_priority() {
        let mut f = Frontier::new(1, 100, 10);
        f.push(entry("first", 0.5, Some(0)));
        f.push(entry("second", 0.5, Some(0)));
        assert_eq!(f.pop().unwrap().url, "first");
        assert_eq!(f.pop().unwrap().url, "second");
    }

    #[test]
    fn capacity_evicts_worst() {
        let mut f = Frontier::new(1, 3, 2);
        for i in 0..5 {
            f.push(entry(&format!("u{i}"), i as f32 / 10.0, Some(0)));
        }
        assert_eq!(f.overflow, 2);
        // The three best survive: u4, u3, u2.
        let mut got = Vec::new();
        while let Some(e) = f.pop() {
            got.push(e.url);
        }
        assert_eq!(got, vec!["u4", "u3", "u2"]);
    }

    #[test]
    fn pops_best_across_topics() {
        let mut f = Frontier::new(2, 100, 10);
        f.push(entry("t0", 0.3, Some(0)));
        f.push(entry("t1", 0.8, Some(1)));
        f.push(entry("untopiced", 0.5, None));
        assert_eq!(f.pop().unwrap().url, "t1");
        assert_eq!(f.pop().unwrap().url, "untopiced");
        assert_eq!(f.pop().unwrap().url, "t0");
    }

    #[test]
    fn unknown_topic_goes_to_shared_slot() {
        let mut f = Frontier::new(1, 100, 10);
        f.push(entry("weird", 0.5, Some(42)));
        assert_eq!(f.pop().unwrap().url, "weird");
    }

    #[test]
    fn outgoing_refills_from_incoming() {
        let mut f = Frontier::new(1, 1000, 40);
        for i in 0..100 {
            f.push(entry(&format!("u{i}"), (i % 10) as f32, Some(0)));
        }
        assert_eq!(f.len(), 100);
        let first = f.pop().unwrap();
        assert_eq!(first.priority, 9.0);
        assert_eq!(f.len(), 99);
    }

    #[test]
    fn seed_has_max_priority() {
        let mut f = Frontier::new(1, 100, 10);
        f.push(entry("normal", 100.0, Some(0)));
        f.push_outgoing(QueueEntry::seed("http://seed/", Some(0)));
        assert_eq!(f.pop().unwrap().url, "http://seed/");
    }
}
