//! Duplicate recognition (Section 4.2).
//!
//! "The crawler uses several fingerprints to recognize duplicates. The
//! initial step consists of simple URL matching (our implementation
//! merely compares the hashcode representation of the visited URL, with a
//! small risk of falsely dismissing a new document). In the next step,
//! the crawler checks the combination of returned IP address and path of
//! the resource. Finally ... we assume that the filesize is a unique
//! value within the same host and consider candidates with previously
//! seen IP/filesize combinations as duplicates."

use bingo_textproc::fxhash::{self, FxHashSet};

/// The three-stage duplicate filter.
#[derive(Debug, Default)]
pub struct Dedup {
    /// Hashcodes of URLs already queued/visited (not the URLs themselves —
    /// mirroring the paper's memory/accuracy trade-off).
    url_hashes: FxHashSet<u64>,
    /// (IP, path-hash) pairs already fetched.
    ip_path: FxHashSet<(u32, u64)>,
    /// (IP, filesize) pairs already fetched.
    ip_size: FxHashSet<(u32, u64)>,
}

impl Dedup {
    /// Empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stage 1: mark a URL as seen. Returns `false` when its hash was
    /// already present (treat as duplicate).
    pub fn mark_url(&mut self, url: &str) -> bool {
        self.url_hashes.insert(fxhash::hash_one(&url))
    }

    /// True when the URL hash was seen before (non-mutating).
    pub fn url_seen(&self, url: &str) -> bool {
        self.url_hashes.contains(&fxhash::hash_one(&url))
    }

    /// Stages 2+3: mark a fetched response by server IP, resource path
    /// and reported size. Returns `false` when either fingerprint
    /// matches a previous response (duplicate content).
    pub fn mark_response(&mut self, ip: u32, path: &str, size: u64) -> bool {
        let path_new = self.ip_path.insert((ip, fxhash::hash_one(&path)));
        let size_new = self.ip_size.insert((ip, size));
        path_new && size_new
    }

    /// [`Dedup::mark_url`] that records the insert (if it was new) into
    /// `journal`, so a panicked batch can be rolled back.
    pub fn mark_url_journaled(&mut self, url: &str, journal: &mut Vec<DedupMark>) -> bool {
        let hash = fxhash::hash_one(&url);
        let new = self.url_hashes.insert(hash);
        if new {
            journal.push(DedupMark::Url(hash));
        }
        new
    }

    /// [`Dedup::mark_response`] that records the inserts (only those
    /// that were actually new) into `journal` for rollback.
    pub fn mark_response_journaled(
        &mut self,
        ip: u32,
        path: &str,
        size: u64,
        journal: &mut Vec<DedupMark>,
    ) -> bool {
        let path_key = (ip, fxhash::hash_one(&path));
        let path_new = self.ip_path.insert(path_key);
        if path_new {
            journal.push(DedupMark::IpPath(path_key.0, path_key.1));
        }
        let size_new = self.ip_size.insert((ip, size));
        if size_new {
            journal.push(DedupMark::IpSize(ip, size));
        }
        path_new && size_new
    }

    /// Undo journaled marks after a worker panic: the requeued URLs
    /// must not see their own half-processed fingerprints as
    /// duplicates. Only entries the journal proves were newly inserted
    /// are removed, so concurrent marks by other workers survive.
    pub fn unmark(&mut self, journal: &[DedupMark]) {
        for mark in journal {
            match *mark {
                DedupMark::Url(h) => {
                    self.url_hashes.remove(&h);
                }
                DedupMark::IpPath(ip, path_hash) => {
                    self.ip_path.remove(&(ip, path_hash));
                }
                DedupMark::IpSize(ip, size) => {
                    self.ip_size.remove(&(ip, size));
                }
            }
        }
    }

    /// Number of distinct URLs marked.
    pub fn urls_marked(&self) -> usize {
        self.url_hashes.len()
    }

    /// Serializable snapshot, sorted for byte-stable checkpoints.
    pub fn snapshot(&self) -> DedupSnapshot {
        let mut url_hashes: Vec<u64> = self.url_hashes.iter().copied().collect();
        url_hashes.sort_unstable();
        let mut ip_path: Vec<(u32, u64)> = self.ip_path.iter().copied().collect();
        ip_path.sort_unstable();
        let mut ip_size: Vec<(u32, u64)> = self.ip_size.iter().copied().collect();
        ip_size.sort_unstable();
        DedupSnapshot {
            url_hashes,
            ip_path,
            ip_size,
        }
    }

    /// Rebuild the filter from a snapshot.
    pub fn restore(snap: DedupSnapshot) -> Self {
        Dedup {
            url_hashes: snap.url_hashes.into_iter().collect(),
            ip_path: snap.ip_path.into_iter().collect(),
            ip_size: snap.ip_size.into_iter().collect(),
        }
    }
}

/// One fingerprint newly inserted during a journaled mark — the unit of
/// rollback after a worker panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupMark {
    /// A URL hashcode (stage 1).
    Url(u64),
    /// An (IP, path-hash) fingerprint (stage 2).
    IpPath(u32, u64),
    /// An (IP, filesize) fingerprint (stage 3).
    IpSize(u32, u64),
}

/// Serialized form of the duplicate filter for crawl checkpoints.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DedupSnapshot {
    /// Sorted URL hashcodes.
    pub url_hashes: Vec<u64>,
    /// Sorted (IP, path-hash) fingerprints.
    pub ip_path: Vec<(u32, u64)>,
    /// Sorted (IP, filesize) fingerprints.
    pub ip_size: Vec<(u32, u64)>,
}

/// Extract the path component of an `http://host/path` URL.
pub fn path_of_url(url: &str) -> &str {
    url.strip_prefix("http://")
        .and_then(|rest| rest.find('/').map(|i| &rest[i..]))
        .unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_stage() {
        let mut d = Dedup::new();
        assert!(d.mark_url("http://a/x"));
        assert!(!d.mark_url("http://a/x"));
        assert!(d.mark_url("http://a/y"));
        assert!(d.url_seen("http://a/x"));
        assert!(!d.url_seen("http://a/z"));
        assert_eq!(d.urls_marked(), 2);
    }

    #[test]
    fn ip_path_stage_catches_host_aliases() {
        // Same path + size served under two hostnames on one IP.
        let mut d = Dedup::new();
        assert!(d.mark_response(42, "/page.html", 1000));
        assert!(!d.mark_response(42, "/page.html", 2000), "same ip+path");
    }

    #[test]
    fn ip_size_stage_catches_path_aliases() {
        // Same content under two paths on one host: size matches.
        let mut d = Dedup::new();
        assert!(d.mark_response(42, "/canonical.html", 1234));
        assert!(!d.mark_response(42, "/alias/canonical.html", 1234));
    }

    #[test]
    fn different_hosts_do_not_collide() {
        let mut d = Dedup::new();
        assert!(d.mark_response(1, "/p", 100));
        assert!(d.mark_response(2, "/p", 100), "other IP is fine");
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut d = Dedup::new();
        d.mark_url("http://a/x");
        d.mark_url("http://a/y");
        d.mark_response(42, "/x", 100);
        d.mark_response(7, "/y", 200);
        let snap = d.snapshot();
        let r = Dedup::restore(snap.clone());
        assert!(r.url_seen("http://a/x"));
        assert_eq!(r.urls_marked(), 2);
        let mut r = r;
        assert!(!r.mark_response(42, "/x", 999), "ip+path survives");
        assert!(!r.mark_response(42, "/other", 100), "ip+size survives");
        // Snapshots of identical state are identical (sorted).
        assert_eq!(
            format!("{:?}", Dedup::restore(snap.clone()).snapshot()),
            format!("{snap:?}")
        );
    }

    #[test]
    fn journaled_marks_roll_back_exactly_the_new_inserts() {
        let mut d = Dedup::new();
        assert!(d.mark_response(42, "/pre-existing", 500));
        let mut journal = Vec::new();
        assert!(d.mark_url_journaled("http://a/x", &mut journal));
        // Path collides with the pre-existing entry; only the size
        // fingerprint is new, so only it lands in the journal.
        assert!(!d.mark_response_journaled(42, "/pre-existing", 900, &mut journal));
        assert!(d.mark_response_journaled(42, "/fresh", 1000, &mut journal));
        assert_eq!(journal.len(), 4, "url + new size + fresh path + fresh size");
        d.unmark(&journal);
        // Rolled-back entries mark as new again...
        assert!(d.mark_url("http://a/x"));
        assert!(d.mark_response(42, "/fresh", 1000));
        // ...while the pre-existing fingerprint survived the rollback.
        assert!(!d.mark_response(42, "/pre-existing", 777));
    }

    #[test]
    fn path_extraction() {
        assert_eq!(path_of_url("http://h.com/a/b.html"), "/a/b.html");
        assert_eq!(path_of_url("http://h.com"), "");
        assert_eq!(path_of_url("nonsense"), "");
    }
}
