//! Duplicate recognition (Section 4.2).
//!
//! "The crawler uses several fingerprints to recognize duplicates. The
//! initial step consists of simple URL matching (our implementation
//! merely compares the hashcode representation of the visited URL, with a
//! small risk of falsely dismissing a new document). In the next step,
//! the crawler checks the combination of returned IP address and path of
//! the resource. Finally ... we assume that the filesize is a unique
//! value within the same host and consider candidates with previously
//! seen IP/filesize combinations as duplicates."
//!
//! The three fingerprint sets are the crawl's largest purely linear
//! memory consumers — one entry per distinct URL / fetched page. For
//! memory-bounded crawls they ride on [`bingo_store::SpillSet`]: a
//! capacity-bounded hot tier plus hash-sharded sorted spill files, with
//! a Bloom-style front filter so the exact check hits disk only on a
//! probable duplicate. Answers are exact either way, so a spilling
//! filter is byte-identical to the resident one — same booleans, same
//! snapshots — and when everything fits under the cap no spill file is
//! ever written. Spill files are run-scratch: checkpoints materialize
//! the sorted sets ([`Dedup::snapshot`]) and recovery sweeps stale
//! files instead of reading them.

use bingo_store::spill::{reap_stale_spill_files, SpillSet, SpillSetConfig, SpillSetStats};
use bingo_store::DurableFs;
use bingo_textproc::fxhash;
use std::path::PathBuf;

/// File-name prefix of dedup spill shards (`dedup-url-3.spill`, …).
pub const DEDUP_SPILL_PREFIX: &str = "dedup-";

/// Spill policy for the duplicate filter's fingerprint sets.
#[derive(Debug, Clone)]
pub struct DedupSpillConfig {
    /// Directory the shard files live in (created if missing; stale
    /// `dedup-*.spill` files from an aborted run are swept first).
    pub dir: PathBuf,
    /// Hot-tier capacity in fingerprints, *per set* (URL, IP+path,
    /// IP+size each get this many resident keys).
    pub hot_cap: usize,
    /// log2 of each set's front-filter size in bits.
    pub bloom_bits_log2: u32,
}

impl DedupSpillConfig {
    /// Defaults sized for multi-million-page crawls: 1M hot
    /// fingerprints and an 8 MiB front filter per set.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DedupSpillConfig {
            dir: dir.into(),
            hot_cap: 1 << 20,
            bloom_bits_log2: 26,
        }
    }
}

/// Aggregated deterministic counters over the three fingerprint sets.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DedupStats {
    /// Fingerprints resident in the hot tiers.
    pub hot: usize,
    /// Fingerprints living in spill shard files.
    pub spilled: usize,
    /// Hot-tier merges into shard files so far.
    pub merges: u64,
    /// Disk probes issued (front filter said "maybe").
    pub disk_probes: u64,
    /// Disk probes that confirmed a duplicate.
    pub disk_hits: u64,
    /// Failed shard-file reads/writes (answers stayed exact; the
    /// affected fingerprints stayed resident).
    pub io_errors: u64,
    /// Stale spill files swept at construction.
    pub stale_reaped: u64,
}

/// The three-stage duplicate filter.
#[derive(Debug, Default)]
pub struct Dedup {
    /// Hashcodes of URLs already queued/visited (not the URLs themselves —
    /// mirroring the paper's memory/accuracy trade-off).
    url_hashes: SpillSet,
    /// (IP, path-hash) pairs already fetched.
    ip_path: SpillSet,
    /// (IP, filesize) pairs already fetched.
    ip_size: SpillSet,
    /// Stale spill files swept when this filter was constructed.
    stale_reaped: u64,
}

/// Widen an (IP, u64) fingerprint into one `u128` key whose numeric
/// order equals the tuple's lexicographic order, so sorted snapshots
/// stay byte-identical to the historical sorted-tuple form.
fn pair_key(ip: u32, second: u64) -> u128 {
    ((ip as u128) << 64) | second as u128
}

fn split_pair(key: u128) -> (u32, u64) {
    ((key >> 64) as u32, key as u64)
}

impl Dedup {
    /// Empty filter, fully resident (no cap, no disk).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty filter that spills each fingerprint set past
    /// `cfg.hot_cap`. Sweeps stale `dedup-*.spill` files in `cfg.dir`
    /// first ([`Dedup::stats`] reports how many).
    pub fn with_spill(cfg: &DedupSpillConfig) -> Self {
        Self::with_spill_fs(cfg, std::sync::Arc::new(bingo_store::StdFs))
    }

    /// [`Dedup::with_spill`] through an explicit [`DurableFs`], so
    /// crash tests can kill shard-file merges at an exact byte offset.
    pub fn with_spill_fs(cfg: &DedupSpillConfig, fs: std::sync::Arc<dyn DurableFs>) -> Self {
        std::fs::create_dir_all(&cfg.dir).expect("dedup spill dir");
        let stale_reaped = reap_stale_spill_files(&cfg.dir, &[DEDUP_SPILL_PREFIX]) as u64;
        let set = |name: &str| {
            SpillSet::spilling(
                &SpillSetConfig {
                    dir: cfg.dir.clone(),
                    prefix: format!("{DEDUP_SPILL_PREFIX}{name}-"),
                    hot_cap: cfg.hot_cap,
                    bloom_bits_log2: cfg.bloom_bits_log2,
                },
                std::sync::Arc::clone(&fs),
            )
        };
        Dedup {
            url_hashes: set("url"),
            ip_path: set("path"),
            ip_size: set("size"),
            stale_reaped,
        }
    }

    /// Stage 1: mark a URL as seen. Returns `false` when its hash was
    /// already present (treat as duplicate).
    pub fn mark_url(&mut self, url: &str) -> bool {
        self.url_hashes.insert(fxhash::hash_one(&url) as u128)
    }

    /// True when the URL hash was seen before (non-mutating).
    pub fn url_seen(&self, url: &str) -> bool {
        self.url_hashes.contains(fxhash::hash_one(&url) as u128)
    }

    /// Stages 2+3: mark a fetched response by server IP, resource path
    /// and reported size. Returns `false` when either fingerprint
    /// matches a previous response (duplicate content).
    pub fn mark_response(&mut self, ip: u32, path: &str, size: u64) -> bool {
        let path_new = self.ip_path.insert(pair_key(ip, fxhash::hash_one(&path)));
        let size_new = self.ip_size.insert(pair_key(ip, size));
        path_new && size_new
    }

    /// [`Dedup::mark_url`] that records the insert (if it was new) into
    /// `journal`, so a panicked batch can be rolled back.
    pub fn mark_url_journaled(&mut self, url: &str, journal: &mut Vec<DedupMark>) -> bool {
        let hash = fxhash::hash_one(&url);
        let new = self.url_hashes.insert(hash as u128);
        if new {
            journal.push(DedupMark::Url(hash));
        }
        new
    }

    /// [`Dedup::mark_response`] that records the inserts (only those
    /// that were actually new) into `journal` for rollback.
    pub fn mark_response_journaled(
        &mut self,
        ip: u32,
        path: &str,
        size: u64,
        journal: &mut Vec<DedupMark>,
    ) -> bool {
        let path_hash = fxhash::hash_one(&path);
        let path_new = self.ip_path.insert(pair_key(ip, path_hash));
        if path_new {
            journal.push(DedupMark::IpPath(ip, path_hash));
        }
        let size_new = self.ip_size.insert(pair_key(ip, size));
        if size_new {
            journal.push(DedupMark::IpSize(ip, size));
        }
        path_new && size_new
    }

    /// Undo journaled marks after a worker panic: the requeued URLs
    /// must not see their own half-processed fingerprints as
    /// duplicates. Only entries the journal proves were newly inserted
    /// are removed, so concurrent marks by other workers survive.
    /// Fingerprints that already spilled are tombstoned in place.
    pub fn unmark(&mut self, journal: &[DedupMark]) {
        for mark in journal {
            match *mark {
                DedupMark::Url(h) => {
                    self.url_hashes.remove(h as u128);
                }
                DedupMark::IpPath(ip, path_hash) => {
                    self.ip_path.remove(pair_key(ip, path_hash));
                }
                DedupMark::IpSize(ip, size) => {
                    self.ip_size.remove(pair_key(ip, size));
                }
            }
        }
    }

    /// Number of distinct URLs marked.
    pub fn urls_marked(&self) -> usize {
        self.url_hashes.len()
    }

    /// Aggregated spill counters across the three fingerprint sets.
    /// All zero for a fully resident filter.
    pub fn stats(&self) -> DedupStats {
        let mut agg = DedupStats {
            stale_reaped: self.stale_reaped,
            ..DedupStats::default()
        };
        for s in [
            self.url_hashes.stats(),
            self.ip_path.stats(),
            self.ip_size.stats(),
        ] {
            let SpillSetStats {
                hot,
                spilled,
                tombstones: _,
                merges,
                disk_probes,
                disk_hits,
                io_errors,
            } = s;
            agg.hot += hot;
            agg.spilled += spilled;
            agg.merges += merges;
            agg.disk_probes += disk_probes;
            agg.disk_hits += disk_hits;
            agg.io_errors += io_errors;
        }
        agg
    }

    /// Serializable snapshot, sorted for byte-stable checkpoints.
    /// Spilled fingerprints are materialized from disk, so a checkpoint
    /// is self-contained and recovery never depends on spill files.
    pub fn snapshot(&self) -> DedupSnapshot {
        DedupSnapshot {
            url_hashes: self
                .url_hashes
                .to_sorted_vec()
                .into_iter()
                .map(|k| k as u64)
                .collect(),
            ip_path: self
                .ip_path
                .to_sorted_vec()
                .into_iter()
                .map(split_pair)
                .collect(),
            ip_size: self
                .ip_size
                .to_sorted_vec()
                .into_iter()
                .map(split_pair)
                .collect(),
        }
    }

    /// Rebuild the filter from a snapshot, fully resident.
    pub fn restore(snap: DedupSnapshot) -> Self {
        Self::restore_with(snap, None)
    }

    /// Rebuild the filter from a snapshot, spilling past the cap when a
    /// [`DedupSpillConfig`] is given. Snapshots are backend-agnostic: a
    /// checkpoint taken by a spilling crawl restores into a resident
    /// filter and vice versa.
    pub fn restore_with(snap: DedupSnapshot, spill: Option<DedupSpillConfig>) -> Self {
        let mut d = match &spill {
            Some(cfg) => Self::with_spill(cfg),
            None => Self::new(),
        };
        for h in snap.url_hashes {
            d.url_hashes.insert(h as u128);
        }
        for (ip, path_hash) in snap.ip_path {
            d.ip_path.insert(pair_key(ip, path_hash));
        }
        for (ip, size) in snap.ip_size {
            d.ip_size.insert(pair_key(ip, size));
        }
        d
    }
}

/// One fingerprint newly inserted during a journaled mark — the unit of
/// rollback after a worker panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DedupMark {
    /// A URL hashcode (stage 1).
    Url(u64),
    /// An (IP, path-hash) fingerprint (stage 2).
    IpPath(u32, u64),
    /// An (IP, filesize) fingerprint (stage 3).
    IpSize(u32, u64),
}

/// Serialized form of the duplicate filter for crawl checkpoints.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DedupSnapshot {
    /// Sorted URL hashcodes.
    pub url_hashes: Vec<u64>,
    /// Sorted (IP, path-hash) fingerprints.
    pub ip_path: Vec<(u32, u64)>,
    /// Sorted (IP, filesize) fingerprints.
    pub ip_size: Vec<(u32, u64)>,
}

/// Extract the path component of an `http://host/path` URL.
pub fn path_of_url(url: &str) -> &str {
    url.strip_prefix("http://")
        .and_then(|rest| rest.find('/').map(|i| &rest[i..]))
        .unwrap_or("")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bingo-dedup-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// A config small enough that every test exercises the disk path.
    fn tiny_spill(dir: &std::path::Path) -> DedupSpillConfig {
        DedupSpillConfig {
            dir: dir.to_path_buf(),
            hot_cap: 4,
            bloom_bits_log2: 10,
        }
    }

    #[test]
    fn url_stage() {
        let mut d = Dedup::new();
        assert!(d.mark_url("http://a/x"));
        assert!(!d.mark_url("http://a/x"));
        assert!(d.mark_url("http://a/y"));
        assert!(d.url_seen("http://a/x"));
        assert!(!d.url_seen("http://a/z"));
        assert_eq!(d.urls_marked(), 2);
    }

    #[test]
    fn ip_path_stage_catches_host_aliases() {
        // Same path + size served under two hostnames on one IP.
        let mut d = Dedup::new();
        assert!(d.mark_response(42, "/page.html", 1000));
        assert!(!d.mark_response(42, "/page.html", 2000), "same ip+path");
    }

    #[test]
    fn ip_size_stage_catches_path_aliases() {
        // Same content under two paths on one host: size matches.
        let mut d = Dedup::new();
        assert!(d.mark_response(42, "/canonical.html", 1234));
        assert!(!d.mark_response(42, "/alias/canonical.html", 1234));
    }

    #[test]
    fn different_hosts_do_not_collide() {
        let mut d = Dedup::new();
        assert!(d.mark_response(1, "/p", 100));
        assert!(d.mark_response(2, "/p", 100), "other IP is fine");
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut d = Dedup::new();
        d.mark_url("http://a/x");
        d.mark_url("http://a/y");
        d.mark_response(42, "/x", 100);
        d.mark_response(7, "/y", 200);
        let snap = d.snapshot();
        let r = Dedup::restore(snap.clone());
        assert!(r.url_seen("http://a/x"));
        assert_eq!(r.urls_marked(), 2);
        let mut r = r;
        assert!(!r.mark_response(42, "/x", 999), "ip+path survives");
        assert!(!r.mark_response(42, "/other", 100), "ip+size survives");
        // Snapshots of identical state are identical (sorted).
        assert_eq!(
            format!("{:?}", Dedup::restore(snap.clone()).snapshot()),
            format!("{snap:?}")
        );
    }

    #[test]
    fn journaled_marks_roll_back_exactly_the_new_inserts() {
        let mut d = Dedup::new();
        assert!(d.mark_response(42, "/pre-existing", 500));
        let mut journal = Vec::new();
        assert!(d.mark_url_journaled("http://a/x", &mut journal));
        // Path collides with the pre-existing entry; only the size
        // fingerprint is new, so only it lands in the journal.
        assert!(!d.mark_response_journaled(42, "/pre-existing", 900, &mut journal));
        assert!(d.mark_response_journaled(42, "/fresh", 1000, &mut journal));
        assert_eq!(journal.len(), 4, "url + new size + fresh path + fresh size");
        d.unmark(&journal);
        // Rolled-back entries mark as new again...
        assert!(d.mark_url("http://a/x"));
        assert!(d.mark_response(42, "/fresh", 1000));
        // ...while the pre-existing fingerprint survived the rollback.
        assert!(!d.mark_response(42, "/pre-existing", 777));
    }

    #[test]
    fn spilled_filter_matches_resident_filter_and_snapshots_agree() {
        let dir = temp_dir("equiv");
        let mut resident = Dedup::new();
        let mut spilled = Dedup::with_spill(&tiny_spill(&dir));
        for i in 0..200u64 {
            let url = format!("http://h{}.test/p{}", i % 13, i % 57);
            assert_eq!(spilled.mark_url(&url), resident.mark_url(&url), "{url}");
            let (ip, size) = ((i % 9) as u32, i % 31);
            assert_eq!(
                spilled.mark_response(ip, path_of_url(&url), size),
                resident.mark_response(ip, path_of_url(&url), size),
                "response {i}"
            );
        }
        assert_eq!(spilled.urls_marked(), resident.urls_marked());
        let stats = spilled.stats();
        assert!(stats.merges > 0, "cap 4 must spill: {stats:?}");
        assert!(stats.spilled > 0);
        // Byte-identical serialized snapshots.
        assert_eq!(
            serde_json::to_string(&spilled.snapshot()).unwrap(),
            serde_json::to_string(&resident.snapshot()).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilling_restore_round_trips_and_journal_rollback_reaches_disk() {
        let dir = temp_dir("restore");
        let mut d = Dedup::with_spill(&tiny_spill(&dir));
        for i in 0..50u64 {
            d.mark_url(&format!("http://a/{i}"));
            d.mark_response((i % 5) as u32, &format!("/{i}"), 1000 + i);
        }
        // Journaled marks that certainly spill before the rollback.
        let mut journal = Vec::new();
        d.mark_url_journaled("http://rollback/me", &mut journal);
        d.mark_response_journaled(99, "/rollback", 9999, &mut journal);
        for i in 50..80u64 {
            d.mark_url(&format!("http://a/{i}"));
        }
        d.unmark(&journal);
        assert!(!d.url_seen("http://rollback/me"));
        assert!(d.mark_response(99, "/rollback", 9999), "rolled back");
        let snap = d.snapshot();
        // Restore through a *fresh* spilling filter in a new directory.
        let dir2 = temp_dir("restore-2");
        let r = Dedup::restore_with(snap.clone(), Some(tiny_spill(&dir2)));
        assert_eq!(
            serde_json::to_string(&r.snapshot()).unwrap(),
            serde_json::to_string(&snap).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }

    #[test]
    fn stale_spill_files_swept_at_construction() {
        let dir = temp_dir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("dedup-url-0.spill"), b"stale").unwrap();
        std::fs::write(dir.join("dedup-size-9.spill"), b"stale").unwrap();
        std::fs::write(dir.join("slot-1.spill"), b"not ours").unwrap();
        let d = Dedup::with_spill(&tiny_spill(&dir));
        assert_eq!(d.stats().stale_reaped, 2);
        assert!(dir.join("slot-1.spill").exists(), "frontier files spared");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn path_extraction() {
        assert_eq!(path_of_url("http://h.com/a/b.html"), "/a/b.html");
        assert_eq!(path_of_url("http://h.com"), "");
        assert_eq!(path_of_url("nonsense"), "");
    }
}
