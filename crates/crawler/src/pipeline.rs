//! The staged, batch-oriented document pipeline (Section 4.1).
//!
//! Both crawl executors drive their documents through the same stages —
//!
//! ```text
//! fetch → content-convert → analyze → classify → bulk-load
//! ```
//!
//! — so fetch-to-store behavior is defined once. The discrete-event
//! [`crate::Crawler`] is a frontier/focus *policy* layer: it decides
//! which URL is processed when (virtual clock, politeness slots,
//! breakers, retries) and hands singleton batches to
//! [`process_batch`]. The real-thread executor
//! ([`crate::threaded::run_pipeline`]) runs N workers that pull whole
//! batches through the identical stages for raw throughput.
//!
//! Stages operate on batches of [`FetchedDoc`]s. Executor-specific
//! policy enters through two callbacks: the response-fingerprint test
//! (the deterministic executor owns a plain [`crate::Dedup`], the
//! threaded one shares it behind a mutex) and the judge (a stateful
//! [`crate::DocumentJudge`] or a `Sync` [`BatchJudge`]). Everything
//! else — MIME/size admission, HTML conversion, analysis, document and
//! link rows, bulk loading — is shared code below.
//!
//! Link rows are emitted for **every resolvable out-link of a stored
//! document** (order-independent), not just for links that survived the
//! frontier's enqueue filters. This makes the stored link graph a
//! property of the document set rather than of the crawl schedule, so
//! the two executors agree on it; the HITS link analysis only gets a
//! denser, more faithful graph out of this.

use crate::types::{Judgment, PageContext};
use bingo_obs::{Counter, Gauge, Histogram, Registry, WallTimer};
use bingo_store::{BulkLoader, DocumentRow, LinkRow, StoreError};
use bingo_textproc::fxhash::{FxHashMap, FxHashSet};
use bingo_textproc::{
    analyze_html_metered, AnalyzedDocument, ContentRegistry, Interner, TermId, TextprocMetrics,
};
use bingo_webworld::fetch::FetchResponse;
use bingo_webworld::World;
use std::sync::Arc;

/// How many of a page's terms feed the neighbour-document feature space
/// of its successors (Section 3.4).
pub const NEIGHBOR_TERMS_KEPT: usize = 8;

/// A successfully fetched document entering the processing stages,
/// together with the crawl context the frontier policy attached to it.
#[derive(Debug, Clone)]
pub struct FetchedDoc {
    /// The simulated HTTP response.
    pub response: FetchResponse,
    /// Crawl depth the URL was fetched at.
    pub depth: u32,
    /// Topic of the enqueuing parent, if any.
    pub src_topic: Option<u32>,
    /// Anchor terms of the enqueuing link.
    pub anchor_terms: Vec<TermId>,
    /// Top terms of the enqueuing predecessor (neighbour feature space).
    pub neighbor_terms: Vec<TermId>,
    /// Timestamp recorded as `fetched_at`: virtual ms on the
    /// deterministic executor, run-relative wall ms on the threaded one.
    pub fetched_at: u64,
}

/// What the pipeline did with one fetched document.
#[derive(Debug, Clone)]
pub enum DocOutcome {
    /// Dropped by the MIME-type/size filter.
    MimeFiltered,
    /// An IP+path or IP+size fingerprint matched a previous response.
    DuplicateContent,
    /// Content conversion failed; the payload bytes were wasted.
    Malformed {
        /// Payload bytes fetched for nothing.
        wasted_bytes: u64,
    },
    /// Analyzed, judged and stored (document row + link rows).
    Stored {
        /// Page id of the stored document.
        page_id: u64,
        /// The analyzed document (the policy layer feeds successors
        /// from it: top terms, link enqueueing).
        doc: AnalyzedDocument,
        /// The classifier's verdict.
        judgment: Judgment,
    },
    /// Analyzed and judged, but the id was already in the store (the
    /// same page re-fetched through another alias or redirect chain).
    AlreadyStored {
        /// Page id that collided.
        page_id: u64,
        /// The analyzed document (still useful to the policy layer).
        doc: AnalyzedDocument,
        /// The classifier's verdict (judged before the collision was
        /// known, exactly like the per-document executor).
        judgment: Judgment,
    },
}

/// A thread-shareable batch classifier: the classify stage of the
/// real-thread executor. The BINGO! engine implements it with the
/// hierarchical SVM classifier (`bingo_core::TopicClassifier`).
pub trait BatchJudge: Sync {
    /// Judge a batch of analyzed documents with their crawl contexts.
    /// Must return exactly one judgment per document.
    fn judge_batch(&self, docs: &[AnalyzedDocument], ctxs: &[PageContext]) -> Vec<Judgment>;
}

impl<F> BatchJudge for F
where
    F: Fn(&AnalyzedDocument, &PageContext) -> Judgment + Sync,
{
    fn judge_batch(&self, docs: &[AnalyzedDocument], ctxs: &[PageContext]) -> Vec<Judgment> {
        docs.iter().zip(ctxs).map(|(d, c)| self(d, c)).collect()
    }
}

/// Per-stage pipeline metrics: document counts in and out of each
/// stage, batch sizes, queue depth, and wall-clock stage latencies
/// (volatile). Cloning shares the underlying atomics.
#[derive(Clone)]
pub struct PipelineMetrics {
    /// Documents entering the pipeline (successful fetches).
    pub fetched: Counter,
    /// Documents dropped by the MIME/size filter.
    pub mime_rejected: Counter,
    /// Documents dropped as response-fingerprint duplicates.
    pub duplicates: Counter,
    /// Documents converted to canonical HTML.
    pub converted: Counter,
    /// Documents whose conversion failed.
    pub malformed: Counter,
    /// Documents analyzed.
    pub analyzed: Counter,
    /// Documents classified.
    pub classified: Counter,
    /// Documents bulk-loaded into the store.
    pub loaded: Counter,
    /// Documents rejected at load time (id already stored).
    pub load_duplicates: Counter,
    /// Link rows emitted.
    pub link_rows: Counter,
    /// Batches processed.
    pub batches: Counter,
    /// Documents per batch.
    pub batch_docs: Arc<Histogram>,
    /// URLs waiting ahead of the pipeline (frontier or level queue).
    pub queue_depth: Gauge,
    /// Wall-clock cost of the convert stage per batch, µs (volatile).
    pub convert_wall_us: Arc<Histogram>,
    /// Wall-clock cost of the analyze stage per batch, µs (volatile).
    pub analyze_wall_us: Arc<Histogram>,
    /// Wall-clock cost of the classify stage per batch, µs (volatile).
    pub classify_wall_us: Arc<Histogram>,
    /// Wall-clock cost of the bulk-load stage per batch, µs (volatile).
    pub load_wall_us: Arc<Histogram>,
}

impl PipelineMetrics {
    /// Register all pipeline metrics in `registry`.
    pub fn new(registry: &Registry) -> Self {
        PipelineMetrics {
            fetched: registry.counter("pipeline.fetch.docs"),
            mime_rejected: registry.counter("pipeline.fetch.mime_rejected"),
            duplicates: registry.counter("pipeline.fetch.duplicates"),
            converted: registry.counter("pipeline.convert.docs"),
            malformed: registry.counter("pipeline.convert.malformed"),
            analyzed: registry.counter("pipeline.analyze.docs"),
            classified: registry.counter("pipeline.classify.docs"),
            loaded: registry.counter("pipeline.load.docs"),
            load_duplicates: registry.counter("pipeline.load.duplicates"),
            link_rows: registry.counter("pipeline.load.link_rows"),
            batches: registry.counter("pipeline.batches"),
            batch_docs: registry.histogram("pipeline.batch.docs"),
            queue_depth: registry.gauge("pipeline.queue.depth"),
            convert_wall_us: registry.wall_histogram("pipeline.convert.wall_us"),
            analyze_wall_us: registry.wall_histogram("pipeline.analyze.wall_us"),
            classify_wall_us: registry.wall_histogram("pipeline.classify.wall_us"),
            load_wall_us: registry.wall_histogram("pipeline.load.wall_us"),
        }
    }
}

/// The MIME-type/size admission filter (Section 4.2 "document type
/// management").
pub fn admit(registry: &ContentRegistry, response: &FetchResponse) -> bool {
    registry.can_handle(response.mime) && response.size <= response.mime.max_size() as u64
}

/// The crawl context handed to the judge for one fetched document.
pub fn page_context(fetched: &FetchedDoc) -> PageContext {
    PageContext {
        page_id: fetched.response.page_id,
        url: fetched.response.url.clone(),
        depth: fetched.depth,
        src_topic: fetched.src_topic,
        anchor_terms: fetched.anchor_terms.clone(),
        neighbor_terms: fetched.neighbor_terms.clone(),
        fetched_at: fetched.fetched_at,
    }
}

/// The most significant terms of an analyzed document (by frequency,
/// ties by term id): what the neighbour feature space of its successors
/// sees.
pub fn top_terms(doc: &AnalyzedDocument) -> Vec<TermId> {
    let mut by_freq: Vec<(TermId, u32)> = doc.term_freqs.clone();
    by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    by_freq
        .into_iter()
        .take(NEIGHBOR_TERMS_KEPT)
        .map(|(t, _)| t)
        .collect()
}

/// Build the store row of one analyzed, judged document.
pub fn document_row(
    world: &World,
    fetched: &FetchedDoc,
    doc: &AnalyzedDocument,
    judgment: &Judgment,
) -> DocumentRow {
    DocumentRow {
        id: fetched.response.page_id,
        url: fetched.response.url.clone(),
        host: bingo_graph::LinkSource::host_of(world, fetched.response.page_id),
        mime: fetched.response.mime,
        depth: fetched.depth,
        title: doc.title.clone(),
        topic: judgment.topic,
        confidence: judgment.confidence,
        term_freqs: doc.term_freqs.iter().map(|&(t, f)| (t.0, f)).collect(),
        size: fetched.response.size as usize,
        fetched_at: fetched.fetched_at,
    }
}

/// Link rows of a stored document: every out-link that resolves to a
/// page of the world, in document order.
pub fn link_rows(world: &World, page_id: u64, doc: &AnalyzedDocument) -> Vec<LinkRow> {
    doc.links
        .iter()
        .filter_map(|link| {
            world.resolve_url(&link.href).map(|to| LinkRow {
                from: page_id,
                to,
                to_url: link.href.clone(),
            })
        })
        .collect()
}

/// Drive one batch of fetched documents through convert → analyze →
/// classify → bulk-load. Returns one [`DocOutcome`] per input document,
/// in input order.
///
/// `mark_response` is the executor's response-fingerprint policy
/// (stages 2+3 of [`crate::Dedup`]); it runs between the MIME filter
/// and conversion, exactly where the per-document executor always ran
/// it. `judge` classifies the surviving documents in one call.
#[allow(clippy::too_many_arguments)]
pub fn process_batch<I: Interner + ?Sized>(
    world: &World,
    registry: &ContentRegistry,
    vocab: &mut I,
    loader: &mut BulkLoader,
    batch: Vec<FetchedDoc>,
    mut mark_response: impl FnMut(&FetchResponse) -> bool,
    judge: impl FnOnce(&[AnalyzedDocument], &[PageContext]) -> Vec<Judgment>,
    textproc: &TextprocMetrics,
    metrics: &PipelineMetrics,
) -> Vec<DocOutcome> {
    metrics.batches.inc();
    metrics.batch_docs.observe(batch.len() as u64);
    metrics.fetched.add(batch.len() as u64);
    let mut outcomes: Vec<Option<DocOutcome>> = batch.iter().map(|_| None).collect();

    // Stage: admit (MIME/size), fingerprint, convert.
    let timer = WallTimer::start();
    let mut slots: Vec<usize> = Vec::with_capacity(batch.len());
    let mut fetched: Vec<FetchedDoc> = Vec::with_capacity(batch.len());
    let mut htmls: Vec<String> = Vec::with_capacity(batch.len());
    for (i, item) in batch.into_iter().enumerate() {
        if !admit(registry, &item.response) {
            metrics.mime_rejected.inc();
            outcomes[i] = Some(DocOutcome::MimeFiltered);
            continue;
        }
        if !mark_response(&item.response) {
            metrics.duplicates.inc();
            outcomes[i] = Some(DocOutcome::DuplicateContent);
            continue;
        }
        match registry.to_html(item.response.mime, &item.response.payload) {
            Ok(html) => {
                metrics.converted.inc();
                slots.push(i);
                htmls.push(html);
                fetched.push(item);
            }
            Err(_) => {
                metrics.malformed.inc();
                outcomes[i] = Some(DocOutcome::Malformed {
                    wasted_bytes: item.response.payload.len() as u64,
                });
            }
        }
    }
    timer.observe_us(&metrics.convert_wall_us);

    // Stage: analyze.
    let timer = WallTimer::start();
    let docs: Vec<AnalyzedDocument> = htmls
        .iter()
        .map(|html| analyze_html_metered(html, vocab, textproc))
        .collect();
    metrics.analyzed.add(docs.len() as u64);
    timer.observe_us(&metrics.analyze_wall_us);

    // Stage: classify.
    let timer = WallTimer::start();
    let ctxs: Vec<PageContext> = fetched.iter().map(page_context).collect();
    let judgments = judge(&docs, &ctxs);
    assert_eq!(
        judgments.len(),
        docs.len(),
        "judge must return one judgment per document"
    );
    metrics.classified.add(docs.len() as u64);
    timer.observe_us(&metrics.classify_wall_us);

    // Stage: bulk-load. Documents flush in one batch; the store reports
    // id collisions back as errors, which decide which documents emit
    // link rows (a duplicate stores neither row nor links).
    let timer = WallTimer::start();
    for ((item, doc), judgment) in fetched.iter().zip(&docs).zip(&judgments) {
        loader.add_document(document_row(world, item, doc, judgment));
    }
    loader.flush();
    let mut dup_errors: FxHashMap<u64, usize> = FxHashMap::default();
    for err in loader.take_errors() {
        if let StoreError::DuplicateKey(id) = err {
            *dup_errors.entry(id).or_insert(0) += 1;
        }
    }
    // Within one batch the first occurrence of an id stores unless the
    // id was already in the store; every later occurrence is the
    // duplicate the errors describe.
    let mut occurrences: FxHashMap<u64, usize> = FxHashMap::default();
    for item in &fetched {
        *occurrences.entry(item.response.page_id).or_insert(0) += 1;
    }
    let mut first_seen: FxHashSet<u64> = FxHashSet::default();
    let mut links_emitted = 0u64;
    for ((slot, item), (doc, judgment)) in slots
        .iter()
        .zip(&fetched)
        .zip(docs.into_iter().zip(judgments))
    {
        let id = item.response.page_id;
        let stored =
            first_seen.insert(id) && dup_errors.get(&id).copied().unwrap_or(0) < occurrences[&id];
        if stored {
            for link in link_rows(world, id, &doc) {
                links_emitted += 1;
                loader.add_link(link);
            }
            metrics.loaded.inc();
            outcomes[*slot] = Some(DocOutcome::Stored {
                page_id: id,
                doc,
                judgment,
            });
        } else {
            metrics.load_duplicates.inc();
            outcomes[*slot] = Some(DocOutcome::AlreadyStored {
                page_id: id,
                doc,
                judgment,
            });
        }
    }
    loader.flush();
    metrics.link_rows.add(links_emitted);
    timer.observe_us(&metrics.load_wall_us);

    outcomes
        .into_iter()
        .map(|o| o.expect("every document has an outcome"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_store::DocumentStore;
    use bingo_textproc::Vocabulary;
    use bingo_webworld::gen::WorldConfig;
    use bingo_webworld::FetchOutcome;

    fn fetch_ok(world: &World, id: u64) -> Option<FetchedDoc> {
        match world.fetch(&world.url_of(id), 0) {
            FetchOutcome::Ok(response) => Some(FetchedDoc {
                response,
                depth: 1,
                src_topic: None,
                anchor_terms: Vec::new(),
                neighbor_terms: Vec::new(),
                fetched_at: 7,
            }),
            _ => None,
        }
    }

    #[test]
    fn batch_stores_documents_and_all_resolvable_links() {
        let world = WorldConfig::small_test(61).build();
        let store = DocumentStore::new();
        let mut loader = BulkLoader::with_batch_size(store.clone(), 4);
        let registry = Arc::new(Registry::new());
        let metrics = PipelineMetrics::new(&registry);
        let textproc = TextprocMetrics::new(registry.clone());
        let content = ContentRegistry::new();
        let mut vocab = Vocabulary::new();

        let batch: Vec<FetchedDoc> = (0..30u64).filter_map(|id| fetch_ok(&world, id)).collect();
        assert!(batch.len() >= 5, "world too hostile for the test");
        let n = batch.len();
        let expected_links: usize = batch
            .iter()
            .map(|f| {
                let html = content
                    .to_html(f.response.mime, &f.response.payload)
                    .unwrap();
                let doc = bingo_textproc::analyze_html(&html, &mut Vocabulary::new());
                link_rows(&world, f.response.page_id, &doc).len()
            })
            .sum();

        let outcomes = process_batch(
            &world,
            &content,
            &mut vocab,
            &mut loader,
            batch,
            |_| true,
            |docs, ctxs| {
                docs.iter()
                    .zip(ctxs)
                    .map(|(_, c)| Judgment {
                        topic: Some(0),
                        confidence: c.depth as f32,
                    })
                    .collect()
            },
            &textproc,
            &metrics,
        );
        assert_eq!(outcomes.len(), n);
        let stored = outcomes
            .iter()
            .filter(|o| matches!(o, DocOutcome::Stored { .. }))
            .count();
        assert_eq!(stored, n, "healthy fetches all store");
        assert_eq!(store.document_count(), n);
        assert_eq!(store.link_count(), expected_links);
        store.for_each_document(|row| {
            assert_eq!(row.depth, 1);
            assert_eq!(row.fetched_at, 7);
            assert_eq!(row.topic, Some(0));
        });
        let snap = registry.snapshot();
        assert_eq!(snap.counters["pipeline.load.docs"], n as u64);
        assert_eq!(snap.counters["pipeline.batches"], 1);
        assert_eq!(
            snap.counters["pipeline.load.link_rows"],
            expected_links as u64
        );
    }

    #[test]
    fn batch_outcomes_keep_input_order_and_classify_duplicates() {
        let world = WorldConfig::small_test(62).build();
        let store = DocumentStore::new();
        let mut loader = BulkLoader::with_batch_size(store.clone(), 256);
        let registry = Arc::new(Registry::new());
        let metrics = PipelineMetrics::new(&registry);
        let textproc = TextprocMetrics::new(registry.clone());
        let content = ContentRegistry::new();
        let mut vocab = Vocabulary::new();

        let a = fetch_ok(&world, 1).unwrap();
        let b = fetch_ok(&world, 2).unwrap();
        // The same page twice in one batch: the second occurrence must
        // come back `AlreadyStored`, not `Stored`.
        let batch = vec![a.clone(), b, a];
        let outcomes = process_batch(
            &world,
            &content,
            &mut vocab,
            &mut loader,
            batch,
            |_| true,
            |docs, ctxs| {
                docs.iter()
                    .zip(ctxs)
                    .map(|_| Judgment {
                        topic: None,
                        confidence: -0.5,
                    })
                    .collect()
            },
            &textproc,
            &metrics,
        );
        assert!(matches!(
            &outcomes[0],
            DocOutcome::Stored { page_id: 1, .. }
        ));
        assert!(matches!(
            &outcomes[1],
            DocOutcome::Stored { page_id: 2, .. }
        ));
        assert!(
            matches!(&outcomes[2], DocOutcome::AlreadyStored { page_id: 1, judgment, .. }
                if judgment.confidence == -0.5)
        );
        assert_eq!(store.document_count(), 2);
        assert_eq!(registry.snapshot().counters["pipeline.load.duplicates"], 1);
    }

    #[test]
    fn fingerprint_duplicates_skip_conversion() {
        let world = WorldConfig::small_test(63).build();
        let store = DocumentStore::new();
        let mut loader = BulkLoader::new(store.clone());
        let registry = Arc::new(Registry::new());
        let metrics = PipelineMetrics::new(&registry);
        let textproc = TextprocMetrics::new(registry.clone());
        let content = ContentRegistry::new();
        let mut vocab = Vocabulary::new();

        let batch = vec![fetch_ok(&world, 1).unwrap()];
        let outcomes = process_batch(
            &world,
            &content,
            &mut vocab,
            &mut loader,
            batch,
            |_| false, // every response is a known fingerprint
            |docs, _| {
                assert!(docs.is_empty(), "nothing reaches the judge");
                Vec::new()
            },
            &textproc,
            &metrics,
        );
        assert!(matches!(outcomes[0], DocOutcome::DuplicateContent));
        assert_eq!(store.document_count(), 0);
        assert_eq!(registry.snapshot().counters["pipeline.fetch.duplicates"], 1);
    }
}
