//! Property-based tests of the text-processing substrate: the HTML
//! parser and content handlers must survive arbitrary (including
//! adversarial) input, and the analyzer invariants must hold on any
//! document the web could serve.

use bingo_textproc::content::{make_pdf, make_word, make_zip, ContentRegistry};
use bingo_textproc::html;
use bingo_textproc::stem::porter_stem;
use bingo_textproc::tokenize::Tokenizer;
use bingo_textproc::vector::SparseVector;
use bingo_textproc::{analyze_html, MimeType, Vocabulary};
use proptest::prelude::*;

proptest! {
    // ---- HTML parser fuzzing ---------------------------------------

    #[test]
    fn html_parser_never_panics(input in ".{0,400}") {
        let doc = html::parse(&input);
        // Whitespace normalization: no doubled spaces, no leading/
        // trailing whitespace.
        prop_assert!(!doc.text.contains("  "));
        prop_assert_eq!(doc.text.trim(), doc.text.as_str());
        for link in &doc.links {
            prop_assert!(!link.anchor.contains("  "));
        }
    }

    #[test]
    fn html_parser_handles_tag_soup(
        pieces in proptest::collection::vec(
            prop_oneof![
                Just("<a href=\"http://x/\">".to_string()),
                Just("</a>".to_string()),
                Just("<script>".to_string()),
                Just("</script>".to_string()),
                Just("<!--".to_string()),
                Just("-->".to_string()),
                Just("<title>".to_string()),
                Just("</p".to_string()),
                Just("&amp;".to_string()),
                Just("&bogus;".to_string()),
                "[a-z ]{1,12}".prop_map(|s| s),
            ],
            0..30,
        )
    ) {
        let input: String = pieces.concat();
        let doc = html::parse(&input);
        // Every extracted link has a non-empty href.
        prop_assert!(doc.links.iter().all(|l| !l.href.is_empty()));
    }

    #[test]
    fn analyzer_counts_are_consistent(input in ".{0,300}") {
        let mut vocab = Vocabulary::new();
        let doc = analyze_html(&input, &mut vocab);
        let total: u32 = doc.term_freqs.iter().map(|&(_, f)| f).sum();
        prop_assert_eq!(total as usize, doc.terms.len());
        // Every interned term id is resolvable.
        for &t in &doc.terms {
            prop_assert!((t.0 as usize) < vocab.len());
        }
        // term_freqs sorted strictly.
        for w in doc.term_freqs.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    // ---- Tokenizer ----------------------------------------------------

    #[test]
    fn tokens_are_lowercase_alpha_bounded(input in ".{0,200}") {
        let t = Tokenizer::default();
        for tok in t.tokens(&input) {
            prop_assert!(tok.len() >= 2 && tok.len() <= 32);
            prop_assert!(tok.chars().all(|c| c.is_alphabetic()));
            prop_assert_eq!(tok.to_lowercase(), tok.clone());
        }
    }

    // ---- Stemmer under token conditions ------------------------------

    #[test]
    fn stemming_tokens_never_panics(input in "[a-zA-Zéüß ]{0,120}") {
        let t = Tokenizer::default();
        for tok in t.tokens(&input) {
            let stem = porter_stem(&tok);
            prop_assert!(!stem.is_empty());
        }
    }

    // ---- Content handlers ---------------------------------------------

    #[test]
    fn content_registry_never_panics(payload in ".{0,300}") {
        let reg = ContentRegistry::new();
        for mime in [
            MimeType::Html, MimeType::Plain, MimeType::Pdf, MimeType::Word,
            MimeType::PowerPoint, MimeType::Zip, MimeType::Video, MimeType::Other,
        ] {
            let _ = reg.to_html(mime, &payload);
        }
    }

    #[test]
    fn envelopes_round_trip(text in "[a-zA-Z0-9 .,]{0,200}") {
        let reg = ContentRegistry::new();
        let pdf = reg.to_html(MimeType::Pdf, &make_pdf(&text)).unwrap();
        prop_assert!(pdf.contains(&text));
        let word = reg.to_html(MimeType::Word, &make_word(&text)).unwrap();
        prop_assert!(word.contains(&text));
        let zip = reg
            .to_html(MimeType::Zip, &make_zip(&[&text, "second entry"]))
            .unwrap();
        prop_assert!(zip.contains(&text));
        prop_assert!(zip.contains("second entry"));
    }

    // ---- Sparse vectors (crate-level remap/filter laws) ---------------

    #[test]
    fn remap_drops_and_shifts_consistently(
        pairs in proptest::collection::vec((0u32..100, 0.1f32..5.0), 0..30),
    ) {
        let v = SparseVector::from_pairs(pairs);
        // Injective shift map keeps all entries.
        let shifted = v.remap(|i| Some(i + 1000));
        prop_assert_eq!(shifted.nnz(), v.nnz());
        // Drop-everything map empties.
        let none = v.remap(|_| None);
        prop_assert!(none.is_empty());
        // filter == remap-with-identity-on-kept.
        let f1 = v.filter_indices(|i| i % 2 == 0);
        let f2 = v.remap(|i| (i % 2 == 0).then_some(i));
        prop_assert_eq!(f1.entries(), f2.entries());
    }

    #[test]
    fn scale_and_norm_interact_linearly(
        pairs in proptest::collection::vec((0u32..50, -3.0f32..3.0), 1..20),
        k in 0.1f32..4.0,
    ) {
        let v = SparseVector::from_pairs(pairs);
        let mut scaled = v.clone();
        scaled.scale(k);
        prop_assert!((scaled.norm() - k * v.norm()).abs() < 1e-2 * (1.0 + v.norm()));
    }
}

/// Deterministic (non-proptest) regression cases for the HTML parser
/// found worth pinning.
#[test]
fn parser_pinned_edge_cases() {
    // Unterminated comment swallows the rest.
    let d = html::parse("visible<!-- hidden forever");
    assert_eq!(d.text, "visible");
    // Unterminated script likewise.
    let d = html::parse("<script>alert(1)");
    assert_eq!(d.text, "");
    // Attribute value with spaces in quotes.
    let d = html::parse("<a href=\"http://x/a b\">t</a>");
    assert_eq!(d.links[0].href, "http://x/a b");
    // '<' not starting a tag.
    let d = html::parse("1 < 2 and 3 > 2");
    assert!(d.text.starts_with("1"));
}
