//! Property-based tests of the sharded shared vocabulary: the
//! canonicalized term-id assignment must not depend on thread count,
//! scheduling, or the order documents arrive in.

use bingo_textproc::{analyze_html, Interner, SharedVocabulary, TermId, Vocabulary};
use proptest::prelude::*;

/// Analyze `docs` on `threads` OS threads against one shared dictionary
/// and return its canonical form plus the canonicalized term ids of
/// every document (sorted so results are comparable across runs).
fn analyze_sharded(
    docs: &[String],
    seed: &Vocabulary,
    threads: usize,
) -> (Vocabulary, Vec<Vec<u32>>) {
    let shared = SharedVocabulary::seeded(seed);
    let mut raw_ids: Vec<Vec<TermId>> = vec![Vec::new(); docs.len()];
    std::thread::scope(|scope| {
        let mut rest = &mut raw_ids[..];
        let chunk = docs.len().div_ceil(threads.max(1)).max(1);
        for batch in docs.chunks(chunk) {
            let (head, tail) = rest.split_at_mut(batch.len().min(rest.len()));
            rest = tail;
            let shared = &shared;
            scope.spawn(move || {
                for (slot, html) in head.iter_mut().zip(batch) {
                    let doc = analyze_html(html, &mut &*shared);
                    *slot = doc.terms;
                }
            });
        }
    });
    let (canon, map) = shared.canonicalize();
    let per_doc = raw_ids
        .into_iter()
        .map(|terms| {
            let mut ids: Vec<u32> = terms.into_iter().map(|t| map[t.0 as usize]).collect();
            ids.sort_unstable();
            ids
        })
        .collect();
    (canon, per_doc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The satellite property: analyzing a shuffled corpus at 1, 2 and 8
    /// threads produces the same canonical vocabulary and the same
    /// canonical term ids per document.
    #[test]
    fn canonical_ids_independent_of_thread_count_and_order(
        words in proptest::collection::vec("[a-z]{2,8}", 4..40),
        shuffle in proptest::collection::vec(any::<u64>(), 12),
        seed_words in proptest::collection::vec("[a-z]{2,8}", 0..6),
    ) {
        // Build a small corpus of HTML documents over the word pool.
        let docs: Vec<String> = (0..12usize)
            .map(|i| {
                let body: Vec<&str> = (0..6)
                    .map(|j| words[(i * 7 + j * 5 + shuffle[i] as usize) % words.len()].as_str())
                    .collect();
                format!("<html><body>{}</body></html>", body.join(" "))
            })
            .collect();
        let mut seed = Vocabulary::new();
        for w in &seed_words {
            Interner::intern(&mut seed, w);
        }

        let mut shuffled = docs.clone();
        // Deterministic shuffle driven by the generated entropy.
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, shuffle[i % shuffle.len()] as usize % (i + 1));
        }

        let (v1, ids1) = analyze_sharded(&docs, &seed, 1);
        let (v2, mut ids2) = analyze_sharded(&shuffled, &seed, 2);
        let (v8, mut ids8) = analyze_sharded(&shuffled, &seed, 8);

        // Same canonical dictionary: identical (id, term) sequences.
        let terms = |v: &Vocabulary| -> Vec<String> {
            v.iter().map(|(_, t)| t.to_string()).collect()
        };
        prop_assert_eq!(terms(&v1), terms(&v2));
        prop_assert_eq!(terms(&v1), terms(&v8));
        // Seed ids survive in place.
        for (id, term) in seed.iter() {
            prop_assert_eq!(v1.lookup(term), Some(id));
        }

        // Same canonical ids per document regardless of interleaving.
        // The shuffled runs analyzed a permuted corpus; compare as sets
        // of per-document id lists.
        let mut ids1 = ids1;
        ids1.sort();
        ids2.sort();
        ids8.sort();
        prop_assert_eq!(&ids1, &ids2);
        prop_assert_eq!(&ids1, &ids8);
    }
}
