//! Term dictionary: interning stemmed terms to dense [`TermId`]s shared
//! across the whole engine (documents, classifiers, indexes).
//!
//! Two interners implement the [`Interner`] contract:
//!
//! * [`Vocabulary`] — the single-threaded dictionary with sequential
//!   first-encounter ids, used by the deterministic crawler and the
//!   engine,
//! * [`SharedVocabulary`] — a sharded concurrent dictionary for the
//!   real-thread pipeline: all workers intern into one shared term space
//!   through `&self`, so a batch analyzed on any thread produces ids
//!   every other thread understands.
//!
//! Concurrent interning assigns raw ids in arrival order, which depends
//! on scheduling. Both dictionaries therefore support *canonicalization*:
//! seed terms (interned before the concurrent phase, e.g. by classifier
//! training) keep their ids, and every term interned afterwards is
//! renumbered by lexicographic rank. Two runs that intern the same term
//! set — in any order, on any number of threads — canonicalize to the
//! same id assignment.
//!
//! For memory-bounded crawls the term *text* — the dictionary's only
//! unbounded allocation — can move to disk:
//! [`SharedVocabulary::with_spill`] keeps a resident hot tier per shard
//! and flushes overflow to an append-only term log with a resident
//! hash → offset index. Interning stays O(1) amortized (the index is
//! consulted first; the log is read only to confirm a probable match),
//! answers stay exact, and a dictionary that never exceeds the byte
//! budget behaves byte-identically to a resident one. Logs are
//! run-scratch: snapshots materialize every term, and stale logs from
//! aborted runs are swept at construction.

use crate::fxhash::{self, FxHashMap};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// A dense identifier for an interned term.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TermId(pub u32);

/// Bidirectional term dictionary.
///
/// Interning is append-only; ids are stable for the lifetime of the
/// vocabulary, which the store and the classifiers rely on.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, TermId>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its stable id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), id);
        id
    }

    /// Look up an already-interned term.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// The string for `id`. Panics on an id from another vocabulary.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.0 as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Rebuild the reverse index after deserialization (the map is skipped
    /// during serialization because it is derivable).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), TermId(i as u32)))
            .collect();
    }

    /// Iterate `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str()))
    }

    /// Canonical renumbering: ids below `seed_len` stay fixed; every
    /// later term is renumbered by lexicographic rank starting at
    /// `seed_len`. Returns the old-id → canonical-id table (index = old
    /// id). See the module docs — two interning orders over the same
    /// term set produce the same canonical ids.
    pub fn canonical_map(&self, seed_len: usize) -> Vec<u32> {
        canonical_map_of(&self.terms, seed_len)
    }
}

/// Shared canonicalization rule over an id-ordered term list.
fn canonical_map_of(terms: &[String], seed_len: usize) -> Vec<u32> {
    let seed_len = seed_len.min(terms.len());
    let mut tail: Vec<usize> = (seed_len..terms.len()).collect();
    tail.sort_unstable_by(|&a, &b| terms[a].cmp(&terms[b]));
    let mut map = vec![0u32; terms.len()];
    for (id, slot) in map.iter_mut().enumerate().take(seed_len) {
        *slot = id as u32;
    }
    for (rank, &old) in tail.iter().enumerate() {
        map[old] = (seed_len + rank) as u32;
    }
    map
}

/// Number of shards in a [`SharedVocabulary`]; a power of two so the
/// shard of a term is a cheap mask of its hash.
const SHARDS: usize = 16;

/// File-name prefix of vocabulary spill logs (`vocab-3.spill`, …).
pub const VOCAB_SPILL_PREFIX: &str = "vocab-";
const VOCAB_SPILL_SUFFIX: &str = ".spill";

/// Estimated resident overhead per hot term beyond its bytes (hash-map
/// entry, string header) — what the byte budget charges per entry.
const TERM_OVERHEAD: usize = 48;

/// Spill policy for a [`SharedVocabulary`]: resident string bytes are
/// capped, overflow moves to per-shard append-only term logs.
#[derive(Debug, Clone)]
pub struct VocabSpillConfig {
    /// Directory the term logs live in (created if missing; stale
    /// `vocab-*.spill` files from an aborted run are swept first). Use
    /// a dedicated directory per dictionary — logs are keyed by shard
    /// number only.
    pub dir: PathBuf,
    /// Resident term-byte budget across all shards. A shard flushes
    /// its hot tier to its log once it exceeds its share; flushed
    /// terms keep costing ~16 bytes of resident index each, so the
    /// true resident footprint is `hot_bytes_cap` plus the offset
    /// index, not zero.
    pub hot_bytes_cap: usize,
}

impl VocabSpillConfig {
    /// Defaults sized for multi-million-page crawls: 32 MiB of
    /// resident term text.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        VocabSpillConfig {
            dir: dir.into(),
            hot_bytes_cap: 32 << 20,
        }
    }
}

/// Deterministic spill counters of a [`SharedVocabulary`] (all zero
/// while everything fits under the cap — and always, for an unspilled
/// dictionary).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VocabSpillStats {
    /// Terms resident in the hot tiers.
    pub hot_terms: usize,
    /// Estimated resident bytes of hot-tier term text.
    pub hot_bytes: usize,
    /// Terms living in spill logs (resident as 16-byte index entries).
    pub spilled_terms: usize,
    /// Hot-tier flushes into the logs so far.
    pub flushes: u64,
    /// Log reads issued to confirm a probable match.
    pub disk_probes: u64,
    /// Log reads that confirmed the term.
    pub disk_hits: u64,
    /// Failed log reads/writes (answers stayed exact; affected terms
    /// stayed resident).
    pub io_errors: u64,
    /// Stale spill files swept at construction.
    pub stale_reaped: u64,
}

/// One shard's append-only term log plus its resident offset index.
/// Records are `[u32 id][u32 len][len bytes]`, little-endian, appended
/// on flush. The index maps a term's hash to the candidate records
/// (more than one only on a 64-bit hash collision); membership is
/// confirmed by reading the string back, so answers are exact. Logs
/// are run-scratch: [`SharedVocabulary::snapshot`] materializes every
/// term, and stale logs are swept at construction, never read.
struct ColdLog {
    path: PathBuf,
    /// Open handle, created on first flush.
    file: Option<File>,
    /// term-hash → candidate `(byte offset of the string, len, id)`.
    index: FxHashMap<u64, Vec<(u64, u32, TermId)>>,
    /// Committed length of the log — the next append offset. Only
    /// advances after a fully successful write, so indexed reads never
    /// see a torn record.
    tail: u64,
    /// Per-shard share of [`VocabSpillConfig::hot_bytes_cap`].
    hot_bytes_cap: usize,
    spilled_terms: usize,
    flushes: u64,
    disk_probes: u64,
    disk_hits: u64,
    io_errors: u64,
}

impl ColdLog {
    fn new(dir: &Path, shard: usize, hot_bytes_cap: usize) -> Self {
        ColdLog {
            path: dir.join(format!("{VOCAB_SPILL_PREFIX}{shard}{VOCAB_SPILL_SUFFIX}")),
            file: None,
            index: FxHashMap::default(),
            tail: 0,
            hot_bytes_cap,
            spilled_terms: 0,
            flushes: 0,
            disk_probes: 0,
            disk_hits: 0,
            io_errors: 0,
        }
    }

    /// Exact spilled-term lookup: index candidates, then a log read to
    /// confirm the bytes.
    fn find(&mut self, term: &str) -> Option<TermId> {
        let candidates = self.index.get(&fxhash::hash_one(&term))?.clone();
        for (off, len, id) in candidates {
            if len as usize != term.len() {
                continue;
            }
            let file = self.file.as_ref()?;
            self.disk_probes += 1;
            let mut buf = vec![0u8; len as usize];
            match file.read_exact_at(&mut buf, off) {
                Ok(()) if buf == term.as_bytes() => {
                    self.disk_hits += 1;
                    return Some(id);
                }
                Ok(()) => {}
                Err(_) => self.io_errors += 1,
            }
        }
        None
    }

    /// Append the whole hot tier to the log (record order: by id, so
    /// single-threaded runs produce byte-identical logs) and index it.
    /// On any write error the hot tier is kept resident — the budget
    /// is exceeded but answers stay exact.
    fn flush(&mut self, hot: &mut FxHashMap<String, TermId>, hot_bytes: &mut usize) {
        if hot.is_empty() {
            return;
        }
        if self.file.is_none() {
            match OpenOptions::new()
                .create(true)
                .read(true)
                .append(true)
                .open(&self.path)
            {
                Ok(f) => self.file = Some(f),
                Err(_) => {
                    self.io_errors += 1;
                    return;
                }
            }
        }
        let mut entries: Vec<(&str, TermId)> =
            hot.iter().map(|(t, &id)| (t.as_str(), id)).collect();
        entries.sort_unstable_by_key(|&(_, id)| id.0);
        let mut buf = Vec::new();
        let mut located: Vec<(u64, u64, u32, TermId)> = Vec::with_capacity(entries.len());
        for (term, id) in entries {
            let record_start = self.tail + buf.len() as u64;
            buf.extend_from_slice(&id.0.to_le_bytes());
            buf.extend_from_slice(&(term.len() as u32).to_le_bytes());
            buf.extend_from_slice(term.as_bytes());
            located.push((
                fxhash::hash_one(&term),
                record_start + 8,
                term.len() as u32,
                id,
            ));
        }
        let file = self.file.as_mut().expect("opened above");
        if file.write_all(&buf).is_err() {
            self.io_errors += 1;
            return;
        }
        for (hash, off, len, id) in located {
            self.index.entry(hash).or_default().push((off, len, id));
        }
        self.spilled_terms += hot.len();
        self.flushes += 1;
        self.tail += buf.len() as u64;
        hot.clear();
        *hot_bytes = 0;
    }

    /// Every `(id, term)` in the log, in append order. Panics on an
    /// unreadable or torn log — callers are the snapshot paths, where
    /// losing spilled terms would silently corrupt the dictionary.
    fn read_all(&self) -> Vec<(TermId, String)> {
        if self.spilled_terms == 0 {
            return Vec::new();
        }
        let bytes = std::fs::read(&self.path).expect("vocab spill log unreadable");
        let mut out = Vec::with_capacity(self.spilled_terms);
        let mut off = 0usize;
        while (off as u64) < self.tail {
            let id = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let len = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap()) as usize;
            let term = std::str::from_utf8(&bytes[off + 8..off + 8 + len])
                .expect("vocab spill log corrupt")
                .to_string();
            out.push((TermId(id), term));
            off += 8 + len;
        }
        out
    }
}

/// One shard of a [`SharedVocabulary`]: the resident tier plus the
/// optional spill log.
#[derive(Default)]
struct Shard {
    hot: FxHashMap<String, TermId>,
    /// Estimated resident bytes of `hot` (term bytes + [`TERM_OVERHEAD`]
    /// each).
    hot_bytes: usize,
    cold: Option<ColdLog>,
}

impl Shard {
    /// Resolve a term across both tiers.
    fn resolve(&mut self, term: &str) -> Option<TermId> {
        if let Some(&id) = self.hot.get(term) {
            return Some(id);
        }
        self.cold.as_mut()?.find(term)
    }

    /// Insert a term known to be absent, flushing past the byte cap.
    fn insert(&mut self, term: &str, id: TermId) {
        self.hot.insert(term.to_string(), id);
        self.hot_bytes += term.len() + TERM_OVERHEAD;
        if let Some(cold) = &mut self.cold {
            if self.hot_bytes >= cold.hot_bytes_cap {
                cold.flush(&mut self.hot, &mut self.hot_bytes);
            }
        }
    }
}

/// Delete leftover `vocab-*.spill` files (an aborted run's scratch).
fn reap_stale_vocab_files(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut reaped = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(VOCAB_SPILL_PREFIX)
            && name.ends_with(VOCAB_SPILL_SUFFIX)
            && std::fs::remove_file(entry.path()).is_ok()
        {
            reaped += 1;
        }
    }
    reaped
}

/// A concurrency-safe sharded term dictionary (Section 4.1: all crawler
/// threads feed one document analyzer term space).
///
/// Interning takes `&self`: the term's hash picks a shard, the shard's
/// mutex guards its slice of the dictionary, and a global atomic hands
/// out fresh ids. Ids are unique and stable for the lifetime of the
/// dictionary but *arrival-ordered* — use [`SharedVocabulary::canonicalize`]
/// to renumber them deterministically after a concurrent phase.
///
/// ```
/// use bingo_textproc::{SharedVocabulary, Vocabulary};
/// let mut seed = Vocabulary::new();
/// seed.intern("databas");
/// let shared = SharedVocabulary::seeded(&seed);
/// let id = shared.intern("crawl");
/// assert_eq!(shared.intern("crawl"), id);
/// assert_eq!(shared.intern("databas").0, 0, "seed ids are preserved");
/// ```
pub struct SharedVocabulary {
    shards: Vec<Mutex<Shard>>,
    next_id: AtomicU32,
    seed_len: u32,
    /// Stale spill files swept when this dictionary was constructed.
    stale_reaped: u64,
}

impl Default for SharedVocabulary {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedVocabulary {
    /// Empty shared dictionary, fully resident (no cap, no disk).
    pub fn new() -> Self {
        SharedVocabulary {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            next_id: AtomicU32::new(0),
            seed_len: 0,
            stale_reaped: 0,
        }
    }

    /// Empty shared dictionary that spills term text past
    /// `cfg.hot_bytes_cap`. Sweeps stale `vocab-*.spill` files in
    /// `cfg.dir` first ([`SharedVocabulary::spill_stats`] reports how
    /// many).
    pub fn with_spill(cfg: &VocabSpillConfig) -> Self {
        std::fs::create_dir_all(&cfg.dir).expect("vocab spill dir");
        let stale_reaped = reap_stale_vocab_files(&cfg.dir);
        let per_shard_cap = (cfg.hot_bytes_cap / SHARDS).max(1);
        SharedVocabulary {
            shards: (0..SHARDS)
                .map(|i| {
                    Mutex::new(Shard {
                        cold: Some(ColdLog::new(&cfg.dir, i, per_shard_cap)),
                        ..Shard::default()
                    })
                })
                .collect(),
            next_id: AtomicU32::new(0),
            seed_len: 0,
            stale_reaped,
        }
    }

    /// Shared dictionary pre-loaded with `seed`'s terms *keeping their
    /// ids*, so vectors produced against the seed (trained classifiers,
    /// stored rows) remain valid. Canonicalization never renumbers the
    /// seed range.
    pub fn seeded(seed: &Vocabulary) -> Self {
        Self::new().seed_from(seed)
    }

    /// [`SharedVocabulary::seeded`] over a spilling dictionary — seed
    /// terms count against the byte budget like any others.
    pub fn seeded_with_spill(seed: &Vocabulary, cfg: &VocabSpillConfig) -> Self {
        Self::with_spill(cfg).seed_from(seed)
    }

    fn seed_from(self, seed: &Vocabulary) -> Self {
        for (id, term) in seed.iter() {
            let shard = self.shard_of(term);
            self.shards[shard]
                .lock()
                .expect("vocab shard poisoned")
                .insert(term, id);
        }
        self.next_id.store(seed.len() as u32, Ordering::Relaxed);
        SharedVocabulary {
            seed_len: seed.len() as u32,
            ..self
        }
    }

    fn shard_of(&self, term: &str) -> usize {
        fxhash::hash_one(&term) as usize & (SHARDS - 1)
    }

    /// Resolve `term` without interning it — the read-only query-path
    /// lookup used by the portal service while crawler threads keep
    /// writing. Touches only the term's shard mutex, never the id
    /// allocator.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.shards[self.shard_of(term)]
            .lock()
            .expect("vocab shard poisoned")
            .resolve(term)
    }

    /// Intern `term` through a shared reference; safe to call from any
    /// number of threads.
    pub fn intern(&self, term: &str) -> TermId {
        let mut shard = self.shards[self.shard_of(term)]
            .lock()
            .expect("vocab shard poisoned");
        if let Some(id) = shard.resolve(term) {
            return id;
        }
        let id = TermId(self.next_id.fetch_add(1, Ordering::Relaxed));
        shard.insert(term, id);
        id
    }

    /// Number of distinct terms (seed + interned).
    pub fn len(&self) -> usize {
        self.next_id.load(Ordering::Relaxed) as usize
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of seed terms whose ids are immutable.
    pub fn seed_len(&self) -> usize {
        self.seed_len as usize
    }

    /// Aggregated spill counters across the shards. All zero for a
    /// fully resident dictionary.
    pub fn spill_stats(&self) -> VocabSpillStats {
        let mut agg = VocabSpillStats {
            stale_reaped: self.stale_reaped,
            ..VocabSpillStats::default()
        };
        for shard in &self.shards {
            let shard = shard.lock().expect("vocab shard poisoned");
            agg.hot_terms += shard.hot.len();
            agg.hot_bytes += shard.hot_bytes;
            if let Some(cold) = &shard.cold {
                agg.spilled_terms += cold.spilled_terms;
                agg.flushes += cold.flushes;
                agg.disk_probes += cold.disk_probes;
                agg.disk_hits += cold.disk_hits;
                agg.io_errors += cold.io_errors;
            }
        }
        agg
    }

    /// Freeze into an ordinary [`Vocabulary`] in raw (arrival-order)
    /// ids. Spilled terms are materialized from the logs, so the
    /// snapshot is self-contained and recovery never depends on spill
    /// files.
    pub fn snapshot(&self) -> Vocabulary {
        let mut terms = vec![String::new(); self.len()];
        for shard in &self.shards {
            let shard = shard.lock().expect("vocab shard poisoned");
            for (term, &TermId(id)) in shard.hot.iter() {
                terms[id as usize] = term.clone();
            }
            if let Some(cold) = &shard.cold {
                for (TermId(id), term) in cold.read_all() {
                    terms[id as usize] = term;
                }
            }
        }
        let mut vocab = Vocabulary {
            terms,
            index: FxHashMap::default(),
        };
        vocab.rebuild_index();
        vocab
    }

    /// Canonicalize (see the module docs): returns the renumbered
    /// dictionary plus the raw-id → canonical-id table, suitable for
    /// rewriting stored rows via `DocumentStore::remap_terms`.
    pub fn canonicalize(&self) -> (Vocabulary, Vec<u32>) {
        let raw = self.snapshot();
        let map = canonical_map_of(&raw.terms, self.seed_len as usize);
        let mut terms = vec![String::new(); raw.terms.len()];
        for (old, term) in raw.terms.into_iter().enumerate() {
            terms[map[old] as usize] = term;
        }
        let mut vocab = Vocabulary {
            terms,
            index: FxHashMap::default(),
        };
        vocab.rebuild_index();
        (vocab, map)
    }
}

/// The interning contract shared by both dictionaries, letting the
/// document analyzer run identically on the deterministic path
/// (`&mut Vocabulary`) and the concurrent pipeline
/// (`&mut &SharedVocabulary`).
pub trait Interner {
    /// Intern `term`, returning its stable id.
    fn intern(&mut self, term: &str) -> TermId;
    /// Number of distinct terms interned so far.
    fn term_count(&self) -> usize;
}

impl Interner for Vocabulary {
    fn intern(&mut self, term: &str) -> TermId {
        Vocabulary::intern(self, term)
    }

    fn term_count(&self) -> usize {
        self.len()
    }
}

impl Interner for &SharedVocabulary {
    fn intern(&mut self, term: &str) -> TermId {
        SharedVocabulary::intern(self, term)
    }

    fn term_count(&self) -> usize {
        self.len()
    }
}

/// Read-only term resolution shared by both dictionaries, so the query
/// path can resolve stems against whichever dictionary the crawl writes:
/// the deterministic crawler's [`Vocabulary`] or the threaded pipeline's
/// [`SharedVocabulary`].
pub trait TermLookup: Sync {
    /// Resolve a (stemmed) term to its id, or `None` if never interned.
    fn lookup_term(&self, term: &str) -> Option<TermId>;
}

impl TermLookup for Vocabulary {
    fn lookup_term(&self, term: &str) -> Option<TermId> {
        self.lookup(term)
    }
}

impl TermLookup for SharedVocabulary {
    fn lookup_term(&self, term: &str) -> Option<TermId> {
        self.lookup(term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("aries");
        let b = v.intern("aries");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        let ids: Vec<TermId> = ["a", "b", "c"].iter().map(|t| v.intern(t)).collect();
        assert_eq!(ids, vec![TermId(0), TermId(1), TermId(2)]);
        assert_eq!(v.term(TermId(1)), "b");
    }

    #[test]
    fn lookup_roundtrip() {
        let mut v = Vocabulary::new();
        v.intern("recovery");
        assert_eq!(v.lookup("recovery"), Some(TermId(0)));
        assert_eq!(v.lookup("missing"), None);
    }

    #[test]
    fn shared_vocab_interns_concurrently_and_canonicalizes() {
        let mut seed = Vocabulary::new();
        seed.intern("zeta");
        seed.intern("alpha");
        let shared = SharedVocabulary::seeded(&seed);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    for i in 0..50 {
                        shared.intern(&format!("term{:02}", (i * 7 + t) % 60));
                        shared.intern("alpha");
                    }
                });
            }
        });
        let (canon, map) = shared.canonicalize();
        // Seed ids survive untouched, in place.
        assert_eq!(canon.lookup("zeta"), Some(TermId(0)));
        assert_eq!(canon.lookup("alpha"), Some(TermId(1)));
        assert_eq!(&map[..2], &[0, 1]);
        // New terms are densely renumbered in lexicographic order.
        let new_terms: Vec<&str> = canon.iter().skip(2).map(|(_, t)| t).collect();
        let mut sorted = new_terms.clone();
        sorted.sort_unstable();
        assert_eq!(new_terms, sorted);
        // The map is a bijection consistent with the canonical dictionary.
        let raw = shared.snapshot();
        for (TermId(old), term) in raw.iter() {
            assert_eq!(canon.term(TermId(map[old as usize])), term);
        }
    }

    #[test]
    fn canonical_map_matches_across_interning_orders() {
        let words = ["delta", "charlie", "bravo", "echo", "alpha"];
        let mut a = Vocabulary::new();
        let mut b = Vocabulary::new();
        for w in words {
            a.intern(w);
        }
        for w in words.iter().rev() {
            b.intern(w);
        }
        let (ma, mb) = (a.canonical_map(0), b.canonical_map(0));
        for w in words {
            let ca = ma[a.lookup(w).unwrap().0 as usize];
            let cb = mb[b.lookup(w).unwrap().0 as usize];
            assert_eq!(ca, cb, "canonical id of {w} differs");
        }
    }

    #[test]
    fn interner_trait_covers_both_dictionaries() {
        fn intern_all<I: Interner>(i: &mut I) -> Vec<TermId> {
            ["x", "y", "x"].iter().map(|t| i.intern(t)).collect()
        }
        let mut vocab = Vocabulary::new();
        let via_vocab = intern_all(&mut vocab);
        let shared = SharedVocabulary::new();
        let via_shared = intern_all(&mut &shared);
        assert_eq!(via_vocab, via_shared);
        assert_eq!(vocab.len(), 2);
        assert_eq!((&shared).term_count(), 2);
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bingo-vocab-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// A budget small enough that every test exercises the disk path.
    fn tiny_spill(dir: &Path) -> VocabSpillConfig {
        VocabSpillConfig {
            dir: dir.to_path_buf(),
            hot_bytes_cap: SHARDS * (TERM_OVERHEAD + 8),
        }
    }

    #[test]
    fn spilling_vocab_matches_resident_vocab() {
        let dir = temp_dir("equiv");
        let resident = SharedVocabulary::new();
        let spilled = SharedVocabulary::with_spill(&tiny_spill(&dir));
        // Same single-threaded interning sequence → same ids, exact
        // idempotence across the spill boundary.
        for i in 0..300u32 {
            let term = format!("term{:03}", i % 120);
            assert_eq!(spilled.intern(&term), resident.intern(&term), "{term}");
        }
        assert_eq!(spilled.len(), resident.len());
        let stats = spilled.spill_stats();
        assert!(stats.flushes > 0, "tiny budget must flush: {stats:?}");
        assert!(stats.spilled_terms > 0);
        assert!(stats.disk_hits > 0, "repeats resolve from the log");
        assert_eq!(stats.io_errors, 0);
        for i in 0..120u32 {
            let term = format!("term{i:03}");
            assert_eq!(spilled.lookup(&term), resident.lookup(&term));
        }
        assert_eq!(spilled.lookup("never-interned"), None);
        // Snapshots materialize the logs and agree byte for byte.
        assert_eq!(
            serde_json::to_string(&spilled.snapshot()).unwrap(),
            serde_json::to_string(&resident.snapshot()).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spilling_vocab_canonicalizes_and_keeps_seed_ids() {
        let dir = temp_dir("canon");
        let mut seed = Vocabulary::new();
        seed.intern("zeta");
        seed.intern("alpha");
        let shared = SharedVocabulary::seeded_with_spill(&seed, &tiny_spill(&dir));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    for i in 0..50 {
                        shared.intern(&format!("term{:02}", (i * 7 + t) % 60));
                    }
                });
            }
        });
        let (canon, map) = shared.canonicalize();
        assert_eq!(canon.lookup("zeta"), Some(TermId(0)));
        assert_eq!(canon.lookup("alpha"), Some(TermId(1)));
        assert_eq!(canon.len(), 62);
        // The map is a bijection consistent with the canonical form.
        let raw = shared.snapshot();
        for (TermId(old), term) in raw.iter() {
            assert_eq!(canon.term(TermId(map[old as usize])), term);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_vocab_spill_files_swept_at_construction() {
        let dir = temp_dir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("vocab-0.spill"), b"stale").unwrap();
        std::fs::write(dir.join("vocab-7.spill"), b"stale").unwrap();
        std::fs::write(dir.join("slot-1.spill"), b"not ours").unwrap();
        let v = SharedVocabulary::with_spill(&tiny_spill(&dir));
        assert_eq!(v.spill_stats().stale_reaped, 2);
        assert!(dir.join("slot-1.spill").exists(), "frontier files spared");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rebuild_index_after_clearing() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocabulary = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.lookup("y"), Some(TermId(1)));
        assert_eq!(back.intern("x"), TermId(0));
    }
}
