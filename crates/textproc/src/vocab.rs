//! Term dictionary: interning stemmed terms to dense [`TermId`]s shared
//! across the whole engine (documents, classifiers, indexes).

use crate::fxhash::FxHashMap;
use serde::{Deserialize, Serialize};

/// A dense identifier for an interned term.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TermId(pub u32);

/// Bidirectional term dictionary.
///
/// Interning is append-only; ids are stable for the lifetime of the
/// vocabulary, which the store and the classifiers rely on.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, TermId>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its stable id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), id);
        id
    }

    /// Look up an already-interned term.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// The string for `id`. Panics on an id from another vocabulary.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.0 as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Rebuild the reverse index after deserialization (the map is skipped
    /// during serialization because it is derivable).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), TermId(i as u32)))
            .collect();
    }

    /// Iterate `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("aries");
        let b = v.intern("aries");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        let ids: Vec<TermId> = ["a", "b", "c"].iter().map(|t| v.intern(t)).collect();
        assert_eq!(ids, vec![TermId(0), TermId(1), TermId(2)]);
        assert_eq!(v.term(TermId(1)), "b");
    }

    #[test]
    fn lookup_roundtrip() {
        let mut v = Vocabulary::new();
        v.intern("recovery");
        assert_eq!(v.lookup("recovery"), Some(TermId(0)));
        assert_eq!(v.lookup("missing"), None);
    }

    #[test]
    fn rebuild_index_after_clearing() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocabulary = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.lookup("y"), Some(TermId(1)));
        assert_eq!(back.intern("x"), TermId(0));
    }
}
