//! Term dictionary: interning stemmed terms to dense [`TermId`]s shared
//! across the whole engine (documents, classifiers, indexes).
//!
//! Two interners implement the [`Interner`] contract:
//!
//! * [`Vocabulary`] — the single-threaded dictionary with sequential
//!   first-encounter ids, used by the deterministic crawler and the
//!   engine,
//! * [`SharedVocabulary`] — a sharded concurrent dictionary for the
//!   real-thread pipeline: all workers intern into one shared term space
//!   through `&self`, so a batch analyzed on any thread produces ids
//!   every other thread understands.
//!
//! Concurrent interning assigns raw ids in arrival order, which depends
//! on scheduling. Both dictionaries therefore support *canonicalization*:
//! seed terms (interned before the concurrent phase, e.g. by classifier
//! training) keep their ids, and every term interned afterwards is
//! renumbered by lexicographic rank. Two runs that intern the same term
//! set — in any order, on any number of threads — canonicalize to the
//! same id assignment.

use crate::fxhash::{self, FxHashMap};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// A dense identifier for an interned term.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TermId(pub u32);

/// Bidirectional term dictionary.
///
/// Interning is append-only; ids are stable for the lifetime of the
/// vocabulary, which the store and the classifiers rely on.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Vocabulary {
    terms: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, TermId>,
}

impl Vocabulary {
    /// Empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its stable id.
    pub fn intern(&mut self, term: &str) -> TermId {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), id);
        id
    }

    /// Look up an already-interned term.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.index.get(term).copied()
    }

    /// The string for `id`. Panics on an id from another vocabulary.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id.0 as usize]
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Rebuild the reverse index after deserialization (the map is skipped
    /// during serialization because it is derivable).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), TermId(i as u32)))
            .collect();
    }

    /// Iterate `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &str)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t.as_str()))
    }

    /// Canonical renumbering: ids below `seed_len` stay fixed; every
    /// later term is renumbered by lexicographic rank starting at
    /// `seed_len`. Returns the old-id → canonical-id table (index = old
    /// id). See the module docs — two interning orders over the same
    /// term set produce the same canonical ids.
    pub fn canonical_map(&self, seed_len: usize) -> Vec<u32> {
        canonical_map_of(&self.terms, seed_len)
    }
}

/// Shared canonicalization rule over an id-ordered term list.
fn canonical_map_of(terms: &[String], seed_len: usize) -> Vec<u32> {
    let seed_len = seed_len.min(terms.len());
    let mut tail: Vec<usize> = (seed_len..terms.len()).collect();
    tail.sort_unstable_by(|&a, &b| terms[a].cmp(&terms[b]));
    let mut map = vec![0u32; terms.len()];
    for (id, slot) in map.iter_mut().enumerate().take(seed_len) {
        *slot = id as u32;
    }
    for (rank, &old) in tail.iter().enumerate() {
        map[old] = (seed_len + rank) as u32;
    }
    map
}

/// Number of shards in a [`SharedVocabulary`]; a power of two so the
/// shard of a term is a cheap mask of its hash.
const SHARDS: usize = 16;

/// A concurrency-safe sharded term dictionary (Section 4.1: all crawler
/// threads feed one document analyzer term space).
///
/// Interning takes `&self`: the term's hash picks a shard, the shard's
/// mutex guards its slice of the dictionary, and a global atomic hands
/// out fresh ids. Ids are unique and stable for the lifetime of the
/// dictionary but *arrival-ordered* — use [`SharedVocabulary::canonicalize`]
/// to renumber them deterministically after a concurrent phase.
///
/// ```
/// use bingo_textproc::{SharedVocabulary, Vocabulary};
/// let mut seed = Vocabulary::new();
/// seed.intern("databas");
/// let shared = SharedVocabulary::seeded(&seed);
/// let id = shared.intern("crawl");
/// assert_eq!(shared.intern("crawl"), id);
/// assert_eq!(shared.intern("databas").0, 0, "seed ids are preserved");
/// ```
pub struct SharedVocabulary {
    shards: Vec<Mutex<FxHashMap<String, TermId>>>,
    next_id: AtomicU32,
    seed_len: u32,
}

impl Default for SharedVocabulary {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedVocabulary {
    /// Empty shared dictionary.
    pub fn new() -> Self {
        SharedVocabulary {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            next_id: AtomicU32::new(0),
            seed_len: 0,
        }
    }

    /// Shared dictionary pre-loaded with `seed`'s terms *keeping their
    /// ids*, so vectors produced against the seed (trained classifiers,
    /// stored rows) remain valid. Canonicalization never renumbers the
    /// seed range.
    pub fn seeded(seed: &Vocabulary) -> Self {
        let shared = SharedVocabulary::new();
        for (id, term) in seed.iter() {
            let shard = shared.shard_of(term);
            shared.shards[shard]
                .lock()
                .expect("vocab shard poisoned")
                .insert(term.to_string(), id);
        }
        shared.next_id.store(seed.len() as u32, Ordering::Relaxed);
        SharedVocabulary {
            seed_len: seed.len() as u32,
            ..shared
        }
    }

    fn shard_of(&self, term: &str) -> usize {
        fxhash::hash_one(&term) as usize & (SHARDS - 1)
    }

    /// Resolve `term` without interning it — the read-only query-path
    /// lookup used by the portal service while crawler threads keep
    /// writing. Touches only the term's shard mutex, never the id
    /// allocator.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        self.shards[self.shard_of(term)]
            .lock()
            .expect("vocab shard poisoned")
            .get(term)
            .copied()
    }

    /// Intern `term` through a shared reference; safe to call from any
    /// number of threads.
    pub fn intern(&self, term: &str) -> TermId {
        let mut shard = self.shards[self.shard_of(term)]
            .lock()
            .expect("vocab shard poisoned");
        if let Some(&id) = shard.get(term) {
            return id;
        }
        let id = TermId(self.next_id.fetch_add(1, Ordering::Relaxed));
        shard.insert(term.to_string(), id);
        id
    }

    /// Number of distinct terms (seed + interned).
    pub fn len(&self) -> usize {
        self.next_id.load(Ordering::Relaxed) as usize
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of seed terms whose ids are immutable.
    pub fn seed_len(&self) -> usize {
        self.seed_len as usize
    }

    /// Freeze into an ordinary [`Vocabulary`] in raw (arrival-order) ids.
    pub fn snapshot(&self) -> Vocabulary {
        let mut terms = vec![String::new(); self.len()];
        for shard in &self.shards {
            for (term, &TermId(id)) in shard.lock().expect("vocab shard poisoned").iter() {
                terms[id as usize] = term.clone();
            }
        }
        let mut vocab = Vocabulary {
            terms,
            index: FxHashMap::default(),
        };
        vocab.rebuild_index();
        vocab
    }

    /// Canonicalize (see the module docs): returns the renumbered
    /// dictionary plus the raw-id → canonical-id table, suitable for
    /// rewriting stored rows via `DocumentStore::remap_terms`.
    pub fn canonicalize(&self) -> (Vocabulary, Vec<u32>) {
        let raw = self.snapshot();
        let map = canonical_map_of(&raw.terms, self.seed_len as usize);
        let mut terms = vec![String::new(); raw.terms.len()];
        for (old, term) in raw.terms.into_iter().enumerate() {
            terms[map[old] as usize] = term;
        }
        let mut vocab = Vocabulary {
            terms,
            index: FxHashMap::default(),
        };
        vocab.rebuild_index();
        (vocab, map)
    }
}

/// The interning contract shared by both dictionaries, letting the
/// document analyzer run identically on the deterministic path
/// (`&mut Vocabulary`) and the concurrent pipeline
/// (`&mut &SharedVocabulary`).
pub trait Interner {
    /// Intern `term`, returning its stable id.
    fn intern(&mut self, term: &str) -> TermId;
    /// Number of distinct terms interned so far.
    fn term_count(&self) -> usize;
}

impl Interner for Vocabulary {
    fn intern(&mut self, term: &str) -> TermId {
        Vocabulary::intern(self, term)
    }

    fn term_count(&self) -> usize {
        self.len()
    }
}

impl Interner for &SharedVocabulary {
    fn intern(&mut self, term: &str) -> TermId {
        SharedVocabulary::intern(self, term)
    }

    fn term_count(&self) -> usize {
        self.len()
    }
}

/// Read-only term resolution shared by both dictionaries, so the query
/// path can resolve stems against whichever dictionary the crawl writes:
/// the deterministic crawler's [`Vocabulary`] or the threaded pipeline's
/// [`SharedVocabulary`].
pub trait TermLookup: Sync {
    /// Resolve a (stemmed) term to its id, or `None` if never interned.
    fn lookup_term(&self, term: &str) -> Option<TermId>;
}

impl TermLookup for Vocabulary {
    fn lookup_term(&self, term: &str) -> Option<TermId> {
        self.lookup(term)
    }
}

impl TermLookup for SharedVocabulary {
    fn lookup_term(&self, term: &str) -> Option<TermId> {
        self.lookup(term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("aries");
        let b = v.intern("aries");
        assert_eq!(a, b);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut v = Vocabulary::new();
        let ids: Vec<TermId> = ["a", "b", "c"].iter().map(|t| v.intern(t)).collect();
        assert_eq!(ids, vec![TermId(0), TermId(1), TermId(2)]);
        assert_eq!(v.term(TermId(1)), "b");
    }

    #[test]
    fn lookup_roundtrip() {
        let mut v = Vocabulary::new();
        v.intern("recovery");
        assert_eq!(v.lookup("recovery"), Some(TermId(0)));
        assert_eq!(v.lookup("missing"), None);
    }

    #[test]
    fn shared_vocab_interns_concurrently_and_canonicalizes() {
        let mut seed = Vocabulary::new();
        seed.intern("zeta");
        seed.intern("alpha");
        let shared = SharedVocabulary::seeded(&seed);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let shared = &shared;
                scope.spawn(move || {
                    for i in 0..50 {
                        shared.intern(&format!("term{:02}", (i * 7 + t) % 60));
                        shared.intern("alpha");
                    }
                });
            }
        });
        let (canon, map) = shared.canonicalize();
        // Seed ids survive untouched, in place.
        assert_eq!(canon.lookup("zeta"), Some(TermId(0)));
        assert_eq!(canon.lookup("alpha"), Some(TermId(1)));
        assert_eq!(&map[..2], &[0, 1]);
        // New terms are densely renumbered in lexicographic order.
        let new_terms: Vec<&str> = canon.iter().skip(2).map(|(_, t)| t).collect();
        let mut sorted = new_terms.clone();
        sorted.sort_unstable();
        assert_eq!(new_terms, sorted);
        // The map is a bijection consistent with the canonical dictionary.
        let raw = shared.snapshot();
        for (TermId(old), term) in raw.iter() {
            assert_eq!(canon.term(TermId(map[old as usize])), term);
        }
    }

    #[test]
    fn canonical_map_matches_across_interning_orders() {
        let words = ["delta", "charlie", "bravo", "echo", "alpha"];
        let mut a = Vocabulary::new();
        let mut b = Vocabulary::new();
        for w in words {
            a.intern(w);
        }
        for w in words.iter().rev() {
            b.intern(w);
        }
        let (ma, mb) = (a.canonical_map(0), b.canonical_map(0));
        for w in words {
            let ca = ma[a.lookup(w).unwrap().0 as usize];
            let cb = mb[b.lookup(w).unwrap().0 as usize];
            assert_eq!(ca, cb, "canonical id of {w} differs");
        }
    }

    #[test]
    fn interner_trait_covers_both_dictionaries() {
        fn intern_all<I: Interner>(i: &mut I) -> Vec<TermId> {
            ["x", "y", "x"].iter().map(|t| i.intern(t)).collect()
        }
        let mut vocab = Vocabulary::new();
        let via_vocab = intern_all(&mut vocab);
        let shared = SharedVocabulary::new();
        let via_shared = intern_all(&mut &shared);
        assert_eq!(via_vocab, via_shared);
        assert_eq!(vocab.len(), 2);
        assert_eq!((&shared).term_count(), 2);
    }

    #[test]
    fn rebuild_index_after_clearing() {
        let mut v = Vocabulary::new();
        v.intern("x");
        v.intern("y");
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocabulary = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.lookup("y"), Some(TermId(1)));
        assert_eq!(back.intern("x"), TermId(0));
    }
}
