//! Sparse feature vectors and the vector-space algebra used throughout the
//! engine: dot products for the SVM decision function, cosine similarity
//! for the local search engine, and the usual norms and combinations.

use serde::{Deserialize, Serialize};

/// A sparse vector: `(feature index, weight)` pairs sorted by index with
/// no duplicates and no explicit zeros.
///
/// ```
/// use bingo_textproc::SparseVector;
/// let a = SparseVector::from_pairs(vec![(0, 1.0), (3, 2.0)]);
/// let b = SparseVector::from_pairs(vec![(3, 4.0), (7, 1.0)]);
/// assert_eq!(a.dot(&b), 8.0);
/// assert!((a.normalized().norm() - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SparseVector {
    entries: Vec<(u32, f32)>,
}

impl SparseVector {
    /// Empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from unsorted pairs; duplicate indices are summed and zero
    /// weights dropped.
    pub fn from_pairs(mut pairs: Vec<(u32, f32)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut entries: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (i, w) in pairs {
            match entries.last_mut() {
                Some(&mut (li, ref mut lw)) if li == i => *lw += w,
                _ => entries.push((i, w)),
            }
        }
        entries.retain(|&(_, w)| w != 0.0);
        SparseVector { entries }
    }

    /// Entries as a sorted slice.
    pub fn entries(&self) -> &[(u32, f32)] {
        &self.entries
    }

    /// Number of non-zero entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no non-zero entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Weight at `index` (0.0 when absent).
    pub fn get(&self, index: u32) -> f32 {
        match self.entries.binary_search_by_key(&index, |&(i, _)| i) {
            Ok(pos) => self.entries[pos].1,
            Err(_) => 0.0,
        }
    }

    /// Dot product via sorted-merge; O(nnz(a) + nnz(b)).
    pub fn dot(&self, other: &SparseVector) -> f32 {
        let (mut i, mut j) = (0, 0);
        let (a, b) = (&self.entries, &other.entries);
        let mut sum = 0.0f32;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    sum += a[i].1 * b[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        sum
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.entries.iter().map(|&(_, w)| w * w).sum::<f32>().sqrt()
    }

    /// L1 norm.
    pub fn l1_norm(&self) -> f32 {
        self.entries.iter().map(|&(_, w)| w.abs()).sum()
    }

    /// Cosine similarity; 0.0 when either vector is zero.
    pub fn cosine(&self, other: &SparseVector) -> f32 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Scale all weights in place.
    pub fn scale(&mut self, factor: f32) {
        if factor == 0.0 {
            self.entries.clear();
            return;
        }
        for (_, w) in &mut self.entries {
            *w *= factor;
        }
    }

    /// Return a unit-norm copy (unchanged when zero).
    pub fn normalized(&self) -> SparseVector {
        let n = self.norm();
        if n == 0.0 {
            return self.clone();
        }
        let mut out = self.clone();
        out.scale(1.0 / n);
        out
    }

    /// `self + factor * other`, merged in O(nnz(a)+nnz(b)).
    pub fn add_scaled(&self, other: &SparseVector, factor: f32) -> SparseVector {
        let (a, b) = (&self.entries, &other.entries);
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            let next = match (a.get(i), b.get(j)) {
                (Some(&(ia, wa)), Some(&(ib, wb))) => match ia.cmp(&ib) {
                    std::cmp::Ordering::Less => {
                        i += 1;
                        (ia, wa)
                    }
                    std::cmp::Ordering::Greater => {
                        j += 1;
                        (ib, factor * wb)
                    }
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                        (ia, wa + factor * wb)
                    }
                },
                (Some(&(ia, wa)), None) => {
                    i += 1;
                    (ia, wa)
                }
                (None, Some(&(ib, wb))) => {
                    j += 1;
                    (ib, factor * wb)
                }
                (None, None) => unreachable!(),
            };
            if next.1 != 0.0 {
                out.push(next);
            }
        }
        SparseVector { entries: out }
    }

    /// Keep only entries whose index passes `keep`. Used to project a
    /// document vector onto a selected feature set.
    pub fn filter_indices<F: Fn(u32) -> bool>(&self, keep: F) -> SparseVector {
        SparseVector {
            entries: self
                .entries
                .iter()
                .copied()
                .filter(|&(i, _)| keep(i))
                .collect(),
        }
    }

    /// Remap every index through `map`, dropping entries mapped to `None`.
    /// The map must be injective over the retained indices; used to move a
    /// vector into a compact selected-feature space.
    pub fn remap<F: Fn(u32) -> Option<u32>>(&self, map: F) -> SparseVector {
        SparseVector::from_pairs(
            self.entries
                .iter()
                .filter_map(|&(i, w)| map(i).map(|ni| (ni, w)))
                .collect(),
        )
    }

    /// Squared Euclidean distance.
    pub fn distance_sq(&self, other: &SparseVector) -> f32 {
        // |a-b|^2 = |a|^2 + |b|^2 - 2 a.b
        let na = self.norm();
        let nb = other.norm();
        (na * na + nb * nb - 2.0 * self.dot(other)).max(0.0)
    }
}

impl FromIterator<(u32, f32)> for SparseVector {
    fn from_iter<I: IntoIterator<Item = (u32, f32)>>(iter: I) -> Self {
        SparseVector::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.to_vec())
    }

    #[test]
    fn from_pairs_sorts_dedups_drops_zero() {
        let x = v(&[(3, 1.0), (1, 2.0), (3, 2.0), (5, 0.0)]);
        assert_eq!(x.entries(), &[(1, 2.0), (3, 3.0)]);
    }

    #[test]
    fn dot_product() {
        let a = v(&[(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = v(&[(2, 4.0), (5, 1.0), (7, 9.0)]);
        assert_eq!(a.dot(&b), 11.0);
        assert_eq!(a.dot(&SparseVector::new()), 0.0);
    }

    #[test]
    fn cosine_bounds() {
        let a = v(&[(1, 1.0), (2, 1.0)]);
        let b = v(&[(1, 2.0), (2, 2.0)]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-6);
        let c = v(&[(9, 1.0)]);
        assert_eq!(a.cosine(&c), 0.0);
        assert_eq!(a.cosine(&SparseVector::new()), 0.0);
    }

    #[test]
    fn add_scaled_merges() {
        let a = v(&[(1, 1.0), (3, 1.0)]);
        let b = v(&[(2, 2.0), (3, 1.0)]);
        let c = a.add_scaled(&b, 2.0);
        assert_eq!(c.entries(), &[(1, 1.0), (2, 4.0), (3, 3.0)]);
    }

    #[test]
    fn add_scaled_cancellation_removes_zero() {
        let a = v(&[(1, 1.0)]);
        let b = v(&[(1, 1.0)]);
        let c = a.add_scaled(&b, -1.0);
        assert!(c.is_empty());
    }

    #[test]
    fn normalized_is_unit() {
        let a = v(&[(0, 3.0), (1, 4.0)]);
        assert!((a.normalized().norm() - 1.0).abs() < 1e-6);
        assert!(SparseVector::new().normalized().is_empty());
    }

    #[test]
    fn distance_sq_matches_direct() {
        let a = v(&[(0, 1.0), (1, 2.0)]);
        let b = v(&[(1, 1.0), (2, 2.0)]);
        // diff = (1, 1, -2) over indices 0,1,2 => 1 + 1 + 4 = 6
        assert!((a.distance_sq(&b) - 6.0).abs() < 1e-5);
    }

    #[test]
    fn get_and_filter() {
        let a = v(&[(2, 5.0), (8, 1.0)]);
        assert_eq!(a.get(2), 5.0);
        assert_eq!(a.get(3), 0.0);
        let f = a.filter_indices(|i| i < 5);
        assert_eq!(f.entries(), &[(2, 5.0)]);
    }

    #[test]
    fn remap_compacts() {
        let a = v(&[(10, 1.0), (20, 2.0), (30, 3.0)]);
        let m = a.remap(|i| if i == 20 { None } else { Some(i / 10) });
        assert_eq!(m.entries(), &[(1, 1.0), (3, 3.0)]);
    }
}
