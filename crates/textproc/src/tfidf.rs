//! `tf*idf` term weighting (Section 2.2).
//!
//! Term weights capture the term frequency (tf) of a stem in the document
//! and the logarithmically dampened inverse document frequency (idf). The
//! paper uses the crawler's local document database as the corpus
//! approximation for idf and recomputes it lazily upon each retraining —
//! [`CorpusStats`] is that incrementally maintained corpus view.

use crate::fxhash::FxHashMap;
use crate::vector::SparseVector;
use crate::vocab::TermId;
use serde::{Deserialize, Serialize};

/// Incrementally maintained document-frequency statistics over the local
/// document database.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct CorpusStats {
    doc_count: u64,
    doc_freq: FxHashMap<u32, u64>,
}

impl CorpusStats {
    /// Empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one document by its distinct terms.
    pub fn add_document<I: IntoIterator<Item = TermId>>(&mut self, distinct_terms: I) {
        self.doc_count += 1;
        for t in distinct_terms {
            *self.doc_freq.entry(t.0).or_insert(0) += 1;
        }
    }

    /// Number of documents recorded.
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: TermId) -> u64 {
        self.doc_freq.get(&term.0).copied().unwrap_or(0)
    }

    /// Logarithmically dampened inverse document frequency:
    /// `ln(1 + N / df)`. Terms never seen get the maximal idf `ln(1 + N)`.
    pub fn idf(&self, term: TermId) -> f32 {
        let n = self.doc_count.max(1) as f32;
        let df = self.doc_freq(term) as f32;
        if df == 0.0 {
            (1.0 + n).ln()
        } else {
            (1.0 + n / df).ln()
        }
    }

    /// Snapshot a weighter with the current statistics. The paper
    /// recomputes idf "lazily upon each retraining"; freezing a weighter at
    /// retraining time is exactly that.
    pub fn weighter(&self) -> TfIdfWeighter {
        TfIdfWeighter {
            stats: self.clone(),
        }
    }
}

/// A frozen idf table applied to raw term-frequency vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfIdfWeighter {
    stats: CorpusStats,
}

impl TfIdfWeighter {
    /// Weight a document given `(term, raw frequency)` pairs:
    /// `w = (1 + ln tf) * idf`, L2-normalized.
    pub fn weigh(&self, term_freqs: &[(TermId, u32)]) -> SparseVector {
        let pairs = term_freqs
            .iter()
            .map(|&(t, f)| {
                let tf = 1.0 + (f as f32).ln();
                (t.0, tf * self.stats.idf(t))
            })
            .collect();
        SparseVector::from_pairs(pairs).normalized()
    }

    /// The underlying corpus statistics.
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TermId {
        TermId(i)
    }

    #[test]
    fn idf_decreases_with_df() {
        let mut c = CorpusStats::new();
        for i in 0..10 {
            let mut terms = vec![t(0)];
            if i < 2 {
                terms.push(t(1));
            }
            c.add_document(terms);
        }
        assert!(c.idf(t(1)) > c.idf(t(0)));
        assert_eq!(c.doc_freq(t(0)), 10);
        assert_eq!(c.doc_freq(t(1)), 2);
    }

    #[test]
    fn unseen_term_gets_max_idf() {
        let mut c = CorpusStats::new();
        c.add_document(vec![t(0)]);
        assert!(c.idf(t(9)) >= c.idf(t(0)));
    }

    #[test]
    fn weigh_produces_unit_vector() {
        let mut c = CorpusStats::new();
        c.add_document(vec![t(0), t(1)]);
        c.add_document(vec![t(0)]);
        let w = c.weighter();
        let v = w.weigh(&[(t(0), 3), (t(1), 1)]);
        assert!((v.norm() - 1.0).abs() < 1e-6);
        // The rarer term 1 outweighs term 0 at equal tf.
        let v2 = w.weigh(&[(t(0), 1), (t(1), 1)]);
        assert!(v2.get(1) > v2.get(0));
    }

    #[test]
    fn tf_dampening_is_logarithmic() {
        let mut c = CorpusStats::new();
        c.add_document(vec![t(0), t(1)]);
        let w = c.weighter();
        let a = w.weigh(&[(t(0), 1), (t(1), 1)]);
        let b = w.weigh(&[(t(0), 100), (t(1), 1)]);
        // 100x the frequency must not give 100x the relative weight.
        let ratio_a = a.get(0) / a.get(1);
        let ratio_b = b.get(0) / b.get(1);
        assert!(ratio_b < ratio_a * 10.0);
        assert!(ratio_b > ratio_a);
    }

    #[test]
    fn empty_document_weighs_empty() {
        let c = CorpusStats::new();
        let w = c.weighter();
        assert!(w.weigh(&[]).is_empty());
    }
}
