//! Content handlers for non-HTML document formats (Section 2.2).
//!
//! "The document analyzer can handle a wide range of content handlers for
//! different document formats (in particular, PDF, MS Word, MS PowerPoint
//! etc.) as well as common archive files (zip, gz) and converts the
//! recognized contents into HTML."
//!
//! Real PDF/Word parsing is out of scope (and the corpus is synthetic);
//! the simulated web emits *container formats* with the same structure a
//! real converter pipeline faces: a typed envelope whose payload must be
//! extracted and converted to HTML before analysis. The registry
//! dispatches by MIME type exactly as the paper's analyzer does, and
//! unhandleable types (video, audio) are rejected so the crawler can skip
//! them (Section 4.2 "document type management").

use serde::{Deserialize, Serialize};

/// MIME types known to the engine (the crawler checks all incoming
/// documents against this list, Section 4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MimeType {
    /// `text/html`
    Html,
    /// `text/plain`
    Plain,
    /// `application/pdf` (simulated envelope)
    Pdf,
    /// `application/msword` (simulated envelope)
    Word,
    /// `application/vnd.ms-powerpoint` (simulated envelope)
    PowerPoint,
    /// `application/zip` (simulated archive of documents)
    Zip,
    /// `video/*` — never analyzable.
    Video,
    /// `audio/*` — never analyzable.
    Audio,
    /// Anything else.
    Other,
}

impl MimeType {
    /// Maximum accepted size in bytes per MIME type ("for each MIME type we
    /// specify a maximum size allowed by the crawler", based on large-scale
    /// corpus statistics). Zero means "never fetch".
    pub fn max_size(self) -> usize {
        match self {
            MimeType::Html | MimeType::Plain => 256 * 1024,
            MimeType::Pdf => 2 * 1024 * 1024,
            MimeType::Word | MimeType::PowerPoint => 1024 * 1024,
            MimeType::Zip => 4 * 1024 * 1024,
            MimeType::Video | MimeType::Audio => 0,
            MimeType::Other => 64 * 1024,
        }
    }

    /// Parse a MIME string such as `text/html`.
    pub fn parse(s: &str) -> MimeType {
        let s = s.split(';').next().unwrap_or("").trim();
        match s {
            "text/html" | "application/xhtml+xml" => MimeType::Html,
            "text/plain" => MimeType::Plain,
            "application/pdf" => MimeType::Pdf,
            "application/msword" => MimeType::Word,
            "application/vnd.ms-powerpoint" => MimeType::PowerPoint,
            "application/zip" | "application/gzip" => MimeType::Zip,
            _ if s.starts_with("video/") => MimeType::Video,
            _ if s.starts_with("audio/") => MimeType::Audio,
            _ => MimeType::Other,
        }
    }
}

/// Error converting a payload to HTML.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentError {
    /// The MIME type has no registered handler (e.g. video).
    Unhandled(MimeType),
    /// The payload did not match its declared format.
    Malformed(&'static str),
}

impl std::fmt::Display for ContentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContentError::Unhandled(m) => write!(f, "no content handler for {m:?}"),
            ContentError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for ContentError {}

/// A converter from one document format to HTML.
pub trait ContentHandler: Send + Sync {
    /// The MIME type this handler accepts.
    fn mime(&self) -> MimeType;
    /// Convert the raw payload into HTML text.
    fn to_html(&self, payload: &str) -> Result<String, ContentError>;
}

/// Dispatches payloads to the appropriate [`ContentHandler`].
pub struct ContentRegistry {
    handlers: Vec<Box<dyn ContentHandler>>,
}

impl Default for ContentRegistry {
    fn default() -> Self {
        ContentRegistry {
            handlers: vec![
                Box::new(HtmlHandler),
                Box::new(PlainTextHandler),
                Box::new(EnvelopeHandler {
                    mime: MimeType::Pdf,
                    magic: "%SIMPDF\n",
                }),
                Box::new(EnvelopeHandler {
                    mime: MimeType::Word,
                    magic: "%SIMDOC\n",
                }),
                Box::new(EnvelopeHandler {
                    mime: MimeType::PowerPoint,
                    magic: "%SIMPPT\n",
                }),
                Box::new(ZipHandler),
            ],
        }
    }
}

impl ContentRegistry {
    /// Registry with the default handlers (HTML, plain text, simulated
    /// PDF/Word/PowerPoint envelopes, simulated zip archives).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an additional handler; later registrations win on type
    /// conflicts.
    pub fn register(&mut self, handler: Box<dyn ContentHandler>) {
        self.handlers.push(handler);
    }

    /// True when some handler accepts `mime` — the crawler's accept test.
    pub fn can_handle(&self, mime: MimeType) -> bool {
        self.handlers.iter().any(|h| h.mime() == mime)
    }

    /// Convert a payload of the given type to HTML.
    pub fn to_html(&self, mime: MimeType, payload: &str) -> Result<String, ContentError> {
        self.handlers
            .iter()
            .rev()
            .find(|h| h.mime() == mime)
            .ok_or(ContentError::Unhandled(mime))?
            .to_html(payload)
    }
}

struct HtmlHandler;

impl ContentHandler for HtmlHandler {
    fn mime(&self) -> MimeType {
        MimeType::Html
    }

    fn to_html(&self, payload: &str) -> Result<String, ContentError> {
        Ok(payload.to_string())
    }
}

struct PlainTextHandler;

impl ContentHandler for PlainTextHandler {
    fn mime(&self) -> MimeType {
        MimeType::Plain
    }

    fn to_html(&self, payload: &str) -> Result<String, ContentError> {
        Ok(format!("<html><body><pre>{payload}</pre></body></html>"))
    }
}

/// Handler for the simulated binary envelopes: a magic line followed by
/// the embedded text. Mirrors a pdf-to-text converter: validate the
/// container, pull out the text.
struct EnvelopeHandler {
    mime: MimeType,
    magic: &'static str,
}

impl ContentHandler for EnvelopeHandler {
    fn mime(&self) -> MimeType {
        self.mime
    }

    fn to_html(&self, payload: &str) -> Result<String, ContentError> {
        let body = payload
            .strip_prefix(self.magic)
            .ok_or(ContentError::Malformed("missing format magic"))?;
        Ok(format!("<html><body>{body}</body></html>"))
    }
}

/// Simulated archive: `%SIMZIP\n` then entries separated by
/// `\n--entry--\n`; all entries are concatenated into one HTML document,
/// the way BINGO! treats an archive as one analyzable unit.
struct ZipHandler;

/// Magic prefix of the simulated zip container.
pub const ZIP_MAGIC: &str = "%SIMZIP\n";
/// Entry separator of the simulated zip container.
pub const ZIP_SEPARATOR: &str = "\n--entry--\n";

impl ContentHandler for ZipHandler {
    fn mime(&self) -> MimeType {
        MimeType::Zip
    }

    fn to_html(&self, payload: &str) -> Result<String, ContentError> {
        let body = payload
            .strip_prefix(ZIP_MAGIC)
            .ok_or(ContentError::Malformed("missing zip magic"))?;
        let mut html = String::from("<html><body>");
        for entry in body.split(ZIP_SEPARATOR) {
            html.push_str("<div>");
            html.push_str(entry);
            html.push_str("</div>");
        }
        html.push_str("</body></html>");
        Ok(html)
    }
}

/// Wrap text in a simulated PDF envelope (used by the web simulator).
pub fn make_pdf(text: &str) -> String {
    format!("%SIMPDF\n{text}")
}

/// Wrap text in a simulated Word envelope.
pub fn make_word(text: &str) -> String {
    format!("%SIMDOC\n{text}")
}

/// Wrap entries in a simulated zip container.
pub fn make_zip(entries: &[&str]) -> String {
    format!("{ZIP_MAGIC}{}", entries.join(ZIP_SEPARATOR))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mime_parsing() {
        assert_eq!(MimeType::parse("text/html; charset=utf-8"), MimeType::Html);
        assert_eq!(MimeType::parse("application/pdf"), MimeType::Pdf);
        assert_eq!(MimeType::parse("video/mp4"), MimeType::Video);
        assert_eq!(MimeType::parse("application/x-unknown"), MimeType::Other);
    }

    #[test]
    fn size_limits() {
        assert_eq!(MimeType::Video.max_size(), 0);
        assert!(MimeType::Pdf.max_size() > MimeType::Html.max_size());
    }

    #[test]
    fn pdf_envelope_round_trip() {
        let reg = ContentRegistry::new();
        let pdf = make_pdf("ARIES recovery algorithm paper text");
        let html = reg.to_html(MimeType::Pdf, &pdf).unwrap();
        assert!(html.contains("ARIES recovery"));
        let parsed = crate::html::parse(&html);
        assert!(parsed.text.contains("ARIES recovery"));
    }

    #[test]
    fn malformed_pdf_rejected() {
        let reg = ContentRegistry::new();
        let err = reg.to_html(MimeType::Pdf, "not a pdf").unwrap_err();
        assert!(matches!(err, ContentError::Malformed(_)));
    }

    #[test]
    fn zip_concatenates_entries() {
        let reg = ContentRegistry::new();
        let zip = make_zip(&["first entry text", "second entry text"]);
        let html = reg.to_html(MimeType::Zip, &zip).unwrap();
        assert!(html.contains("first entry text"));
        assert!(html.contains("second entry text"));
    }

    #[test]
    fn video_is_unhandled() {
        let reg = ContentRegistry::new();
        assert!(!reg.can_handle(MimeType::Video));
        assert!(matches!(
            reg.to_html(MimeType::Video, "data"),
            Err(ContentError::Unhandled(MimeType::Video))
        ));
    }

    #[test]
    fn plain_text_wrapped() {
        let reg = ContentRegistry::new();
        let html = reg.to_html(MimeType::Plain, "hello plain world").unwrap();
        assert!(crate::html::parse(&html).text.contains("hello plain world"));
    }

    #[test]
    fn custom_handler_overrides() {
        struct Custom;
        impl ContentHandler for Custom {
            fn mime(&self) -> MimeType {
                MimeType::Other
            }
            fn to_html(&self, _p: &str) -> Result<String, ContentError> {
                Ok("<p>custom</p>".into())
            }
        }
        let mut reg = ContentRegistry::new();
        reg.register(Box::new(Custom));
        assert!(reg.can_handle(MimeType::Other));
        assert_eq!(reg.to_html(MimeType::Other, "x").unwrap(), "<p>custom</p>");
    }
}
