//! Feature-space construction (Section 3.4).
//!
//! Beyond single-term `tf*idf` vectors, BINGO! builds richer feature
//! spaces:
//!
//! * **Term pairs** — co-occurrence of terms within a sliding window,
//! * **Neighbour documents** — the most significant terms of hyperlink
//!   predecessors/successors,
//! * **Anchor texts** — terms from `<a>` texts of predecessors pointing at
//!   the document,
//!
//! plus **combined** spaces with any subset of the above as components.
//! "The classifier can handle the various options in a uniform manner: it
//! does not have to know how feature vectors are constructed" — here every
//! space produces an ordinary [`SparseVector`] over a shared `u32` feature
//! index namespace:
//!
//! | bits 30..32 | component |
//! |---|---|
//! | 00 | single term (the [`TermId`] itself) |
//! | 01 | term pair (hashed, see below) |
//! | 10 | anchor-text term of a predecessor |
//! | 11 | neighbour-document term |
//!
//! Term pairs use the hashing trick: the unordered pair `(a, b)` is hashed
//! into the 30-bit pair namespace. Rare collisions merely merge two pair
//! features, which the MI feature selection tolerates.

use crate::fxhash;
use crate::tfidf::TfIdfWeighter;
use crate::vector::SparseVector;
use crate::vocab::TermId;
use crate::AnalyzedDocument;
use serde::{Deserialize, Serialize};

/// Width of the sliding window for term-pair extraction. The paper
/// "determines only pairs within a limited word distance".
pub const PAIR_WINDOW: usize = 5;

const NAMESPACE_SHIFT: u32 = 30;
const LOCAL_MASK: u32 = (1 << NAMESPACE_SHIFT) - 1;

/// Feature namespaces within the shared u32 index space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Namespace {
    /// Plain stemmed body term.
    Term = 0,
    /// Hashed unordered term pair.
    Pair = 1,
    /// Anchor-text term from predecessors.
    Anchor = 2,
    /// Significant term of neighbour documents.
    Neighbor = 3,
}

/// Tag a local index with a namespace.
pub fn ns_index(ns: Namespace, local: u32) -> u32 {
    debug_assert!(local <= LOCAL_MASK);
    ((ns as u32) << NAMESPACE_SHIFT) | (local & LOCAL_MASK)
}

/// Extract the namespace of a feature index.
pub fn namespace_of(index: u32) -> Namespace {
    match index >> NAMESPACE_SHIFT {
        0 => Namespace::Term,
        1 => Namespace::Pair,
        2 => Namespace::Anchor,
        _ => Namespace::Neighbor,
    }
}

/// Hash an unordered term pair into the pair namespace.
pub fn pair_feature(a: TermId, b: TermId) -> u32 {
    let (lo, hi) = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
    let h = fxhash::hash_one(&(lo, hi)) as u32 & LOCAL_MASK;
    ns_index(Namespace::Pair, h)
}

/// Which feature spaces a classifier variant uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSpaceKind {
    /// Standard single-term `tf*idf` vectors (Section 2.2).
    SingleTerms,
    /// Single terms + sliding-window term pairs.
    TermPairs,
    /// Single terms + anchor texts of predecessor links.
    AnchorTexts,
    /// Single terms + significant terms of neighbour documents.
    NeighborTerms,
    /// All components combined.
    Combined,
}

impl FeatureSpaceKind {
    /// All variants, in the order BINGO! trains its parallel classifiers.
    pub const ALL: [FeatureSpaceKind; 5] = [
        FeatureSpaceKind::SingleTerms,
        FeatureSpaceKind::TermPairs,
        FeatureSpaceKind::AnchorTexts,
        FeatureSpaceKind::NeighborTerms,
        FeatureSpaceKind::Combined,
    ];

    fn uses_pairs(self) -> bool {
        matches!(
            self,
            FeatureSpaceKind::TermPairs | FeatureSpaceKind::Combined
        )
    }

    fn uses_anchors(self) -> bool {
        matches!(
            self,
            FeatureSpaceKind::AnchorTexts | FeatureSpaceKind::Combined
        )
    }

    fn uses_neighbors(self) -> bool {
        matches!(
            self,
            FeatureSpaceKind::NeighborTerms | FeatureSpaceKind::Combined
        )
    }
}

/// The per-document ingredients from which any feature space can be built.
///
/// `incoming_anchor_terms` and `neighbor_terms` come from the crawler's
/// link context (Section 3.4) and may be empty when unknown.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DocumentFeatures {
    /// `(term, frequency)` of body stems.
    pub term_freqs: Vec<(TermId, u32)>,
    /// Frequencies of hashed term-pair features.
    pub pair_freqs: Vec<(u32, u32)>,
    /// Stems of anchor texts on links *pointing to* this document.
    pub incoming_anchor_terms: Vec<TermId>,
    /// Most significant stems of hyperlink neighbours.
    pub neighbor_terms: Vec<TermId>,
}

impl DocumentFeatures {
    /// Derive features from an analyzed document, extracting term pairs
    /// with the sliding window. Link-context components start empty and can
    /// be filled by the crawler via [`DocumentFeatures::add_incoming_anchor`]
    /// and [`DocumentFeatures::add_neighbor_terms`].
    pub fn from_document(doc: &AnalyzedDocument) -> Self {
        DocumentFeatures {
            term_freqs: doc.term_freqs.clone(),
            pair_freqs: extract_pairs(&doc.terms),
            incoming_anchor_terms: Vec::new(),
            neighbor_terms: Vec::new(),
        }
    }

    /// Record anchor-text terms from a predecessor's link to this document.
    pub fn add_incoming_anchor(&mut self, terms: &[TermId]) {
        self.incoming_anchor_terms.extend_from_slice(terms);
    }

    /// Record significant terms of a hyperlink neighbour.
    pub fn add_neighbor_terms(&mut self, terms: &[TermId]) {
        self.neighbor_terms.extend_from_slice(terms);
    }

    /// All feature `(index, frequency)` occurrences a given space uses,
    /// with namespace tagging applied.
    pub fn occurrences(&self, kind: FeatureSpaceKind) -> Vec<(u32, u32)> {
        let mut out: Vec<(u32, u32)> = self
            .term_freqs
            .iter()
            .map(|&(t, f)| (ns_index(Namespace::Term, t.0), f))
            .collect();
        if kind.uses_pairs() {
            out.extend(self.pair_freqs.iter().copied());
        }
        if kind.uses_anchors() {
            out.extend(count_terms(&self.incoming_anchor_terms, Namespace::Anchor));
        }
        if kind.uses_neighbors() {
            out.extend(count_terms(&self.neighbor_terms, Namespace::Neighbor));
        }
        out
    }
}

fn count_terms(terms: &[TermId], ns: Namespace) -> Vec<(u32, u32)> {
    let mut m: fxhash::FxHashMap<u32, u32> = fxhash::FxHashMap::default();
    for &t in terms {
        *m.entry(ns_index(ns, t.0)).or_insert(0) += 1;
    }
    m.into_iter().collect()
}

/// Sliding-window unordered pair extraction.
fn extract_pairs(terms: &[TermId]) -> Vec<(u32, u32)> {
    let mut m: fxhash::FxHashMap<u32, u32> = fxhash::FxHashMap::default();
    for (i, &a) in terms.iter().enumerate() {
        for &b in terms.iter().skip(i + 1).take(PAIR_WINDOW - 1) {
            if a != b {
                *m.entry(pair_feature(a, b)).or_insert(0) += 1;
            }
        }
    }
    m.into_iter().collect()
}

/// A feature space: a kind plus the frozen idf weighter used to produce
/// classifier-ready vectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureSpace {
    /// Which components this space includes.
    pub kind: FeatureSpaceKind,
    /// Frozen corpus statistics for idf weighting over feature indices.
    pub weighter: TfIdfWeighter,
}

impl FeatureSpace {
    /// Build the weighted, normalized feature vector of a document.
    pub fn vector(&self, features: &DocumentFeatures) -> SparseVector {
        let occ = features.occurrences(self.kind);
        let pairs: Vec<(TermId, u32)> = occ.into_iter().map(|(i, f)| (TermId(i), f)).collect();
        self.weighter.weigh(&pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tfidf::CorpusStats;
    use crate::Vocabulary;

    fn doc(text: &str, vocab: &mut Vocabulary) -> AnalyzedDocument {
        crate::analyze_html(text, vocab)
    }

    #[test]
    fn namespaces_round_trip() {
        for ns in [
            Namespace::Term,
            Namespace::Pair,
            Namespace::Anchor,
            Namespace::Neighbor,
        ] {
            let idx = ns_index(ns, 12345);
            assert_eq!(namespace_of(idx), ns);
            assert_eq!(idx & LOCAL_MASK, 12345);
        }
    }

    #[test]
    fn pair_feature_is_symmetric() {
        assert_eq!(
            pair_feature(TermId(3), TermId(9)),
            pair_feature(TermId(9), TermId(3))
        );
        assert_eq!(
            namespace_of(pair_feature(TermId(1), TermId(2))),
            Namespace::Pair
        );
    }

    #[test]
    fn pairs_respect_window() {
        let mut v = Vocabulary::new();
        let terms: Vec<TermId> = (0..10).map(|i| v.intern(&format!("term{i}"))).collect();
        let pairs = extract_pairs(&terms);
        // Window 5 over 10 distinct terms: positions i pairs with i+1..i+4.
        let expected: usize = (0..10).map(|i| (10 - i - 1).min(PAIR_WINDOW - 1)).sum();
        let total: u32 = pairs.iter().map(|&(_, f)| f).sum();
        assert_eq!(total as usize, expected);
        // Adjacent pair present, distant pair absent.
        let near = pair_feature(terms[0], terms[1]);
        let far = pair_feature(terms[0], terms[9]);
        assert!(pairs.iter().any(|&(i, _)| i == near));
        assert!(!pairs.iter().any(|&(i, _)| i == far));
    }

    #[test]
    fn single_terms_space_ignores_extras() {
        let mut vocab = Vocabulary::new();
        let d = doc("<p>alpha beta gamma</p>", &mut vocab);
        let mut f = DocumentFeatures::from_document(&d);
        f.add_incoming_anchor(&[vocab.intern("anchorword")]);
        let single = f.occurrences(FeatureSpaceKind::SingleTerms);
        assert!(single
            .iter()
            .all(|&(i, _)| namespace_of(i) == Namespace::Term));
        let combined = f.occurrences(FeatureSpaceKind::Combined);
        assert!(combined
            .iter()
            .any(|&(i, _)| namespace_of(i) == Namespace::Anchor));
        assert!(combined.len() > single.len());
    }

    #[test]
    fn feature_space_vector_is_normalized() {
        let mut vocab = Vocabulary::new();
        let d = doc("<p>mining data mining patterns</p>", &mut vocab);
        let f = DocumentFeatures::from_document(&d);
        let mut stats = CorpusStats::new();
        stats.add_document(
            f.occurrences(FeatureSpaceKind::Combined)
                .iter()
                .map(|&(i, _)| TermId(i)),
        );
        let space = FeatureSpace {
            kind: FeatureSpaceKind::Combined,
            weighter: stats.weighter(),
        };
        let v = space.vector(&f);
        assert!(!v.is_empty());
        assert!((v.norm() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn identical_terms_produce_no_self_pairs() {
        let mut v = Vocabulary::new();
        let t = v.intern("echo");
        let pairs = extract_pairs(&[t, t, t]);
        assert!(pairs.is_empty());
    }
}
