//! Stopword elimination (Section 2.2), with the extended list for anchor
//! texts (Section 3.4: "it is very crucial to use an extended form of
//! stopword elimination on anchor texts" to remove phrases such as
//! "click here").

use crate::fxhash::FxHashSet;
use std::sync::OnceLock;

/// Standard English stopword list used by the document analyzer.
pub const BASIC_STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "all",
    "am",
    "an",
    "and",
    "any",
    "are",
    "as",
    "at",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "can",
    "cannot",
    "could",
    "did",
    "do",
    "does",
    "doing",
    "down",
    "during",
    "each",
    "few",
    "for",
    "from",
    "further",
    "had",
    "has",
    "have",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "it",
    "its",
    "itself",
    "just",
    "me",
    "more",
    "most",
    "my",
    "myself",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "on",
    "once",
    "only",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "same",
    "she",
    "should",
    "so",
    "some",
    "such",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "through",
    "to",
    "too",
    "under",
    "until",
    "up",
    "very",
    "was",
    "we",
    "were",
    "what",
    "when",
    "where",
    "which",
    "while",
    "who",
    "whom",
    "why",
    "will",
    "with",
    "would",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// Additional web-navigation stopwords applied to anchor texts only.
pub const ANCHOR_STOPWORDS: &[&str] = &[
    "click",
    "here",
    "link",
    "page",
    "home",
    "next",
    "previous",
    "prev",
    "back",
    "top",
    "bottom",
    "more",
    "read",
    "readme",
    "goto",
    "go",
    "site",
    "website",
    "webpage",
    "index",
    "main",
    "menu",
    "contents",
    "table",
    "welcome",
    "download",
    "email",
    "mail",
    "contact",
    "last",
    "updated",
    "copyright",
    "disclaimer",
];

fn basic_set() -> &'static FxHashSet<&'static str> {
    static SET: OnceLock<FxHashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| BASIC_STOPWORDS.iter().copied().collect())
}

fn anchor_set() -> &'static FxHashSet<&'static str> {
    static SET: OnceLock<FxHashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| {
        BASIC_STOPWORDS
            .iter()
            .chain(ANCHOR_STOPWORDS.iter())
            .copied()
            .collect()
    })
}

/// True when `word` (lowercase) is a standard stopword.
pub fn is_stopword(word: &str) -> bool {
    basic_set().contains(word)
}

/// True when `word` (lowercase) is a stopword under the extended
/// anchor-text list.
pub fn is_anchor_stopword(word: &str) -> bool {
    anchor_set().contains(word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stopwords() {
        assert!(is_stopword("the"));
        assert!(is_stopword("and"));
        assert!(!is_stopword("database"));
        assert!(!is_stopword("click"));
    }

    #[test]
    fn anchor_stopwords_are_superset() {
        assert!(is_anchor_stopword("the"));
        assert!(is_anchor_stopword("click"));
        assert!(is_anchor_stopword("here"));
        assert!(!is_anchor_stopword("aries"));
    }

    #[test]
    fn lists_have_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for w in BASIC_STOPWORDS {
            assert!(seen.insert(*w), "duplicate basic stopword {w}");
        }
        let mut seen = std::collections::HashSet::new();
        for w in ANCHOR_STOPWORDS {
            assert!(seen.insert(*w), "duplicate anchor stopword {w}");
        }
    }
}
