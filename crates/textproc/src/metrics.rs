//! Text-processing metrics: document analysis volume and cost.
//!
//! Term, token and link counts derive from document contents and are
//! deterministic; the per-document analysis cost is wall time and lands
//! in a volatile histogram.

use crate::{analyze_html, AnalyzedDocument, Interner, VocabSpillStats};
use bingo_obs::{Counter, Gauge, Histogram, Registry, WallTimer};
use std::sync::Arc;

/// Metric handles for HTML analysis. Cloning shares the underlying
/// registry and atomics.
#[derive(Clone)]
pub struct TextprocMetrics {
    /// The registry the handles live in.
    pub registry: Arc<Registry>,
    /// Documents analyzed.
    pub docs: Counter,
    /// Stemmed, stopword-free terms produced.
    pub terms: Counter,
    /// Hyperlinks extracted.
    pub links: Counter,
    /// Terms per document.
    pub terms_per_doc: Arc<Histogram>,
    /// Current vocabulary size.
    pub vocab_size: Gauge,
    /// Wall-clock cost per analyzed document, microseconds (volatile).
    pub analyze_wall_us: Arc<Histogram>,
    /// Vocabulary spill metrics (all zero unless the dictionary was
    /// built with [`crate::SharedVocabulary::with_spill`]).
    pub vocab_spill: VocabSpillTelemetry,
}

/// Metric handles for the spilling term dictionary
/// ([`crate::SharedVocabulary`]). The dictionary itself is obs-free;
/// callers poll [`VocabSpillStats`] and fold deltas in here, so
/// counters stay monotonic across polls.
#[derive(Clone)]
pub struct VocabSpillTelemetry {
    /// Terms resident in the hot tiers.
    pub hot_terms: Gauge,
    /// Estimated resident bytes of hot-tier term text.
    pub hot_bytes: Gauge,
    /// Terms living in spill logs.
    pub spilled_terms: Gauge,
    /// Hot-tier flushes into the logs.
    pub flushes: Counter,
    /// Log reads issued to confirm a probable match.
    pub disk_probes: Counter,
    /// Log reads that confirmed the term.
    pub disk_hits: Counter,
    /// Failed log reads/writes (answers stayed exact).
    pub io_errors: Counter,
}

impl VocabSpillTelemetry {
    /// Register the `vocab.spill.*` handles in `registry`.
    pub fn new(registry: &Registry) -> Self {
        VocabSpillTelemetry {
            hot_terms: registry.gauge("vocab.spill.hot_terms"),
            hot_bytes: registry.gauge("vocab.spill.hot_bytes"),
            spilled_terms: registry.gauge("vocab.spill.spilled_terms"),
            flushes: registry.counter("vocab.spill.flushes"),
            disk_probes: registry.counter("vocab.spill.disk_probes"),
            disk_hits: registry.counter("vocab.spill.disk_hits"),
            io_errors: registry.counter("vocab.spill.io_errors"),
        }
    }

    /// Fold the dictionary's current counters in: gauges are
    /// overwritten, monotonic counters advance by the delta since
    /// `last` (which is updated to `now`).
    pub fn record(&self, now: &VocabSpillStats, last: &mut VocabSpillStats) {
        self.hot_terms.set(now.hot_terms as i64);
        self.hot_bytes.set(now.hot_bytes as i64);
        self.spilled_terms.set(now.spilled_terms as i64);
        self.flushes.add(now.flushes.saturating_sub(last.flushes));
        self.disk_probes
            .add(now.disk_probes.saturating_sub(last.disk_probes));
        self.disk_hits
            .add(now.disk_hits.saturating_sub(last.disk_hits));
        self.io_errors
            .add(now.io_errors.saturating_sub(last.io_errors));
        *last = *now;
    }
}

impl TextprocMetrics {
    /// Register all text-processing metrics in `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        TextprocMetrics {
            docs: registry.counter("textproc.docs"),
            terms: registry.counter("textproc.terms"),
            links: registry.counter("textproc.links"),
            terms_per_doc: registry.histogram("textproc.terms_per_doc"),
            vocab_size: registry.gauge("textproc.vocab_size"),
            analyze_wall_us: registry.wall_histogram("textproc.analyze.wall_us"),
            vocab_spill: VocabSpillTelemetry::new(&registry),
            registry,
        }
    }

    /// Roll one analyzed document into the counters. `vocab_size` is the
    /// interner's current distinct-term count.
    pub fn record(&self, doc: &AnalyzedDocument, vocab_size: usize) {
        self.docs.inc();
        self.terms.add(doc.terms.len() as u64);
        self.links.add(doc.links.len() as u64);
        self.terms_per_doc.observe(doc.terms.len() as u64);
        self.vocab_size.set(vocab_size as i64);
    }
}

/// [`analyze_html`] plus metrics: volume counters and the wall-clock
/// analysis cost.
pub fn analyze_html_metered<I: Interner + ?Sized>(
    html_text: &str,
    vocab: &mut I,
    metrics: &TextprocMetrics,
) -> AnalyzedDocument {
    let timer = WallTimer::start();
    let doc = analyze_html(html_text, vocab);
    timer.observe_us(&metrics.analyze_wall_us);
    metrics.record(&doc, vocab.term_count());
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vocabulary;

    #[test]
    fn metered_analysis_counts_volume() {
        let reg = Arc::new(Registry::new());
        let m = TextprocMetrics::new(reg.clone());
        let mut vocab = Vocabulary::new();
        let doc = analyze_html_metered(
            "<html><title>t</title><body>crawling spiders crawling \
             <a href=\"http://h/x\">focused crawling</a></body></html>",
            &mut vocab,
            &m,
        );
        assert!(!doc.terms.is_empty());
        let snap = reg.snapshot();
        assert_eq!(snap.counters["textproc.docs"], 1);
        assert_eq!(snap.counters["textproc.terms"], doc.terms.len() as u64);
        assert_eq!(snap.counters["textproc.links"], 1);
        assert!(snap.gauges["textproc.vocab_size"] > 0);
        assert!(snap.volatile.contains("textproc.analyze.wall_us"));
        // Deterministic view drops only the wall metric.
        let det = snap.deterministic();
        assert!(det.counters.contains_key("textproc.docs"));
        assert!(!det.histograms.contains_key("textproc.analyze.wall_us"));
    }
}
