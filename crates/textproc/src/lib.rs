//! Text processing substrate for the BINGO! focused crawler.
//!
//! This crate implements the *document analyzer* of the paper (Section 2.2)
//! and the richer feature spaces of Section 3.4:
//!
//! * an HTML parser that strips tags, extracts the title, hyperlinks and
//!   their anchor texts ([`html`]),
//! * content handlers that convert non-HTML formats (simulated PDF, Word,
//!   zip archives) into analyzable text ([`content`]),
//! * a tokenizer with stopword elimination ([`tokenize`], [`stopwords`]),
//! * the full Porter stemming algorithm ([`stem`]),
//! * a term dictionary interning strings to dense [`TermId`]s ([`vocab`]),
//! * sparse feature vectors with the algebra the classifier needs
//!   ([`vector`]),
//! * `tf*idf` weighting over a document corpus ([`tfidf`]),
//! * feature-space construction: single terms, sliding-window term pairs,
//!   anchor texts of predecessors, and neighbour-document terms, plus
//!   combined spaces ([`features`]).

pub mod content;
pub mod features;
pub mod fxhash;
pub mod html;
pub mod metrics;
pub mod stem;
pub mod stopwords;
pub mod tfidf;
pub mod tokenize;
pub mod vector;
pub mod vocab;

pub use content::{ContentHandler, ContentRegistry, MimeType};
pub use features::{DocumentFeatures, FeatureSpace, FeatureSpaceKind};
pub use html::{HtmlDocument, Hyperlink};
pub use metrics::{analyze_html_metered, TextprocMetrics, VocabSpillTelemetry};
pub use stem::porter_stem;
pub use tfidf::{CorpusStats, TfIdfWeighter};
pub use tokenize::Tokenizer;
pub use vector::SparseVector;
pub use vocab::{
    Interner, SharedVocabulary, TermId, TermLookup, VocabSpillConfig, VocabSpillStats, Vocabulary,
    VOCAB_SPILL_PREFIX,
};

/// A fully analyzed document: the output of the document analyzer that the
/// classifier, the feature selection and the local search engine consume.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnalyzedDocument {
    /// Document title (from `<title>` when available, else empty).
    pub title: String,
    /// Stemmed, stopword-free body terms in document order.
    pub terms: Vec<TermId>,
    /// Raw term frequencies over `terms`, sorted by term id.
    pub term_freqs: Vec<(TermId, u32)>,
    /// Outgoing hyperlinks with their (analyzed) anchor terms.
    pub links: Vec<AnalyzedLink>,
}

/// A hyperlink extracted from an analyzed document.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AnalyzedLink {
    /// Raw target as written in the `href` attribute.
    pub href: String,
    /// Stemmed anchor-text terms (with the extended stopword list of
    /// Section 3.4 applied, removing phrases such as "click here").
    pub anchor_terms: Vec<TermId>,
}

impl AnalyzedDocument {
    /// Total number of body term occurrences.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when the document body produced no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Raw term-frequency sparse vector (unweighted).
    pub fn tf_vector(&self) -> SparseVector {
        SparseVector::from_pairs(
            self.term_freqs
                .iter()
                .map(|&(t, f)| (t.0, f as f32))
                .collect(),
        )
    }
}

/// Analyze an HTML document end to end: parse, tokenize, stem, intern.
///
/// This is the main entry point equivalent to the paper's document analyzer:
/// it takes raw HTML and produces the bag-of-words representation plus the
/// extracted link structure. Generic over the [`Interner`] so the same
/// analyzer serves the deterministic crawler (`&mut Vocabulary`) and the
/// concurrent pipeline (`&mut &SharedVocabulary`).
pub fn analyze_html<I: Interner + ?Sized>(html_text: &str, vocab: &mut I) -> AnalyzedDocument {
    let parsed = html::parse(html_text);
    let tokenizer = Tokenizer::default();
    let mut terms = Vec::new();
    for token in tokenizer.tokens(&parsed.text) {
        terms.push(vocab.intern(&porter_stem(&token)));
    }
    let mut freq_map: std::collections::HashMap<TermId, u32, fxhash::FxBuildHasher> =
        std::collections::HashMap::default();
    for &t in &terms {
        *freq_map.entry(t).or_insert(0) += 1;
    }
    let mut term_freqs: Vec<(TermId, u32)> = freq_map.into_iter().collect();
    term_freqs.sort_unstable_by_key(|&(t, _)| t);

    let anchor_tokenizer = Tokenizer::for_anchor_text();
    let links = parsed
        .links
        .iter()
        .map(|l| AnalyzedLink {
            href: l.href.clone(),
            anchor_terms: anchor_tokenizer
                .tokens(&l.anchor)
                .map(|t| vocab.intern(&porter_stem(&t)))
                .collect(),
        })
        .collect();

    AnalyzedDocument {
        title: parsed.title,
        terms,
        term_freqs,
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_html_end_to_end() {
        let mut vocab = Vocabulary::new();
        let doc = analyze_html(
            "<html><head><title>Data Mining</title></head>\
             <body>Mining patterns from databases. \
             <a href=\"http://a.example/x\">clustering paper</a></body></html>",
            &mut vocab,
        );
        assert_eq!(doc.title, "Data Mining");
        let stems: Vec<&str> = doc.terms.iter().map(|&t| vocab.term(t)).collect();
        assert!(stems.contains(&"mine"));
        assert!(stems.contains(&"pattern"));
        assert!(stems.contains(&"databas"));
        assert_eq!(doc.links.len(), 1);
        let anchors: Vec<&str> = doc.links[0]
            .anchor_terms
            .iter()
            .map(|&t| vocab.term(t))
            .collect();
        assert!(anchors.contains(&"cluster"));
    }

    #[test]
    fn term_freqs_are_sorted_and_consistent() {
        let mut vocab = Vocabulary::new();
        let doc = analyze_html("<p>alpha beta alpha gamma alpha beta</p>", &mut vocab);
        let total: u32 = doc.term_freqs.iter().map(|&(_, f)| f).sum();
        assert_eq!(total as usize, doc.terms.len());
        for w in doc.term_freqs.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn empty_document() {
        let mut vocab = Vocabulary::new();
        let doc = analyze_html("", &mut vocab);
        assert!(doc.is_empty());
        assert_eq!(doc.len(), 0);
        assert!(doc.tf_vector().is_empty());
    }
}
