//! The Porter stemming algorithm (M. F. Porter, 1980), as used by the
//! paper's document analyzer (Section 2.2).
//!
//! The implementation follows the original five-step definition, operating
//! on lowercase ASCII. Non-ASCII input is passed through unchanged (the
//! synthetic corpora in this repository are ASCII).

/// Stem a single lowercase token with the Porter algorithm.
///
/// Tokens shorter than three characters are returned unchanged, matching
/// the original algorithm's behaviour ("words of length 1 or 2 are left
/// alone").
///
/// ```
/// use bingo_textproc::porter_stem;
/// assert_eq!(porter_stem("mining"), "mine");
/// assert_eq!(porter_stem("knowledge"), "knowledg");
/// assert_eq!(porter_stem("authorities"), "author");
/// ```
pub fn porter_stem(word: &str) -> String {
    if word.len() <= 2 || !word.is_ascii() {
        return word.to_string();
    }
    let mut s = Stemmer {
        b: word.as_bytes().to_vec(),
    };
    s.step1a();
    s.step1b();
    s.step1c();
    s.step2();
    s.step3();
    s.step4();
    s.step5a();
    s.step5b();
    // The byte buffer only ever shrinks or swaps ASCII letters, so it stays
    // valid UTF-8.
    String::from_utf8(s.b).expect("porter stemmer operates on ASCII")
}

struct Stemmer {
    b: Vec<u8>,
}

impl Stemmer {
    fn is_consonant(&self, i: usize) -> bool {
        match self.b[i] {
            b'a' | b'e' | b'i' | b'o' | b'u' => false,
            b'y' => {
                if i == 0 {
                    true
                } else {
                    !self.is_consonant(i - 1)
                }
            }
            _ => true,
        }
    }

    /// The measure m of the stem `b[..=j]`: the number of VC sequences in
    /// the form `[C](VC)^m[V]`.
    fn measure(&self, j: usize) -> usize {
        let mut n = 0;
        let mut i = 0;
        // Skip initial consonants.
        loop {
            if i > j {
                return n;
            }
            if !self.is_consonant(i) {
                break;
            }
            i += 1;
        }
        i += 1;
        loop {
            // Skip vowels.
            loop {
                if i > j {
                    return n;
                }
                if self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
            n += 1;
            // Skip consonants.
            loop {
                if i > j {
                    return n;
                }
                if !self.is_consonant(i) {
                    break;
                }
                i += 1;
            }
            i += 1;
        }
    }

    /// True when the stem `b[..=j]` contains a vowel.
    fn has_vowel(&self, j: usize) -> bool {
        (0..=j).any(|i| !self.is_consonant(i))
    }

    /// True when `b[..=j]` ends with a double consonant.
    fn double_consonant(&self, j: usize) -> bool {
        j >= 1 && self.b[j] == self.b[j - 1] && self.is_consonant(j)
    }

    /// True when `b[..=i]` ends consonant-vowel-consonant where the final
    /// consonant is not w, x or y ("*o" condition).
    fn cvc(&self, i: usize) -> bool {
        if i < 2 || !self.is_consonant(i) || self.is_consonant(i - 1) || !self.is_consonant(i - 2) {
            return false;
        }
        !matches!(self.b[i], b'w' | b'x' | b'y')
    }

    fn ends_with(&self, suffix: &[u8]) -> bool {
        self.b.len() >= suffix.len() && self.b.ends_with(suffix)
    }

    /// Length of the stem once `suffix` (known to match) is removed, as an
    /// inclusive end index; `None` when the stem would be empty.
    fn stem_end(&self, suffix: &[u8]) -> Option<usize> {
        (self.b.len() - suffix.len()).checked_sub(1)
    }

    fn replace_suffix(&mut self, suffix: &[u8], replacement: &[u8]) {
        let keep = self.b.len() - suffix.len();
        self.b.truncate(keep);
        self.b.extend_from_slice(replacement);
    }

    /// If the word ends with `suffix` and the remaining stem has measure
    /// greater than `min_m`, replace it. Returns true when the suffix
    /// matched (whether or not the measure condition held), following the
    /// "first matching suffix wins" rule of steps 2-4.
    fn rule(&mut self, suffix: &[u8], replacement: &[u8], min_m: usize) -> bool {
        if !self.ends_with(suffix) {
            return false;
        }
        if let Some(j) = self.stem_end(suffix) {
            if self.measure(j) > min_m {
                self.replace_suffix(suffix, replacement);
            }
        }
        true
    }

    fn step1a(&mut self) {
        if self.ends_with(b"sses") {
            self.replace_suffix(b"sses", b"ss");
        } else if self.ends_with(b"ies") {
            self.replace_suffix(b"ies", b"i");
        } else if self.ends_with(b"ss") {
            // unchanged
        } else if self.ends_with(b"s") {
            self.replace_suffix(b"s", b"");
        }
    }

    fn step1b(&mut self) {
        if self.ends_with(b"eed") {
            if let Some(j) = self.stem_end(b"eed") {
                if self.measure(j) > 0 {
                    self.replace_suffix(b"eed", b"ee");
                }
            }
            return;
        }
        let fired = if self.ends_with(b"ed") {
            match self.stem_end(b"ed") {
                Some(j) if self.has_vowel(j) => {
                    self.replace_suffix(b"ed", b"");
                    true
                }
                _ => false,
            }
        } else if self.ends_with(b"ing") {
            match self.stem_end(b"ing") {
                Some(j) if self.has_vowel(j) => {
                    self.replace_suffix(b"ing", b"");
                    true
                }
                _ => false,
            }
        } else {
            false
        };
        if !fired {
            return;
        }
        if self.ends_with(b"at") {
            self.replace_suffix(b"at", b"ate");
        } else if self.ends_with(b"bl") {
            self.replace_suffix(b"bl", b"ble");
        } else if self.ends_with(b"iz") {
            self.replace_suffix(b"iz", b"ize");
        } else {
            let j = self.b.len() - 1;
            if self.double_consonant(j) && !matches!(self.b[j], b'l' | b's' | b'z') {
                self.b.truncate(j);
            } else if self.measure(j) == 1 && self.cvc(j) {
                self.b.push(b'e');
            }
        }
    }

    fn step1c(&mut self) {
        if self.ends_with(b"y") {
            if let Some(j) = self.stem_end(b"y") {
                if self.has_vowel(j) {
                    let last = self.b.len() - 1;
                    self.b[last] = b'i';
                }
            }
        }
    }

    fn step2(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"ational", b"ate"),
            (b"tional", b"tion"),
            (b"enci", b"ence"),
            (b"anci", b"ance"),
            (b"izer", b"ize"),
            (b"bli", b"ble"),
            (b"alli", b"al"),
            (b"entli", b"ent"),
            (b"eli", b"e"),
            (b"ousli", b"ous"),
            (b"ization", b"ize"),
            (b"ation", b"ate"),
            (b"ator", b"ate"),
            (b"alism", b"al"),
            (b"iveness", b"ive"),
            (b"fulness", b"ful"),
            (b"ousness", b"ous"),
            (b"aliti", b"al"),
            (b"iviti", b"ive"),
            (b"biliti", b"ble"),
            (b"logi", b"log"),
        ];
        for &(suf, rep) in RULES {
            if self.rule(suf, rep, 0) {
                return;
            }
        }
    }

    fn step3(&mut self) {
        const RULES: &[(&[u8], &[u8])] = &[
            (b"icate", b"ic"),
            (b"ative", b""),
            (b"alize", b"al"),
            (b"iciti", b"ic"),
            (b"ical", b"ic"),
            (b"ful", b""),
            (b"ness", b""),
        ];
        for &(suf, rep) in RULES {
            if self.rule(suf, rep, 0) {
                return;
            }
        }
    }

    fn step4(&mut self) {
        const SUFFIXES: &[&[u8]] = &[
            b"al", b"ance", b"ence", b"er", b"ic", b"able", b"ible", b"ant", b"ement", b"ment",
            b"ent", b"ion", b"ou", b"ism", b"ate", b"iti", b"ous", b"ive", b"ize",
        ];
        for &suf in SUFFIXES {
            if !self.ends_with(suf) {
                continue;
            }
            let Some(j) = self.stem_end(suf) else {
                return;
            };
            if self.measure(j) > 1 {
                // "ion" additionally requires the stem to end in s or t.
                if suf == b"ion" && !matches!(self.b[j], b's' | b't') {
                    return;
                }
                self.replace_suffix(suf, b"");
            }
            return;
        }
    }

    fn step5a(&mut self) {
        if self.ends_with(b"e") {
            let Some(j) = self.stem_end(b"e") else {
                return;
            };
            let m = self.measure(j);
            if m > 1 || (m == 1 && !self.cvc(j)) {
                self.b.truncate(self.b.len() - 1);
            }
        }
    }

    fn step5b(&mut self) {
        let j = self.b.len() - 1;
        if self.b[j] == b'l' && self.double_consonant(j) && self.measure(j) > 1 {
            self.b.truncate(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stem(w: &str) -> String {
        porter_stem(w)
    }

    #[test]
    fn classic_examples() {
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("caress"), "caress");
        assert_eq!(stem("cats"), "cat");
        assert_eq!(stem("feed"), "feed");
        assert_eq!(stem("agreed"), "agre");
        assert_eq!(stem("plastered"), "plaster");
        assert_eq!(stem("bled"), "bled");
        assert_eq!(stem("motoring"), "motor");
        assert_eq!(stem("sing"), "sing");
        assert_eq!(stem("conflated"), "conflat");
        assert_eq!(stem("troubled"), "troubl");
        assert_eq!(stem("sized"), "size");
        assert_eq!(stem("hopping"), "hop");
        assert_eq!(stem("tanned"), "tan");
        assert_eq!(stem("falling"), "fall");
        assert_eq!(stem("hissing"), "hiss");
        assert_eq!(stem("fizzed"), "fizz");
        assert_eq!(stem("failing"), "fail");
        assert_eq!(stem("filing"), "file");
    }

    #[test]
    fn step2_examples() {
        assert_eq!(stem("relational"), "relat");
        assert_eq!(stem("conditional"), "condit");
        assert_eq!(stem("rational"), "ration");
        assert_eq!(stem("valenci"), "valenc");
        assert_eq!(stem("digitizer"), "digit");
        assert_eq!(stem("operator"), "oper");
        assert_eq!(stem("sensitiviti"), "sensit");
    }

    #[test]
    fn step3_step4_examples() {
        assert_eq!(stem("triplicate"), "triplic");
        assert_eq!(stem("formative"), "form");
        assert_eq!(stem("formalize"), "formal");
        assert_eq!(stem("hopefulness"), "hope");
        assert_eq!(stem("goodness"), "good");
        assert_eq!(stem("revival"), "reviv");
        assert_eq!(stem("allowance"), "allow");
        assert_eq!(stem("inference"), "infer");
        assert_eq!(stem("adjustment"), "adjust");
        assert_eq!(stem("adoption"), "adopt");
        assert_eq!(stem("effective"), "effect");
    }

    #[test]
    fn step5_examples() {
        assert_eq!(stem("probate"), "probat");
        assert_eq!(stem("rate"), "rate");
        assert_eq!(stem("cease"), "ceas");
        assert_eq!(stem("controll"), "control");
        assert_eq!(stem("roll"), "roll");
    }

    #[test]
    fn paper_topic_terms() {
        // Section 2.3 of the paper lists MI-selected stems for "Data Mining".
        assert_eq!(stem("mining"), "mine");
        assert_eq!(stem("knowledge"), "knowledg");
        assert_eq!(stem("patterns"), "pattern");
        assert_eq!(stem("clustering"), "cluster");
        assert_eq!(stem("discovery"), "discoveri");
        assert_eq!(stem("discovering"), "discov");
        assert_eq!(stem("databases"), "databas");
        assert_eq!(stem("genetic"), "genet");
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("a"), "a");
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("by"), "by");
    }

    #[test]
    fn non_ascii_passthrough() {
        assert_eq!(stem("café"), "café");
    }

    #[test]
    fn idempotent_on_common_vocabulary() {
        for w in [
            "information",
            "retrieval",
            "classification",
            "authorities",
            "hyperlinks",
            "crawling",
            "recovery",
            "transactions",
            "logging",
            "archetypes",
        ] {
            let once = stem(w);
            let twice = stem(&once);
            // Porter is not idempotent in general, but must be stable for
            // this core vocabulary so re-analysis does not shift features.
            assert_eq!(once, twice, "stem of {w} not stable");
        }
    }
}
