//! A small, forgiving HTML parser: tag stripping, title extraction, and
//! hyperlink + anchor-text extraction (Sections 2.1-2.2).
//!
//! It is not a full HTML5 tree builder; it handles what a crawler needs
//! from real-world tag soup: nested/unclosed tags, attributes with single,
//! double or no quotes, comments, `script`/`style` content skipping, and
//! the common character entities.

/// A parsed HTML document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HtmlDocument {
    /// Contents of the first `<title>` element, whitespace-normalized.
    pub title: String,
    /// Visible text with tags removed, whitespace-normalized.
    pub text: String,
    /// All `<a href=...>` hyperlinks in document order.
    pub links: Vec<Hyperlink>,
}

/// One extracted `<a>` element.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hyperlink {
    /// The raw `href` attribute value.
    pub href: String,
    /// Text between `<a>` and `</a>`, whitespace-normalized.
    pub anchor: String,
}

/// Parse an HTML string.
pub fn parse(input: &str) -> HtmlDocument {
    Parser::new(input).run()
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    text: String,
    title: String,
    links: Vec<Hyperlink>,
    /// Set while inside `<title>`.
    in_title: bool,
    /// Anchor currently being collected (href, anchor text).
    open_anchor: Option<(String, String)>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            pos: 0,
            text: String::with_capacity(input.len() / 2),
            title: String::new(),
            links: Vec::new(),
            in_title: false,
            open_anchor: None,
        }
    }

    fn run(mut self) -> HtmlDocument {
        while self.pos < self.input.len() {
            match self.input[self.pos..].find('<') {
                None => {
                    let rest = &self.input[self.pos..];
                    self.emit_text(rest);
                    break;
                }
                Some(rel) => {
                    let text_chunk = &self.input[self.pos..self.pos + rel];
                    self.emit_text(text_chunk);
                    self.pos += rel;
                    self.consume_tag();
                }
            }
        }
        if let Some((href, anchor)) = self.open_anchor.take() {
            // Unclosed <a> at EOF: keep what we have.
            self.links.push(Hyperlink {
                href,
                anchor: normalize_ws(&anchor),
            });
        }
        HtmlDocument {
            title: normalize_ws(&self.title),
            text: normalize_ws(&self.text),
            links: self.links,
        }
    }

    fn emit_text(&mut self, raw: &str) {
        if raw.is_empty() {
            return;
        }
        let decoded = decode_entities(raw);
        if self.in_title {
            self.title.push_str(&decoded);
            self.title.push(' ');
        }
        if let Some((_, anchor)) = self.open_anchor.as_mut() {
            anchor.push_str(&decoded);
            anchor.push(' ');
        }
        self.text.push_str(&decoded);
        self.text.push(' ');
    }

    /// `self.pos` points at `<`. Consume the whole tag (or comment).
    fn consume_tag(&mut self) {
        let rest = &self.input[self.pos..];
        if rest.starts_with("<!--") {
            match rest.find("-->") {
                Some(end) => self.pos += end + 3,
                None => self.pos = self.input.len(),
            }
            return;
        }
        let Some(end_rel) = rest.find('>') else {
            self.pos = self.input.len();
            return;
        };
        let tag_body = &rest[1..end_rel];
        self.pos += end_rel + 1;

        let (closing, tag_body) = match tag_body.strip_prefix('/') {
            Some(t) => (true, t),
            None => (false, tag_body),
        };
        let name_end = tag_body
            .find(|c: char| c.is_whitespace() || c == '/')
            .unwrap_or(tag_body.len());
        let name = tag_body[..name_end].to_ascii_lowercase();
        let attrs = &tag_body[name_end..];

        match (closing, name.as_str()) {
            (false, "title") => self.in_title = self.title.is_empty(),
            (true, "title") => self.in_title = false,
            (false, "script") | (false, "style") => self.skip_raw_content(&name),
            (false, "a") => {
                // A nested <a> implicitly closes the previous one.
                self.close_anchor();
                if let Some(href) = extract_attr(attrs, "href") {
                    self.open_anchor = Some((href, String::new()));
                }
            }
            (true, "a") => self.close_anchor(),
            _ => {}
        }
        // Block-level boundaries separate words.
        if matches!(
            name.as_str(),
            "p" | "br" | "div" | "td" | "tr" | "li" | "h1" | "h2" | "h3" | "h4"
        ) {
            self.text.push(' ');
        }
    }

    fn close_anchor(&mut self) {
        if let Some((href, anchor)) = self.open_anchor.take() {
            self.links.push(Hyperlink {
                href,
                anchor: normalize_ws(&anchor),
            });
        }
    }

    /// Skip everything until the matching close tag of `script`/`style`.
    fn skip_raw_content(&mut self, name: &str) {
        let close = format!("</{name}");
        let hay = &self.input[self.pos..];
        let lower = hay.to_ascii_lowercase();
        match lower.find(&close) {
            Some(rel) => {
                let after = &self.input[self.pos + rel..];
                match after.find('>') {
                    Some(gt) => self.pos += rel + gt + 1,
                    None => self.pos = self.input.len(),
                }
            }
            None => self.pos = self.input.len(),
        }
    }
}

/// Extract an attribute value from a tag-attribute string, handling
/// double-quoted, single-quoted and bare values.
fn extract_attr(attrs: &str, wanted: &str) -> Option<String> {
    let lower = attrs.to_ascii_lowercase();
    let mut search_from = 0;
    while let Some(rel) = lower[search_from..].find(wanted) {
        let at = search_from + rel;
        // Must be a standalone attribute name.
        let before_ok = at == 0
            || lower.as_bytes()[at - 1].is_ascii_whitespace()
            || lower.as_bytes()[at - 1] == b'\'';
        let after = at + wanted.len();
        let tail = lower[after..].trim_start();
        if before_ok && tail.starts_with('=') {
            let val_start_in_lower = after + (lower[after..].len() - tail.len()) + 1;
            let val = attrs[val_start_in_lower..].trim_start();
            return Some(match val.as_bytes().first() {
                Some(b'"') => val[1..].split('"').next().unwrap_or("").to_string(),
                Some(b'\'') => val[1..].split('\'').next().unwrap_or("").to_string(),
                _ => val
                    .split(|c: char| c.is_whitespace())
                    .next()
                    .unwrap_or("")
                    .to_string(),
            });
        }
        search_from = at + wanted.len();
    }
    None
}

/// Decode the handful of entities that matter for text analysis.
fn decode_entities(raw: &str) -> String {
    if !raw.contains('&') {
        return raw.to_string();
    }
    let mut out = String::with_capacity(raw.len());
    let mut rest = raw;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let tail = &rest[amp..];
        let (rep, len) = if tail.starts_with("&amp;") {
            ("&", 5)
        } else if tail.starts_with("&lt;") {
            ("<", 4)
        } else if tail.starts_with("&gt;") {
            (">", 4)
        } else if tail.starts_with("&quot;") {
            ("\"", 6)
        } else if tail.starts_with("&apos;") {
            ("'", 6)
        } else if tail.starts_with("&nbsp;") {
            (" ", 6)
        } else {
            ("&", 1)
        };
        out.push_str(rep);
        rest = &tail[len..];
    }
    out.push_str(rest);
    out
}

fn normalize_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_tags_and_normalizes() {
        let d = parse("<html><body><p>Hello   <b>focused</b>\ncrawling</p></body></html>");
        assert_eq!(d.text, "Hello focused crawling");
    }

    #[test]
    fn extracts_title() {
        let d = parse("<head><title>ARIES  Recovery</title></head><body>x</body>");
        assert_eq!(d.title, "ARIES Recovery");
    }

    #[test]
    fn only_first_title_counts() {
        let d = parse("<title>One</title><title>Two</title>");
        assert_eq!(d.title, "One");
    }

    #[test]
    fn extracts_links_with_anchors() {
        let d = parse(
            "<a href=\"http://x.org/a\">first link</a> mid \
             <a href='http://y.org/b'>second</a> <a href=bare>third</a>",
        );
        assert_eq!(d.links.len(), 3);
        assert_eq!(d.links[0].href, "http://x.org/a");
        assert_eq!(d.links[0].anchor, "first link");
        assert_eq!(d.links[1].href, "http://y.org/b");
        assert_eq!(d.links[2].href, "bare");
        assert_eq!(d.links[2].anchor, "third");
    }

    #[test]
    fn anchor_without_href_ignored() {
        let d = parse("<a name=\"top\">anchor</a>");
        assert!(d.links.is_empty());
        assert_eq!(d.text, "anchor");
    }

    #[test]
    fn skips_script_and_style() {
        let d = parse("<script>var x = '<a href=q>no</a>';</script><style>p{}</style>visible");
        assert_eq!(d.text, "visible");
        assert!(d.links.is_empty());
    }

    #[test]
    fn skips_comments() {
        let d = parse("before<!-- <a href=x>hidden</a> -->after");
        assert_eq!(d.text, "before after");
        assert!(d.links.is_empty());
    }

    #[test]
    fn decodes_entities() {
        let d = parse("Tom &amp; Jerry &lt;3 &quot;cartoons&quot;&nbsp;forever");
        assert_eq!(d.text, "Tom & Jerry <3 \"cartoons\" forever");
    }

    #[test]
    fn unclosed_anchor_at_eof() {
        let d = parse("<a href=\"http://x/\">dangling text");
        assert_eq!(d.links.len(), 1);
        assert_eq!(d.links[0].anchor, "dangling text");
    }

    #[test]
    fn nested_anchor_closes_previous() {
        let d = parse("<a href=\"u1\">one <a href=\"u2\">two</a>");
        assert_eq!(d.links.len(), 2);
        assert_eq!(d.links[0].anchor, "one");
        assert_eq!(d.links[1].anchor, "two");
    }

    #[test]
    fn malformed_tag_no_panic() {
        let d = parse("text < notatag and <a href=");
        assert!(d.text.starts_with("text"));
    }

    #[test]
    fn hreflang_is_not_href() {
        let d = parse("<a hreflang=\"en\" href=\"real\">x</a>");
        assert_eq!(d.links[0].href, "real");
    }
}
