//! Tokenization: lowercasing, alphabetic token extraction and stopword
//! elimination (Section 2.2).

use crate::stopwords;

/// Token length limits: tokens outside this range carry no topical signal
/// (single letters, base64 blobs, crawler-trap noise).
const MIN_TOKEN_LEN: usize = 2;
const MAX_TOKEN_LEN: usize = 32;

/// A configurable tokenizer. The default configuration matches the paper's
/// analyzer (basic stopwords); [`Tokenizer::for_anchor_text`] applies the
/// extended anchor stopword list of Section 3.4.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    anchor_mode: bool,
}

impl Tokenizer {
    /// Tokenizer with the extended stopword list for anchor texts.
    pub fn for_anchor_text() -> Self {
        Tokenizer { anchor_mode: true }
    }

    /// Iterate over normalized (lowercased, stopword-filtered) tokens of
    /// `text`. Tokens are maximal runs of alphabetic characters; digits and
    /// punctuation are separators.
    pub fn tokens<'a>(&'a self, text: &'a str) -> impl Iterator<Item = String> + 'a {
        TokenIter {
            rest: text,
            anchor_mode: self.anchor_mode,
        }
    }
}

struct TokenIter<'a> {
    rest: &'a str,
    anchor_mode: bool,
}

impl Iterator for TokenIter<'_> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        loop {
            let start = self.rest.find(|c: char| c.is_alphabetic())?;
            let tail = &self.rest[start..];
            let end = tail
                .find(|c: char| !c.is_alphabetic())
                .unwrap_or(tail.len());
            let raw = &tail[..end];
            self.rest = &tail[end..];
            if raw.len() < MIN_TOKEN_LEN || raw.len() > MAX_TOKEN_LEN {
                continue;
            }
            let lower = raw.to_lowercase();
            let stop = if self.anchor_mode {
                stopwords::is_anchor_stopword(&lower)
            } else {
                stopwords::is_stopword(&lower)
            };
            if !stop {
                return Some(lower);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(t: &str) -> Vec<String> {
        Tokenizer::default().tokens(t).collect()
    }

    #[test]
    fn splits_on_non_alpha() {
        assert_eq!(toks("foo-bar_baz 42 qux"), vec!["foo", "bar", "baz", "qux"]);
    }

    #[test]
    fn lowercases() {
        assert_eq!(toks("ARIES Recovery"), vec!["aries", "recovery"]);
    }

    #[test]
    fn drops_stopwords() {
        assert_eq!(
            toks("the anatomy of a large scale engine"),
            vec!["anatomy", "large", "scale", "engine"]
        );
    }

    #[test]
    fn drops_single_letters_and_overlong() {
        let long = "x".repeat(40);
        assert_eq!(toks(&format!("q {long} ok")), vec!["ok"]);
    }

    #[test]
    fn anchor_mode_extended_stopwords() {
        let t = Tokenizer::for_anchor_text();
        let got: Vec<String> = t.tokens("click here for the shore release").collect();
        assert_eq!(got, vec!["shore", "release"]);
    }

    #[test]
    fn empty_input() {
        assert!(toks("").is_empty());
        assert!(toks("123 ... !!").is_empty());
    }
}
