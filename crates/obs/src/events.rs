//! Structured event log keyed to the virtual clock.
//!
//! Events record the *rare, interesting* state transitions of a run —
//! breaker trips, checkpoint writes, retraining rounds, phase switches —
//! not per-document traffic (that is what histograms are for). Fields
//! are stored as a sorted map of canonical strings, so a log serializes
//! to byte-identical JSONL across same-seed runs.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One structured event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    /// Virtual-clock timestamp (ms).
    pub t_ms: u64,
    /// Emission sequence number, unique within one log.
    pub seq: u64,
    /// Event kind, dot-namespaced (`crawl.breaker.open`).
    pub kind: String,
    /// Sorted key → canonical-string-value fields.
    pub fields: BTreeMap<String, String>,
}

impl Event {
    /// New event at virtual time `t_ms` (the sequence number is assigned
    /// by the log at emission).
    pub fn at(t_ms: u64, kind: &str) -> Self {
        Event {
            t_ms,
            seq: 0,
            kind: kind.to_string(),
            fields: BTreeMap::new(),
        }
    }

    /// Attach a field (any `Display` value, canonicalized to a string).
    pub fn with(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.fields.insert(key.to_string(), value.to_string());
        self
    }
}

struct Inner {
    events: Vec<Event>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded in-memory event log. When the capacity is reached further
/// events are counted as dropped rather than silently lost — the drop
/// count is part of the telemetry.
pub struct EventLog {
    inner: Mutex<Inner>,
    cap: usize,
}

/// Default capacity: plenty for the rare-transition discipline above.
pub const DEFAULT_EVENT_CAP: usize = 65_536;

impl Default for EventLog {
    fn default() -> Self {
        EventLog::with_capacity(DEFAULT_EVENT_CAP)
    }
}

impl EventLog {
    /// New log retaining at most `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventLog {
            inner: Mutex::new(Inner {
                events: Vec::new(),
                next_seq: 0,
                dropped: 0,
            }),
            cap,
        }
    }

    /// Append an event, assigning the next sequence number.
    pub fn emit(&self, mut event: Event) {
        let mut inner = self.inner.lock();
        event.seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() < self.cap {
            inner.events.push(event);
        } else {
            inner.dropped += 1;
        }
    }

    /// Events recorded so far (clone; the log keeps accepting).
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.clone()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped after the capacity was reached.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Serialize to JSONL: one compact JSON object per line, in emission
    /// order. Byte-identical across same-seed runs.
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for e in &inner.events {
            out.push_str(&serde_json::to_string(e).expect("event serializes"));
            out.push('\n');
        }
        out
    }

    /// Write the JSONL rendering to a file.
    pub fn write_jsonl<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_get_sequence_numbers_and_sorted_fields() {
        let log = EventLog::default();
        log.emit(
            Event::at(10, "crawl.breaker.open")
                .with("host", "h9")
                .with("cycle", 2),
        );
        log.emit(Event::at(25, "crawl.checkpoint.write").with("docs", 100));
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        let keys: Vec<&String> = events[0].fields.keys().collect();
        assert_eq!(keys, ["cycle", "host"], "fields iterate sorted");
    }

    #[test]
    fn jsonl_is_byte_stable() {
        let build = || {
            let log = EventLog::default();
            log.emit(Event::at(5, "a").with("z", 1).with("a", "x"));
            log.emit(Event::at(9, "b"));
            log.to_jsonl()
        };
        let j = build();
        assert_eq!(j, build());
        assert_eq!(j.lines().count(), 2);
        // Round-trip.
        let first: Event = serde_json::from_str(j.lines().next().unwrap()).unwrap();
        assert_eq!(first.t_ms, 5);
        assert_eq!(first.fields["a"], "x");
    }

    #[test]
    fn capacity_counts_drops() {
        let log = EventLog::with_capacity(2);
        for i in 0..5 {
            log.emit(Event::at(i, "e"));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
    }
}
