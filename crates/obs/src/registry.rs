//! The metrics registry: named counters, gauges and histograms with
//! deterministic snapshots.

use crate::histogram::{Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter. Cloning shares the underlying
/// atomic; increments are relaxed and therefore lock-free.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, pool sizes).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<Histogram>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    slot: Slot,
    volatile: bool,
}

/// A namespace of metrics. The registry lock is taken only on handle
/// creation and snapshotting; observations go straight to the shared
/// atomics behind the handles.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Entry>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn entry<T: Clone>(
        &self,
        name: &str,
        volatile: bool,
        make: impl FnOnce() -> Slot,
        view: impl Fn(&Slot) -> Option<T>,
    ) -> T {
        let mut metrics = self.metrics.lock();
        let entry = metrics.entry(name.to_string()).or_insert_with(|| Entry {
            slot: make(),
            volatile,
        });
        view(&entry.slot).unwrap_or_else(|| {
            panic!(
                "metric {name:?} already registered as a {}",
                entry.slot.kind()
            )
        })
    }

    /// Get or register a deterministic counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.entry(
            name,
            false,
            || Slot::Counter(Counter::default()),
            |s| match s {
                Slot::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Get or register a deterministic gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.entry(
            name,
            false,
            || Slot::Gauge(Gauge::default()),
            |s| match s {
                Slot::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    fn histogram_impl(&self, name: &str, volatile: bool) -> Arc<Histogram> {
        self.entry(
            name,
            volatile,
            || Slot::Histogram(Arc::new(Histogram::new())),
            |s| match s {
                Slot::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Get or register a deterministic histogram — for values derived
    /// from the virtual clock or document contents.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_impl(name, false)
    }

    /// Get or register a *volatile* histogram — for wall-clock values.
    /// Excluded from [`MetricsSnapshot::deterministic`].
    pub fn wall_histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_impl(name, true)
    }

    /// Freeze every metric into a serializable snapshot. Keys iterate
    /// in sorted order, so serialization is byte-stable.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock();
        let mut snap = MetricsSnapshot::default();
        for (name, entry) in metrics.iter() {
            if entry.volatile {
                snap.volatile.insert(name.clone());
            }
            match &entry.slot {
                Slot::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Slot::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Slot::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }
}

/// Frozen registry state. `volatile` names the wall-clock metrics;
/// [`MetricsSnapshot::deterministic`] strips them for byte-identity
/// comparisons across same-seed runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Names of wall-clock (non-deterministic) metrics.
    pub volatile: BTreeSet<String>,
}

impl MetricsSnapshot {
    /// A copy with every volatile (wall-clock) metric removed. Two
    /// same-seed runs must serialize this to identical bytes.
    pub fn deterministic(&self) -> MetricsSnapshot {
        let keep_c = |m: &BTreeMap<String, u64>| {
            m.iter()
                .filter(|(k, _)| !self.volatile.contains(*k))
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        };
        MetricsSnapshot {
            counters: keep_c(&self.counters),
            gauges: self
                .gauges
                .iter()
                .filter(|(k, _)| !self.volatile.contains(*k))
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| !self.volatile.contains(*k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            volatile: BTreeSet::new(),
        }
    }

    /// Pretty JSON rendering (sorted keys → byte-stable).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x.count");
        let b = reg.counter("x.count");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x.count").get(), 3);

        let g = reg.gauge("x.depth");
        g.set(7);
        g.add(-2);
        assert_eq!(reg.gauge("x.depth").get(), 5);

        reg.histogram("x.hist").observe(9);
        assert_eq!(reg.histogram("x.hist").count(), 1);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_byte_stable() {
        let run = || {
            let reg = Registry::new();
            // Registration order intentionally unsorted.
            reg.counter("z.last").add(5);
            reg.histogram("m.mid").observe(100);
            reg.counter("a.first").inc();
            reg.gauge("g.depth").set(-3);
            reg.snapshot().to_json()
        };
        let j1 = run();
        let j2 = run();
        assert_eq!(j1, j2);
        let a = j1.find("a.first").unwrap();
        let z = j1.find("z.last").unwrap();
        assert!(a < z, "keys must serialize sorted");
    }

    #[test]
    fn deterministic_filters_volatile() {
        let reg = Registry::new();
        reg.counter("keep").inc();
        reg.wall_histogram("drop.wall_ms").observe(123);
        let snap = reg.snapshot();
        assert_eq!(snap.volatile.len(), 1);
        let det = snap.deterministic();
        assert!(det.volatile.is_empty());
        assert!(det.histograms.is_empty());
        assert_eq!(det.counters.len(), 1);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let reg = Registry::new();
        reg.counter("c").add(4);
        reg.histogram("h").observe(77);
        let snap = reg.snapshot();
        let back: MetricsSnapshot = serde_json::from_str(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
    }
}
