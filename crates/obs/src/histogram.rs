//! Fixed log-scale histograms.
//!
//! Values are `u64` (virtual milliseconds, byte counts, micro-units of
//! scaled floats). Buckets are powers of two: bucket 0 holds the value
//! 0, bucket `i` (1 ≤ i < [`OVERFLOW_BUCKET`]) holds values in
//! `[2^(i-1), 2^i)`, and the last bucket absorbs everything at or above
//! `2^(OVERFLOW_BUCKET-1)`. The layout is fixed at compile time — no
//! rebucketing, no allocation on the observe path, and identical
//! snapshots for identical observation multisets regardless of order.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: zero bucket + 40 power-of-two buckets + overflow.
pub const BUCKET_COUNT: usize = 42;
/// Index of the overflow bucket (values ≥ 2^40, ≈ 35 years in ms).
pub const OVERFLOW_BUCKET: usize = BUCKET_COUNT - 1;

/// A lock-free log-scale histogram. All mutation is relaxed atomic
/// increments; aggregation across threads is order-independent.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of a value under the fixed log-2 layout.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(OVERFLOW_BUCKET)
    }
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the overflow
/// bucket) — the `le` field of snapshot entries.
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= OVERFLOW_BUCKET => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// New empty histogram.
    pub fn new() -> Self {
        let h = Histogram::default();
        h.min.store(u64::MAX, Ordering::Relaxed);
        h
    }

    /// Record one value.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Immutable snapshot (only non-empty buckets are materialized).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push(BucketCount {
                    le: bucket_upper_bound(i),
                    n,
                });
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum(),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty bucket of a snapshot: `n` observations ≤ `le`
/// (and greater than the previous bucket's bound).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Observations that landed in the bucket.
    pub n: u64,
}

/// Frozen histogram state, deterministic for identical observation
/// multisets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Non-empty buckets in ascending `le` order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0 when empty).
    /// Coarse by construction — log-scale buckets bound the answer
    /// within a factor of two.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.n;
            if seen >= target.max(1) {
                return b.le;
            }
        }
        self.buckets.last().map(|b| b.le).unwrap_or(0)
    }

    /// Estimated value at quantile `q` (0 when empty).
    ///
    /// Unlike [`HistogramSnapshot::quantile`], which returns the raw
    /// upper bound of the containing bucket, this interpolates linearly
    /// inside the bucket (observations assumed uniform within it) and
    /// clamps to the recorded `min`/`max`, so estimates stay inside the
    /// observed range even for the overflow bucket. Deterministic for
    /// identical observation multisets.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for b in &self.buckets {
            if seen + b.n >= target {
                // Lower bound of the log2 bucket with inclusive upper
                // bound `le`: 0 for the zero bucket, 2^(i-1) otherwise.
                let lower = match b.le {
                    0 => 0,
                    u64::MAX => 1u64 << (OVERFLOW_BUCKET - 1),
                    le => (le >> 1) + 1,
                };
                let hi = b.le.min(self.max);
                let lo = lower.max(self.min).min(hi);
                let frac = (target - seen) as f64 / b.n as f64;
                return lo + ((hi - lo) as f64 * frac).round() as u64;
            }
            seen += b.n;
        }
        self.max
    }

    /// Median estimate — see [`HistogramSnapshot::percentile`].
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 90th-percentile estimate — see [`HistogramSnapshot::percentile`].
    pub fn p90(&self) -> u64 {
        self.percentile(0.90)
    }

    /// 99th-percentile estimate — see [`HistogramSnapshot::percentile`].
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), OVERFLOW_BUCKET);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(11), 2047);
        assert_eq!(bucket_upper_bound(OVERFLOW_BUCKET), u64::MAX);
        // Every value's bucket bound is consistent: v ≤ le(bucket_of(v)).
        for v in [0u64, 1, 2, 5, 100, 4096, 1 << 39, 1 << 45] {
            assert!(v <= bucket_upper_bound(bucket_of(v)), "v={v}");
        }
    }

    #[test]
    fn observations_aggregate_order_independently() {
        let a = Histogram::new();
        let b = Histogram::new();
        let values = [0u64, 1, 7, 7, 900, 1024, 1 << 41];
        for v in values {
            a.observe(v);
        }
        for v in values.iter().rev() {
            b.observe(*v);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        let s = a.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, values.iter().sum::<u64>());
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1 << 41);
    }

    #[test]
    fn quantile_and_mean() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert!((s.mean() - 50.5).abs() < 1e-9);
        // p50 of 1..=100 lands in the [32,63] bucket.
        assert_eq!(s.quantile(0.5), 63);
        assert_eq!(s.quantile(1.0), 127);
        assert_eq!(HistogramSnapshot::default_empty().quantile(0.5), 0);
    }

    #[test]
    fn percentile_interpolates_within_buckets() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        // The coarse quantile answers 63/127; interpolation lands near
        // the true values (50, 90, 99) and clamps to the observed range.
        assert!((45..=55).contains(&s.p50()), "p50={}", s.p50());
        assert!((80..=100).contains(&s.p90()), "p90={}", s.p90());
        assert!((90..=100).contains(&s.p99()), "p99={}", s.p99());
        assert_eq!(s.percentile(1.0), 100, "top percentile clamps to max");
        assert!(s.percentile(0.0) >= 1, "bottom percentile clamps to min");
        assert_eq!(HistogramSnapshot::default_empty().percentile(0.5), 0);
    }

    #[test]
    fn percentile_single_value_and_overflow() {
        let h = Histogram::new();
        h.observe(7);
        assert_eq!(h.snapshot().p50(), 7, "single value is every percentile");
        assert_eq!(h.snapshot().p99(), 7);
        let o = Histogram::new();
        o.observe(1 << 41);
        o.observe(1 << 41);
        let s = o.snapshot();
        // Overflow bucket estimates stay inside the observed range.
        assert_eq!(s.p50(), 1 << 41);
        assert_eq!(s.p99(), 1 << 41);
    }

    impl HistogramSnapshot {
        fn default_empty() -> Self {
            Histogram::new().snapshot()
        }
    }
}
