//! Observability substrate for the BINGO! workspace.
//!
//! The paper tracks crawl quality through quantities it watches
//! constantly — harvest ratio, SVM confidence distributions, frontier
//! depth, per-host fetch health — but computes them ad hoc. Industrial
//! crawlers (BUbiNG and friends) treat always-on metrics as a
//! first-class subsystem. This crate is that subsystem:
//!
//! * a lock-cheap [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   log-scale [`Histogram`]s — handles are `Arc`-backed atomics, so the
//!   hot path pays one relaxed atomic op per observation and never
//!   touches the registry lock after creation,
//! * deterministic [`MetricsSnapshot`]s: metric values derived from the
//!   *virtual* clock or from document contents are byte-identical across
//!   same-seed runs; wall-clock metrics are flagged volatile and can be
//!   filtered out with [`MetricsSnapshot::deterministic`],
//! * a structured [`EventLog`] keyed to the webworld virtual clock,
//!   serializing to JSONL with sorted fields so same-seed runs emit
//!   byte-identical telemetry,
//! * [`WallTimer`], a convenience stopwatch for the (volatile)
//!   wall-clock histograms.
//!
//! # Determinism rules
//!
//! 1. A metric observed from virtual time, document counts, or any other
//!    seed-derived quantity goes into a regular counter/gauge/histogram.
//! 2. A metric observed from wall time (checkpoint write cost, classify
//!    latency, index build time) goes into a `wall_histogram` /
//!    `wall_counter`, which snapshots mark volatile.
//! 3. Events carry only seed-derived fields and are emitted from the
//!    single-threaded discrete-event crawl loop, so sequence numbers are
//!    reproducible.
//!
//! Snapshots serialize through `BTreeMap`s, so JSON key order is the
//! sorted metric-name order regardless of registration order.

pub mod events;
pub mod histogram;
pub mod registry;

pub use events::{Event, EventLog};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, MetricsSnapshot, Registry};

/// Wall-clock stopwatch feeding volatile histograms.
///
/// Wall durations are inherently non-deterministic; record them only
/// into metrics created via [`Registry::wall_histogram`] so they stay
/// out of deterministic snapshots.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer(std::time::Instant);

impl WallTimer {
    /// Start timing now.
    pub fn start() -> Self {
        WallTimer(std::time::Instant::now())
    }

    /// Elapsed wall milliseconds.
    pub fn elapsed_ms(&self) -> u64 {
        self.0.elapsed().as_millis() as u64
    }

    /// Elapsed wall microseconds.
    pub fn elapsed_us(&self) -> u64 {
        self.0.elapsed().as_micros() as u64
    }

    /// Record elapsed milliseconds into `hist` and return them.
    pub fn observe_ms(&self, hist: &Histogram) -> u64 {
        let ms = self.elapsed_ms();
        hist.observe(ms);
        ms
    }

    /// Record elapsed microseconds into `hist` and return them.
    pub fn observe_us(&self, hist: &Histogram) -> u64 {
        let us = self.elapsed_us();
        hist.observe(us);
        us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_timer_observes_into_histogram() {
        let reg = Registry::new();
        let h = reg.wall_histogram("t.wall_us");
        let t = WallTimer::start();
        let us = t.observe_us(&h);
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= us || h.sum() <= us + 1);
    }

    #[test]
    fn wall_metrics_are_volatile_in_snapshots() {
        let reg = Registry::new();
        reg.counter("a.count").inc();
        reg.wall_histogram("a.wall_ms").observe(5);
        let snap = reg.snapshot();
        assert!(snap.histograms.contains_key("a.wall_ms"));
        let det = snap.deterministic();
        assert!(!det.histograms.contains_key("a.wall_ms"));
        assert_eq!(det.counters["a.count"], 1);
    }
}
