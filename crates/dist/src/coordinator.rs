//! The distributed-crawl coordinator: host-sharded dispatch, lease
//! supervision, node fault handling, and crash-consistent multi-node
//! snapshots — all on one virtual clock.
//!
//! The coordinator owns the [`LeaseQueue`] and a slot per worker node.
//! Each scheduling round it (1) applies due fault windows from the
//! [`NodeFaultPlan`] — kills drop the node and replay its
//! uncheckpointed completions, stalls push its next free time out —
//! and restarts nodes whose kill window ended, restoring their store
//! from the last committed generation; (2) expires overdue leases;
//! (3) leases a batch to every live, free node and drives it through
//! the node's pipeline, acking on durable bulk-load and sharding the
//! discovered links back into the queue; (4) commits a **two-phase
//! distributed snapshot** every [`DistConfig::snapshot_every_acks`]
//! acks: phase one writes every node's store (`node-K/store.jsonl`),
//! phase two writes the lease journal plus coordinator state and
//! commits the manifest — one generation, all nodes, atomically
//! visible or not at all.
//!
//! Recovery is the same path twice over:
//!
//! * a **node** kill loses only that node's memory; its completions
//!   past the last cut are replayed from the coordinator's in-memory
//!   record, its in-flight lease expires at its deadline, and the
//!   restarted node reloads its store from the committed generation;
//! * a **process** crash loses everything in memory; [`Coordinator::
//!   resume`] rolls the whole cluster back to the newest complete
//!   generation — node stores, lease journal (whose in-flight leases
//!   are orphan-requeued on load), and clock — so the crawl continues
//!   from a cut where all three agreed.

use crate::lease::{LeaseQueue, LeaseStats, QueuedItem, WorkItem, JOURNAL_FILE};
use crate::node::{scratch_dir, WorkerNode};
use crate::shard_of_url;
use crate::telemetry::DistTelemetry;
use bingo_crawler::BatchJudge;
use bingo_obs::Event;
use bingo_store::durable::{find_newest_complete, prune_generations, GenerationWriter};
use bingo_store::spill::reap_stale_spill_files;
use bingo_store::{DocumentStore, DurableFs, StdFs, SPILL_FILE_PREFIXES};
use bingo_textproc::Vocabulary;
use bingo_webworld::{NodeFaultKind, NodeFaultPlan, World};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Format marker of the coordinator state file.
pub const COORD_MAGIC: &str = "bingo-dist-coordinator";
/// Current coordinator state format version.
pub const COORD_VERSION: u32 = 1;
/// Coordinator state file inside a generation.
pub const COORD_FILE: &str = "coordinator.json";

/// Configuration of a distributed crawl.
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Worker nodes (== shards).
    pub nodes: usize,
    /// Session directory holding snapshot generations, the lease
    /// journal, and per-node scratch.
    pub session_dir: PathBuf,
    /// Virtual lease time-to-live; an unacked lease expires this long
    /// after issue.
    pub lease_ttl_ms: u64,
    /// Max items per lease.
    pub lease_batch: usize,
    /// Expired leases an item may ride before quarantine.
    pub poison_budget: u32,
    /// Commit a distributed snapshot every this many acks.
    pub snapshot_every_acks: u64,
    /// Links deeper than this are not followed.
    pub max_depth: u32,
    /// Complete snapshot generations kept on disk.
    pub keep_generations: usize,
    /// Virtual per-stored-document processing cost.
    pub node_proc_ms: u64,
}

impl DistConfig {
    /// Defaults for an N-node crawl under `session_dir`.
    pub fn new(nodes: usize, session_dir: impl Into<PathBuf>) -> Self {
        DistConfig {
            nodes: nodes.max(1),
            session_dir: session_dir.into(),
            lease_ttl_ms: 30_000,
            lease_batch: 16,
            poison_budget: 3,
            snapshot_every_acks: 64,
            max_depth: 4,
            keep_generations: 2,
            node_proc_ms: 2,
        }
    }
}

/// Deterministic counters of one distributed crawl.
#[derive(Debug, Default, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct DistStats {
    /// Documents stored across all nodes.
    pub stored: u64,
    /// Successful fetches.
    pub fetch_ok: u64,
    /// Fetch errors.
    pub fetch_err: u64,
    /// Redirect responses.
    pub redirects: u64,
    /// Node kills applied from the fault plan.
    pub kills: u64,
    /// Node stall windows applied.
    pub stalls: u64,
    /// Node restarts.
    pub restarts: u64,
    /// Completed items replayed after their node died before a cut.
    pub replayed: u64,
    /// Batches discarded because the node died mid-processing.
    pub discarded_batches: u64,
    /// Distributed snapshot generations committed.
    pub snapshots: u64,
}

/// Serialized coordinator state inside a snapshot generation.
#[derive(Debug, Serialize, Deserialize)]
struct CoordState {
    magic: String,
    version: u32,
    clock_ms: u64,
    nodes: usize,
    stats: DistStats,
}

struct NodeSlot {
    node: Option<WorkerNode>,
    /// The node is busy (or stalled) until this virtual instant.
    free_at: u64,
    /// When a killed node comes back (end of its kill window).
    restart_at: Option<u64>,
    /// Next fault window of this node not yet applied.
    fault_idx: usize,
}

/// The coordinator of an N-node distributed crawl.
pub struct Coordinator {
    world: Arc<World>,
    config: DistConfig,
    judge: Arc<dyn BatchJudge>,
    fs: Arc<dyn DurableFs>,
    vocab: Vocabulary,
    queue: LeaseQueue,
    slots: Vec<NodeSlot>,
    /// Last committed snapshot bytes per node (empty = empty store).
    node_restore: Vec<Vec<u8>>,
    /// Items acked per node since the last committed cut — replayed if
    /// that node dies before the next cut.
    uncheckpointed: Vec<Vec<QueuedItem>>,
    plan: NodeFaultPlan,
    telemetry: DistTelemetry,
    last_queue_stats: LeaseStats,
    clock_ms: u64,
    acks_since_snapshot: u64,
    stats: DistStats,
}

impl Coordinator {
    /// A fresh distributed crawl (durable writes through [`StdFs`]).
    pub fn new(world: Arc<World>, judge: Arc<dyn BatchJudge>, config: DistConfig) -> Self {
        Self::with_fs(world, judge, config, Arc::new(StdFs))
    }

    /// A fresh crawl with an injected filesystem (crash tests).
    pub fn with_fs(
        world: Arc<World>,
        judge: Arc<dyn BatchJudge>,
        config: DistConfig,
        fs: Arc<dyn DurableFs>,
    ) -> Self {
        let n = config.nodes;
        let telemetry = DistTelemetry::default();
        let reaped = reap_stale_spill_files(&config.session_dir, SPILL_FILE_PREFIXES);
        telemetry.scratch_reaped.add(reaped as u64);
        let queue = LeaseQueue::new(n, config.poison_budget, config.lease_ttl_ms);
        let slots = (0..n)
            .map(|k| NodeSlot {
                node: Some(WorkerNode::new(k, &config.session_dir)),
                free_at: 0,
                restart_at: None,
                fault_idx: 0,
            })
            .collect();
        Coordinator {
            world,
            judge,
            fs,
            vocab: Vocabulary::new(),
            queue,
            slots,
            node_restore: vec![Vec::new(); n],
            uncheckpointed: vec![Vec::new(); n],
            plan: NodeFaultPlan::empty(),
            telemetry,
            last_queue_stats: LeaseStats::default(),
            clock_ms: 0,
            acks_since_snapshot: 0,
            stats: DistStats::default(),
            config,
        }
    }

    /// Resume a crawl from the newest complete snapshot generation in
    /// `config.session_dir`. With no committed generation this is
    /// [`Coordinator::new`]. Rolls every node's store, the lease
    /// journal (orphaning its in-flight leases), and the clock back to
    /// the same cut.
    pub fn resume(
        world: Arc<World>,
        judge: Arc<dyn BatchJudge>,
        config: DistConfig,
    ) -> io::Result<Self> {
        let Some(generation) = find_newest_complete(&config.session_dir) else {
            return Ok(Self::new(world, judge, config));
        };
        let mut coord = Self::new(world, judge, config);
        let state_bytes = std::fs::read(generation.dir.join(COORD_FILE))?;
        let state: CoordState = serde_json::from_str(
            std::str::from_utf8(&state_bytes)
                .map_err(|e| io::Error::other(format!("coordinator state not utf-8: {e}")))?,
        )
        .map_err(|e| io::Error::other(e.to_string()))?;
        if state.magic != COORD_MAGIC || state.version != COORD_VERSION {
            return Err(io::Error::other("bad coordinator state header"));
        }
        if state.nodes != coord.config.nodes {
            return Err(io::Error::other(format!(
                "session has {} nodes, config wants {}",
                state.nodes, coord.config.nodes
            )));
        }
        coord.clock_ms = state.clock_ms;
        coord.stats = state.stats;
        coord.queue =
            LeaseQueue::from_journal_bytes(&std::fs::read(generation.dir.join(JOURNAL_FILE))?)?;
        for k in 0..coord.config.nodes {
            let bytes = std::fs::read(generation.dir.join(format!("node-{k}/store.jsonl")))?;
            let node = WorkerNode::restore(k, &coord.config.session_dir, &bytes)?;
            coord.node_restore[k] = bytes;
            coord.slots[k] = NodeSlot {
                node: Some(node),
                free_at: coord.clock_ms,
                restart_at: None,
                fault_idx: 0,
            };
        }
        coord.telemetry.events.emit(
            Event::at(coord.clock_ms, "dist.resume").with("generation", generation.generation),
        );
        Ok(coord)
    }

    /// Swap the durable filesystem used for snapshot commits — crash
    /// injection ([`bingo_store::durable::CrashFs`]) in tests.
    pub fn set_fs(&mut self, fs: Arc<dyn DurableFs>) {
        self.fs = fs;
    }

    /// Force a distributed snapshot commit now; returns the committed
    /// generation number.
    pub fn checkpoint(&mut self) -> io::Result<u64> {
        self.commit_snapshot()
    }

    /// Install the node-fault script (before [`Coordinator::run`]).
    pub fn install_faults(&mut self, plan: NodeFaultPlan) {
        // Windows already fully in the past (resume case) are skipped.
        let now = self.clock_ms;
        for (k, slot) in self.slots.iter_mut().enumerate() {
            slot.fault_idx = plan
                .windows_for(k)
                .iter()
                .take_while(|w| w.end_ms <= now)
                .count();
        }
        self.plan = plan;
    }

    /// Share a scenario-wide telemetry set (must be wired before any
    /// work runs for counters to be complete).
    pub fn set_telemetry(&mut self, telemetry: DistTelemetry) {
        self.telemetry = telemetry;
    }

    /// The telemetry handles in use.
    pub fn telemetry(&self) -> &DistTelemetry {
        &self.telemetry
    }

    /// Seed the crawl with a URL (sharded by host like any discovery).
    pub fn add_seed(&mut self, url: &str, topic: Option<u32>) {
        let shard = shard_of_url(url, self.config.nodes);
        self.queue.offer(
            shard,
            WorkItem {
                url: url.to_string(),
                depth: 0,
                src_topic: topic,
            },
        );
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> u64 {
        self.clock_ms
    }

    /// Crawl counters so far.
    pub fn stats(&self) -> &DistStats {
        &self.stats
    }

    /// The lease queue's counters.
    pub fn queue_stats(&self) -> LeaseStats {
        self.queue.stats()
    }

    /// Quarantined URLs.
    pub fn quarantined(&self) -> Vec<String> {
        self.queue
            .quarantined()
            .iter()
            .map(|q| q.url.clone())
            .collect()
    }

    /// Merge every node's store into one [`DocumentStore`] (each page
    /// is owned by exactly one node, so the merge is disjoint).
    pub fn combined_store(&self) -> DocumentStore {
        let combined = DocumentStore::new();
        for slot in &self.slots {
            if let Some(node) = &slot.node {
                let errs = combined.insert_documents(node.store().all_documents());
                debug_assert!(errs.is_empty(), "cross-node page collision: {errs:?}");
                combined.insert_links(node.store().all_links());
            }
        }
        combined
    }

    /// Run until the frontier drains or `budget_ms` of virtual time
    /// elapses, committing a final snapshot either way.
    pub fn run(&mut self, budget_ms: u64) -> io::Result<DistStats> {
        let deadline = self.clock_ms.saturating_add(budget_ms);
        loop {
            self.apply_faults()?;
            self.expire_leases();
            let progressed = self.dispatch()?;
            if self.acks_since_snapshot >= self.config.snapshot_every_acks {
                self.commit_snapshot()?;
            }
            if self.finished() || self.clock_ms >= deadline {
                break;
            }
            if !progressed {
                match self.next_event_after(self.clock_ms) {
                    Some(t) => self.clock_ms = t.min(deadline),
                    None => break,
                }
            }
        }
        self.commit_snapshot()?;
        Ok(self.stats.clone())
    }

    /// True when no work remains anywhere.
    fn finished(&self) -> bool {
        self.queue.pending_total() == 0 && self.queue.leased_total() == 0
    }

    /// Earliest future instant anything can change: a node frees up or
    /// restarts, a lease deadline passes, or a scripted fault starts.
    fn next_event_after(&self, now: u64) -> Option<u64> {
        let mut next: Option<u64> = None;
        let mut consider = |t: u64| {
            if t > now {
                next = Some(next.map_or(t, |n| n.min(t)));
            }
        };
        for (k, slot) in self.slots.iter().enumerate() {
            if slot.node.is_some() {
                consider(slot.free_at);
            }
            if let Some(t) = slot.restart_at {
                consider(t);
            }
            if let Some(w) = self.plan.windows_for(k).get(slot.fault_idx) {
                consider(w.start_ms);
                consider(w.end_ms);
            }
        }
        if let Some(t) = self.queue.next_deadline() {
            consider(t);
        }
        next
    }

    /// Apply every fault window that has started by now, then restart
    /// nodes whose kill window has ended.
    fn apply_faults(&mut self) -> io::Result<()> {
        let now = self.clock_ms;
        for k in 0..self.slots.len() {
            while let Some(&window) = self.plan.windows_for(k).get(self.slots[k].fault_idx) {
                if window.start_ms > now {
                    break;
                }
                self.slots[k].fault_idx += 1;
                match window.kind {
                    NodeFaultKind::Kill => {
                        if self.slots[k].node.take().is_some() {
                            self.stats.kills += 1;
                            self.telemetry.node_kills.inc();
                            self.telemetry.events.emit(
                                Event::at(window.start_ms, "dist.node.kill")
                                    .with("node", k)
                                    .with("until_ms", window.end_ms),
                            );
                            // Completions past the last cut died with
                            // the node's memory: put them back.
                            let replay = std::mem::take(&mut self.uncheckpointed[k]);
                            if !replay.is_empty() {
                                self.stats.replayed += replay.len() as u64;
                                self.telemetry.node_replayed.add(replay.len() as u64);
                                self.queue.requeue_replay(k, replay);
                            }
                        }
                        self.slots[k].restart_at = Some(window.end_ms.max(now));
                        self.slots[k].free_at = window.end_ms;
                    }
                    NodeFaultKind::Stall => {
                        if self.slots[k].node.is_some() {
                            self.stats.stalls += 1;
                            self.telemetry.node_stalls.inc();
                            self.telemetry.events.emit(
                                Event::at(window.start_ms, "dist.node.stall")
                                    .with("node", k)
                                    .with("until_ms", window.end_ms),
                            );
                            let slot = &mut self.slots[k];
                            slot.free_at = slot.free_at.max(window.end_ms);
                        }
                    }
                }
            }
            let due = self.slots[k].restart_at.is_some_and(|t| t <= now);
            if self.slots[k].node.is_none() && due {
                // Sweep the dead node's scratch before it comes back.
                let scratch = scratch_dir(&self.config.session_dir, k);
                if scratch.exists() && std::fs::remove_dir_all(&scratch).is_ok() {
                    self.telemetry.scratch_reaped.inc();
                }
                let node = WorkerNode::restore(k, &self.config.session_dir, &self.node_restore[k])?;
                self.slots[k].node = Some(node);
                self.slots[k].restart_at = None;
                self.slots[k].free_at = self.slots[k].free_at.max(now);
                self.stats.restarts += 1;
                self.telemetry.node_restarts.inc();
                self.telemetry
                    .events
                    .emit(Event::at(now, "dist.node.restart").with("node", k));
            }
        }
        self.telemetry
            .nodes_live
            .set(self.slots.iter().filter(|s| s.node.is_some()).count() as i64);
        Ok(())
    }

    /// Expire overdue leases, emitting one event per expiry and per
    /// newly quarantined item.
    fn expire_leases(&mut self) {
        let before = self.queue.stats().quarantined;
        for lease in self.queue.expire_due(self.clock_ms) {
            self.telemetry.events.emit(
                Event::at(self.clock_ms, "dist.lease.expired")
                    .with("lease", lease.id)
                    .with("node", lease.shard)
                    .with("items", lease.items.len()),
            );
        }
        let after = self.queue.stats().quarantined;
        if after > before {
            self.telemetry
                .events
                .emit(Event::at(self.clock_ms, "dist.quarantine").with("items", after - before));
        }
        self.telemetry
            .record_queue(&self.queue, &mut self.last_queue_stats);
    }

    /// Lease and process one batch on every live, free node. Returns
    /// true when any node did work.
    fn dispatch(&mut self) -> io::Result<bool> {
        let now = self.clock_ms;
        let mut progressed = false;
        for k in 0..self.slots.len() {
            if self.slots[k].node.is_none() || self.slots[k].free_at > now {
                continue;
            }
            let Some(lease) = self.queue.lease(k, self.config.lease_batch, now) else {
                continue;
            };
            progressed = true;
            self.telemetry
                .lease_batch_items
                .observe(lease.items.len() as u64);
            let items: Vec<WorkItem> = lease.items.iter().map(|q| q.item.clone()).collect();
            let node = self.slots[k].node.as_mut().unwrap();
            let result = node.process(
                &self.world,
                &mut self.vocab,
                self.judge.as_ref(),
                &items,
                now,
                self.config.node_proc_ms,
            );
            let end = now + result.cost_ms.max(1);
            let killed_mid_batch = self
                .plan
                .event_at(k, now + 1, end + 1)
                .is_some_and(|w| w.kind == NodeFaultKind::Kill);
            if killed_mid_batch {
                // The node dies inside this processing span: its batch
                // never completes. Un-stage the rows so a snapshot cut
                // before the kill can't leak them; the lease stays out
                // and expires at its deadline.
                node.discard_pending();
                self.stats.discarded_batches += 1;
                self.slots[k].free_at = end;
                continue;
            }
            node.ack(lease.id, end, result.stored)?;
            let completed = self.queue.ack(lease.id).expect("ack of a live lease");
            self.uncheckpointed[k].extend(completed);
            self.acks_since_snapshot += 1;
            self.stats.stored += result.stored;
            self.stats.fetch_ok += result.fetch_ok;
            self.stats.fetch_err += result.fetch_err;
            self.stats.redirects += result.redirects;
            self.telemetry.stored.add(result.stored);
            self.telemetry.fetch_ok.add(result.fetch_ok);
            self.telemetry.fetch_err.add(result.fetch_err);
            self.telemetry.fetch_redirect.add(result.redirects);
            for item in result.discovered {
                if item.depth > self.config.max_depth {
                    continue;
                }
                let shard = shard_of_url(&item.url, self.config.nodes);
                self.queue.offer(shard, item);
            }
            self.slots[k].free_at = end;
        }
        self.telemetry
            .record_queue(&self.queue, &mut self.last_queue_stats);
        Ok(progressed)
    }

    /// Commit one crash-consistent distributed snapshot: every node's
    /// store, the lease journal, and the coordinator state under a
    /// single manifest. Down nodes contribute their last committed
    /// bytes, so the generation always covers all N nodes.
    fn commit_snapshot(&mut self) -> io::Result<u64> {
        let wall = Instant::now();
        let mut writer = GenerationWriter::begin(self.fs.as_ref(), &self.config.session_dir)?;
        let mut total_bytes = 0u64;
        // Phase 1: node stores.
        for k in 0..self.slots.len() {
            let bytes = match self.slots[k].node.as_mut() {
                Some(node) => {
                    let bytes = node.snapshot_bytes()?;
                    self.node_restore[k] = bytes.clone();
                    bytes
                }
                None => self.node_restore[k].clone(),
            };
            total_bytes += bytes.len() as u64;
            writer.write_file(&format!("node-{k}/store.jsonl"), &bytes)?;
        }
        // Phase 2: queue journal + coordinator state, then the commit
        // record itself.
        let journal = self.queue.journal_bytes();
        total_bytes += journal.len() as u64;
        writer.write_file(JOURNAL_FILE, &journal)?;
        // The cut counts itself, so a resume from it agrees with the
        // committing coordinator's own stats.
        let committed_stats = DistStats {
            snapshots: self.stats.snapshots + 1,
            ..self.stats.clone()
        };
        let state = serde_json::to_string(&CoordState {
            magic: COORD_MAGIC.to_string(),
            version: COORD_VERSION,
            clock_ms: self.clock_ms,
            nodes: self.config.nodes,
            stats: committed_stats,
        })
        .map_err(|e| io::Error::other(e.to_string()))?
        .into_bytes();
        total_bytes += state.len() as u64;
        writer.write_file(COORD_FILE, &state)?;
        let generation = writer.commit()?;
        // The cut is durable: node deaths can no longer lose these.
        for u in &mut self.uncheckpointed {
            u.clear();
        }
        self.acks_since_snapshot = 0;
        self.stats.snapshots += 1;
        self.telemetry.snapshot_commits.inc();
        self.telemetry.snapshot_bytes.observe(total_bytes);
        self.telemetry
            .snapshot_wall_ms
            .observe(wall.elapsed().as_millis() as u64);
        self.telemetry.events.emit(
            Event::at(self.clock_ms, "dist.snapshot.commit")
                .with("generation", generation)
                .with("bytes", total_bytes),
        );
        prune_generations(&self.config.session_dir, self.config.keep_generations);
        Ok(generation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_crawler::{Judgment, PageContext};
    use bingo_textproc::AnalyzedDocument;
    use bingo_webworld::gen::WorldConfig;
    use bingo_webworld::NodeFaultWindow;

    fn judge() -> Arc<dyn BatchJudge> {
        Arc::new(|_: &AnalyzedDocument, _: &PageContext| Judgment {
            topic: Some(0),
            confidence: 1.0,
        })
    }

    fn session(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("bingo-dist-coord-{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn seeded(world: &Arc<World>, config: DistConfig) -> Coordinator {
        let mut coord = Coordinator::new(world.clone(), judge(), config);
        for id in 1..=6 {
            coord.add_seed(&world.url_of(id), Some(0));
        }
        coord
    }

    #[test]
    fn calm_run_drains_and_snapshots() {
        let world = Arc::new(WorldConfig::small_test(11).build());
        let dir = session("calm");
        let mut coord = seeded(&world, DistConfig::new(3, &dir));
        let stats = coord.run(10_000_000).unwrap();
        assert!(stats.stored > 20, "stored {}", stats.stored);
        assert!(stats.snapshots >= 1);
        assert_eq!(stats.kills, 0);
        assert_eq!(
            coord.combined_store().document_count() as u64,
            stats.stored,
            "each page stored on exactly one node"
        );
        assert!(find_newest_complete(&dir).is_some(), "final cut committed");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_and_restart_converges_to_calm_contents() {
        let world = Arc::new(WorldConfig::small_test(12).build());
        let calm_dir = session("conv-calm");
        // max_depth beyond the world's diameter: with truncation in
        // play, *which* parent first discovers a URL (scheduling-
        // dependent) would decide its depth and the reachable fringe.
        let mut calm_config = DistConfig::new(3, &calm_dir);
        calm_config.max_depth = 100;
        let mut calm = seeded(&world, calm_config);
        let calm_stats = calm.run(10_000_000).unwrap();

        let chaos_dir = session("conv-chaos");
        // High poison budget: nothing quarantines, so the chaotic run
        // must converge to exactly the calm store contents.
        let mut config = DistConfig::new(3, &chaos_dir);
        config.max_depth = 100;
        config.poison_budget = 100;
        config.snapshot_every_acks = 4;
        let mut chaotic = seeded(&world, config);
        let mut plan = NodeFaultPlan::empty();
        for (node, start) in [(0u64, 300u64), (1, 900), (2, 2_000), (0, 5_000)] {
            plan.insert_window(
                node as usize,
                NodeFaultWindow {
                    start_ms: start,
                    end_ms: start + 700,
                    kind: NodeFaultKind::Kill,
                },
            );
        }
        chaotic.install_faults(plan);
        let chaos_stats = chaotic.run(10_000_000).unwrap();
        assert!(chaos_stats.kills >= 3, "kills applied: {chaos_stats:?}");
        assert_eq!(chaotic.quarantined().len(), 0);

        // Compare page-id sets: which of a page's alias URLs gets the
        // stored row depends on processing order, but the set of pages
        // must converge exactly.
        let mut calm_ids: Vec<u64> = calm
            .combined_store()
            .all_documents()
            .into_iter()
            .map(|d| d.id)
            .collect();
        let mut chaos_ids: Vec<u64> = chaotic
            .combined_store()
            .all_documents()
            .into_iter()
            .map(|d| d.id)
            .collect();
        calm_ids.sort_unstable();
        chaos_ids.sort_unstable();
        assert_eq!(calm_ids, chaos_ids, "converged to calm contents");
        assert!(calm_stats.stored > 20, "calm run did real work");
        std::fs::remove_dir_all(&calm_dir).ok();
        std::fs::remove_dir_all(&chaos_dir).ok();
    }

    #[test]
    fn resume_continues_from_committed_cut() {
        let world = Arc::new(WorldConfig::small_test(13).build());
        let dir = session("resume");
        let mut config = DistConfig::new(2, &dir);
        config.snapshot_every_acks = 2;
        let mut first = seeded(&world, config.clone());
        // A short budget leaves work pending past the last commit.
        first.run(400).unwrap();
        let mid_stats = first.stats().clone();
        drop(first);

        let mut resumed = Coordinator::resume(world.clone(), judge(), config).unwrap();
        assert_eq!(resumed.stats().stored, mid_stats.stored, "cut restored");
        let final_stats = resumed.run(10_000_000).unwrap();
        assert!(final_stats.stored >= mid_stats.stored);

        // A calm uninterrupted reference run stores the same URL set.
        let ref_dir = session("resume-ref");
        let mut reference = seeded(&world, DistConfig::new(2, &ref_dir));
        reference.run(10_000_000).unwrap();
        let mut ref_ids: Vec<u64> = reference
            .combined_store()
            .all_documents()
            .into_iter()
            .map(|d| d.id)
            .collect();
        let mut got_ids: Vec<u64> = resumed
            .combined_store()
            .all_documents()
            .into_iter()
            .map(|d| d.id)
            .collect();
        ref_ids.sort_unstable();
        got_ids.sort_unstable();
        assert_eq!(ref_ids, got_ids);
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&ref_dir).ok();
    }
}
