//! One worker "node" of the distributed crawl: an in-process crawler
//! shard owning the documents of the hosts hashed to it.
//!
//! A node is deliberately small: a [`DocumentStore`] + [`BulkLoader`],
//! a content registry, and a scratch directory. It fetches the URLs of
//! a lease, drives them through the shared document pipeline
//! ([`bingo_crawler::process_batch`] — the same convert → analyze →
//! classify → bulk-load path the single-node crawler uses), and hands
//! discovered links back to the coordinator for sharding. All the
//! distributed machinery (leases, deadlines, snapshots, fault windows)
//! lives in the coordinator; killing a node is just dropping this
//! struct.
//!
//! Fetches are always issued with `attempt = 0`, making the fetch
//! outcome a pure function of (URL, fault windows): on a calm-host
//! world a killed-and-replayed URL fetches identical bytes, which is
//! what lets chaos runs converge to calm-run store contents.

use crate::lease::WorkItem;
use bingo_crawler::pipeline::{FetchedDoc, PipelineMetrics};
use bingo_crawler::{process_batch, BatchJudge, DocOutcome};
use bingo_obs::Registry;
use bingo_store::persist::{read_snapshot, write_snapshot};
use bingo_store::spill::SCRATCH_DIR_SUFFIX;
use bingo_store::{BulkLoader, DocumentStore};
use bingo_textproc::{ContentRegistry, Interner, TextprocMetrics};
use bingo_webworld::fetch::FetchOutcome;
use bingo_webworld::World;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Scratch directory of node `id` under `session`: restart-disposable
/// state (the append-only ack log). The `.scratch` suffix puts stale
/// copies left by a killed node under the startup sweep
/// ([`bingo_store::reap_stale_spill_files`]).
pub fn scratch_dir(session: &Path, id: usize) -> PathBuf {
    session.join(format!("node-{id}{SCRATCH_DIR_SUFFIX}"))
}

/// What one leased batch did, from the coordinator's point of view.
#[derive(Debug, Default, Clone)]
pub struct BatchResult {
    /// Links discovered by stored documents plus redirect targets —
    /// the coordinator shards and offers these.
    pub discovered: Vec<WorkItem>,
    /// Documents stored by this batch.
    pub stored: u64,
    /// Successful fetches.
    pub fetch_ok: u64,
    /// Fetch errors.
    pub fetch_err: u64,
    /// Redirect responses.
    pub redirects: u64,
    /// Virtual cost of the batch: fetch latencies plus per-document
    /// processing time.
    pub cost_ms: u64,
}

/// One in-process worker node.
pub struct WorkerNode {
    id: usize,
    store: DocumentStore,
    loader: BulkLoader,
    registry: ContentRegistry,
    scratch: PathBuf,
    /// Private obs handles for the shared pipeline (node-local; the
    /// scenario-visible counters are the coordinator's `dist.*` set).
    textproc: TextprocMetrics,
    pipeline: PipelineMetrics,
    acked_batches: u64,
}

impl WorkerNode {
    /// A fresh node with an empty store.
    pub fn new(id: usize, session: &Path) -> Self {
        Self::with_store(id, session, DocumentStore::new())
    }

    /// Restart a node from the snapshot bytes of the last committed
    /// distributed generation (empty bytes → empty store).
    pub fn restore(id: usize, session: &Path, snapshot: &[u8]) -> io::Result<Self> {
        let store = if snapshot.is_empty() {
            DocumentStore::new()
        } else {
            read_snapshot(snapshot).map_err(|e| io::Error::other(format!("{e:?}")))?
        };
        Ok(Self::with_store(id, session, store))
    }

    fn with_store(id: usize, session: &Path, store: DocumentStore) -> Self {
        let obs = Registry::new();
        let obs = Arc::new(obs);
        WorkerNode {
            id,
            loader: BulkLoader::new(store.clone()),
            store,
            registry: ContentRegistry::new(),
            scratch: scratch_dir(session, id),
            textproc: TextprocMetrics::new(obs.clone()),
            pipeline: PipelineMetrics::new(&obs),
            acked_batches: 0,
        }
    }

    /// Node id (== its shard).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The node's store (shared handle).
    pub fn store(&self) -> &DocumentStore {
        &self.store
    }

    /// Documents stored by this node.
    pub fn document_count(&self) -> usize {
        self.loader.pending() + self.store.document_count()
    }

    /// Acked batches since (re)start.
    pub fn acked_batches(&self) -> u64 {
        self.acked_batches
    }

    /// Fetch and process one leased batch at virtual time `now_ms`.
    /// `proc_ms` is the virtual per-stored-document processing cost.
    /// Does **not** flush the bulk loader — the coordinator acks via
    /// [`WorkerNode::ack`] only when the lease survives to completion.
    pub fn process(
        &mut self,
        world: &World,
        vocab: &mut dyn Interner,
        judge: &dyn BatchJudge,
        items: &[WorkItem],
        now_ms: u64,
        proc_ms: u64,
    ) -> BatchResult {
        let mut out = BatchResult::default();
        let mut batch: Vec<FetchedDoc> = Vec::with_capacity(items.len());
        let mut batch_items: Vec<&WorkItem> = Vec::with_capacity(items.len());
        for item in items {
            // attempt = 0 always: outcome is a pure function of the URL
            // on calm hosts, so replays after a node kill re-fetch
            // identical content.
            match world.fetch_at(&item.url, 0, now_ms) {
                FetchOutcome::Ok(response) => {
                    out.fetch_ok += 1;
                    out.cost_ms += response.latency_ms;
                    batch.push(FetchedDoc {
                        response,
                        depth: item.depth,
                        src_topic: item.src_topic,
                        anchor_terms: Vec::new(),
                        neighbor_terms: Vec::new(),
                        fetched_at: now_ms,
                    });
                    batch_items.push(item);
                }
                FetchOutcome::Redirect {
                    location,
                    latency_ms,
                } => {
                    out.redirects += 1;
                    out.cost_ms += latency_ms;
                    out.discovered.push(WorkItem {
                        url: location,
                        depth: item.depth,
                        src_topic: item.src_topic,
                    });
                }
                FetchOutcome::Err { latency_ms, .. } => {
                    out.fetch_err += 1;
                    out.cost_ms += latency_ms;
                }
            }
        }
        if batch.is_empty() {
            return out;
        }
        let outcomes = process_batch(
            world,
            &self.registry,
            vocab,
            &mut self.loader,
            batch,
            |_| true,
            |docs, ctxs| judge.judge_batch(docs, ctxs),
            &self.textproc,
            &self.pipeline,
        );
        for (outcome, item) in outcomes.iter().zip(&batch_items) {
            // AlreadyStored discovers links too: a replayed URL whose
            // document survived in a snapshot cut must still hand its
            // outlinks to the coordinator (the seen-URL filter dedups
            // re-offers), or a node kill could silently drop a subtree.
            let (stored, doc, judgment) = match outcome {
                DocOutcome::Stored { doc, judgment, .. } => (true, doc, judgment),
                DocOutcome::AlreadyStored { doc, judgment, .. } => (false, doc, judgment),
                _ => continue,
            };
            if stored {
                out.stored += 1;
                out.cost_ms += proc_ms;
            }
            for link in &doc.links {
                out.discovered.push(WorkItem {
                    url: link.href.clone(),
                    depth: item.depth + 1,
                    src_topic: judgment.topic.or(item.src_topic),
                });
            }
        }
        out
    }

    /// Make the batch durable in the node's store (the lease-ack
    /// point) and append the ack to the node-local scratch log.
    pub fn ack(&mut self, lease_id: u64, now_ms: u64, stored: u64) -> io::Result<()> {
        self.loader.flush();
        let _ = self.loader.take_errors();
        self.acked_batches += 1;
        std::fs::create_dir_all(&self.scratch)?;
        let line = format!(
            "{}\n",
            serde_json::json!({"lease": lease_id, "t_ms": now_ms, "stored": stored})
        );
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.scratch.join("ack-log.jsonl"))?;
        f.write_all(line.as_bytes())
    }

    /// Drop rows staged by a batch whose lease will never ack (the
    /// node is scripted to die mid-batch): they must not leak into a
    /// snapshot taken before the kill lands. Returns discarded rows.
    pub fn discard_pending(&mut self) -> usize {
        self.loader.discard_pending()
    }

    /// Serialize the node's store for the distributed snapshot
    /// (byte-deterministic; see [`bingo_store::persist`]).
    pub fn snapshot_bytes(&mut self) -> io::Result<Vec<u8>> {
        self.loader.flush();
        let _ = self.loader.take_errors();
        let mut bytes = Vec::new();
        write_snapshot(&self.store, &mut bytes).map_err(|e| io::Error::other(format!("{e:?}")))?;
        Ok(bytes)
    }

    /// Drop the node's scratch directory (called on clean shutdown; a
    /// killed node leaves it behind for the restart sweep).
    pub fn clean_scratch(&self) {
        let _ = std::fs::remove_dir_all(&self.scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_crawler::{Judgment, PageContext};
    use bingo_textproc::{AnalyzedDocument, Vocabulary};
    use bingo_webworld::gen::WorldConfig;

    fn judge_all() -> impl BatchJudge {
        |_: &AnalyzedDocument, _: &PageContext| Judgment {
            topic: Some(0),
            confidence: 1.0,
        }
    }

    fn small_world() -> World {
        WorldConfig::small_test(7).build()
    }

    fn seed_items(world: &World, n: u64) -> Vec<WorkItem> {
        (1..=n)
            .map(|id| WorkItem {
                url: world.url_of(id),
                depth: 0,
                src_topic: None,
            })
            .collect()
    }

    #[test]
    fn process_stores_documents_and_discovers_links() {
        let world = small_world();
        let dir = tempdir();
        let mut vocab = Vocabulary::new();
        let mut node = WorkerNode::new(0, &dir);
        let items = seed_items(&world, 4);
        let judge = judge_all();
        let result = node.process(&world, &mut vocab, &judge, &items, 0, 2);
        assert!(result.stored > 0, "seed pages store");
        assert!(!result.discovered.is_empty(), "links discovered");
        assert!(result.cost_ms > 0, "virtual cost accrues");
        assert!(
            result.discovered.iter().all(|w| w.depth == 1),
            "link depth is parent + 1"
        );
        node.ack(0, 10, result.stored).unwrap();
        assert_eq!(node.document_count() as u64, result.stored);
        assert!(scratch_dir(&dir, 0).join("ack-log.jsonl").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_restore_round_trips_the_store() {
        let world = small_world();
        let dir = tempdir();
        let mut vocab = Vocabulary::new();
        let mut node = WorkerNode::new(1, &dir);
        let items = seed_items(&world, 4);
        let judge = judge_all();
        let result = node.process(&world, &mut vocab, &judge, &items, 0, 2);
        node.ack(0, 5, result.stored).unwrap();
        let bytes = node.snapshot_bytes().unwrap();
        let restored = WorkerNode::restore(1, &dir, &bytes).unwrap();
        assert_eq!(restored.document_count(), node.document_count());
        // Same state serializes to the same bytes.
        let mut restored = restored;
        assert_eq!(restored.snapshot_bytes().unwrap(), bytes);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn tempdir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "bingo-dist-node-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }
}
