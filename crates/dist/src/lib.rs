//! # bingo-dist — coordinator/worker distributed crawl
//!
//! BINGO!'s crawler is the component the paper expects to scale out
//! (Section 4.1's "up to ten thousand documents per minute" is a
//! single-node figure). This crate adds the next tier, following the
//! host-sharded distributed-agent design of BUbiNG: a [`Coordinator`]
//! shards the frontier by host hash across N deterministic in-process
//! worker "nodes" ([`WorkerNode`]) that share one virtual clock, so a
//! distributed chaos run is exactly reproducible — same seed, same
//! kills, byte-identical `dist.*` telemetry.
//!
//! Three mechanisms make whole-node failure a recoverable event rather
//! than a lost crawl:
//!
//! * **Leased work** ([`LeaseQueue`]): URLs are leased to their host's
//!   shard with a virtual-clock deadline and acked only after the
//!   node's durable bulk-load. Expired leases are re-issued; each item
//!   carries a poison budget, and items that keep dying with their
//!   nodes are quarantined instead of wedging the crawl. The queue
//!   journals through [`bingo_store::DurableFs::atomic_write`], so a
//!   kill at any byte of the journal rolls back cleanly.
//! * **Two-phase distributed snapshots**: a single checkpoint
//!   generation commits every node's store (`node-K/store.jsonl`),
//!   the lease journal, and the coordinator state under one manifest
//!   written last. A crash anywhere — any node's partial file, the
//!   journal, the manifest itself — rolls the *whole* generation back
//!   to the previous cut; there is no state where node 0's snapshot is
//!   newer than node 1's.
//! * **Node supervision** ([`bingo_webworld::NodeFaultPlan`]): seeded
//!   kill/stall/restart windows take whole nodes down mid-crawl. A
//!   killed node loses its in-memory store and in-flight leases; the
//!   coordinator re-leases orphaned work when the deadlines expire,
//!   replays completions recorded after the last committed cut, and
//!   the restarted node resumes from its snapshot — converging to the
//!   same store contents as a calm run, minus quarantined URLs.
//!
//! The `dist` bench scenario (BENCH_dist.json) gates coverage, requeue
//! counts, and node-kill recovery tolerances; see DESIGN.md
//! "Distributed crawl & node supervision".

pub mod coordinator;
pub mod lease;
pub mod node;
pub mod telemetry;

pub use coordinator::{Coordinator, DistConfig, DistStats};
pub use lease::{LeaseQueue, LeaseRecord, LeaseStats, QuarantinedItem, QueuedItem, WorkItem};
pub use node::{scratch_dir, WorkerNode};
pub use telemetry::DistTelemetry;

/// Shard (node index) owning `url`: fxhash of the URL's host modulo the
/// node count, so one host's URLs always land on one node — per-host
/// politeness and content dedup stay node-local, exactly the BUbiNG
/// sharding argument.
pub fn shard_of_url(url: &str, nodes: usize) -> usize {
    let host = bingo_webworld::fetch::host_of_url(url).unwrap_or(url);
    (bingo_textproc::fxhash::hash_one(&host) % nodes.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharding_is_by_host_and_stable() {
        let a = shard_of_url("http://host-a.example/p1", 4);
        let b = shard_of_url("http://host-a.example/p2/deep", 4);
        assert_eq!(a, b, "same host, same shard");
        assert!(a < 4);
        let spread: std::collections::BTreeSet<usize> = (0..64)
            .map(|i| shard_of_url(&format!("http://h{i}.example/"), 4))
            .collect();
        assert!(spread.len() > 1, "hosts spread over shards");
    }
}
