//! Distributed-crawl telemetry: `dist.*` metric handles and structured
//! events for the coordinator loop.
//!
//! Everything here derives from the virtual clock, seeds, and document
//! contents, so a same-seed chaos run produces byte-identical metric
//! snapshots and event logs — that identity is asserted by tests and
//! gated by the `dist` bench scenario. The one exception is the
//! snapshot write cost, which is wall time and registered volatile.

use bingo_obs::{Counter, EventLog, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Metric and event handles for one [`crate::Coordinator`]. Cloning
/// shares the underlying registry and atomics.
#[derive(Clone)]
pub struct DistTelemetry {
    /// The registry the handles live in (shared with other subsystems
    /// when the caller wires a scenario-wide registry).
    pub registry: Arc<Registry>,
    /// Structured event log (node kills/restarts, snapshot commits,
    /// lease expiries, quarantines).
    pub events: Arc<EventLog>,
    /// Leases issued to worker nodes.
    pub lease_issued: Counter,
    /// Leases acked after a durable bulk-load.
    pub lease_acked: Counter,
    /// Leases expired past their virtual deadline.
    pub lease_expired: Counter,
    /// Items re-queued from expired leases.
    pub lease_requeued: Counter,
    /// Items quarantined after exhausting their poison budget.
    pub lease_quarantined: Counter,
    /// Items per issued lease.
    pub lease_batch_items: Arc<Histogram>,
    /// Whole-node kills applied from the fault plan.
    pub node_kills: Counter,
    /// Node restarts (store restored from the last committed cut).
    pub node_restarts: Counter,
    /// Whole-node stall windows applied.
    pub node_stalls: Counter,
    /// Completed items replayed because their node died before a
    /// snapshot cut.
    pub node_replayed: Counter,
    /// Worker nodes currently live.
    pub nodes_live: Gauge,
    /// Items pending across all shards.
    pub queue_pending: Gauge,
    /// Leases currently outstanding.
    pub queue_leased: Gauge,
    /// Successful fetches across all nodes.
    pub fetch_ok: Counter,
    /// Fetch errors across all nodes.
    pub fetch_err: Counter,
    /// Redirect responses across all nodes.
    pub fetch_redirect: Counter,
    /// Documents stored across all nodes.
    pub stored: Counter,
    /// Committed distributed snapshot generations.
    pub snapshot_commits: Counter,
    /// Bytes per committed generation (all node stores + journal +
    /// coordinator state).
    pub snapshot_bytes: Arc<Histogram>,
    /// Wall-clock cost of a snapshot commit (volatile).
    pub snapshot_wall_ms: Arc<Histogram>,
    /// Stale scratch dirs / torn journal temps swept on node restart or
    /// session open.
    pub scratch_reaped: Counter,
}

impl DistTelemetry {
    /// Register all `dist.*` metrics in `registry`, logging events to
    /// `events`.
    pub fn new(registry: Arc<Registry>, events: Arc<EventLog>) -> Self {
        DistTelemetry {
            lease_issued: registry.counter("dist.lease.issued"),
            lease_acked: registry.counter("dist.lease.acked"),
            lease_expired: registry.counter("dist.lease.expired"),
            lease_requeued: registry.counter("dist.lease.requeued"),
            lease_quarantined: registry.counter("dist.lease.quarantined"),
            lease_batch_items: registry.histogram("dist.lease.batch_items"),
            node_kills: registry.counter("dist.node.kills"),
            node_restarts: registry.counter("dist.node.restarts"),
            node_stalls: registry.counter("dist.node.stalls"),
            node_replayed: registry.counter("dist.node.replayed"),
            nodes_live: registry.gauge("dist.nodes.live"),
            queue_pending: registry.gauge("dist.queue.pending"),
            queue_leased: registry.gauge("dist.queue.leased"),
            fetch_ok: registry.counter("dist.fetch.ok"),
            fetch_err: registry.counter("dist.fetch.err"),
            fetch_redirect: registry.counter("dist.fetch.redirect"),
            stored: registry.counter("dist.stored"),
            snapshot_commits: registry.counter("dist.snapshot.commits"),
            snapshot_bytes: registry.histogram("dist.snapshot.bytes"),
            snapshot_wall_ms: registry.wall_histogram("dist.snapshot.wall_ms"),
            scratch_reaped: registry.counter("dist.scratch.reaped"),
            registry,
            events,
        }
    }

    /// Fold the lease queue's counter deltas in: gauges are
    /// overwritten, monotonic counters advance by the delta since
    /// `last` (which is updated to the current stats).
    pub fn record_queue(
        &self,
        queue: &crate::lease::LeaseQueue,
        last: &mut crate::lease::LeaseStats,
    ) {
        let now = queue.stats();
        self.lease_issued
            .add(now.issued.saturating_sub(last.issued));
        self.lease_acked.add(now.acked.saturating_sub(last.acked));
        self.lease_expired
            .add(now.expired.saturating_sub(last.expired));
        self.lease_requeued
            .add(now.requeued.saturating_sub(last.requeued));
        self.lease_quarantined
            .add(now.quarantined.saturating_sub(last.quarantined));
        self.queue_pending.set(queue.pending_total() as i64);
        self.queue_leased.set(queue.leased_total() as i64);
        *last = now;
    }
}

impl Default for DistTelemetry {
    fn default() -> Self {
        DistTelemetry::new(Arc::new(Registry::new()), Arc::new(EventLog::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lease::{LeaseQueue, LeaseStats, WorkItem};

    #[test]
    fn telemetry_registers_in_shared_registry() {
        let reg = Arc::new(Registry::new());
        let t = DistTelemetry::new(reg.clone(), Arc::new(EventLog::default()));
        t.node_kills.inc();
        t.nodes_live.set(3);
        t.lease_batch_items.observe(8);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["dist.node.kills"], 1);
        assert_eq!(snap.gauges["dist.nodes.live"], 3);
        assert_eq!(snap.histograms["dist.lease.batch_items"].count, 1);
        assert!(snap.volatile.contains("dist.snapshot.wall_ms"));
    }

    #[test]
    fn queue_deltas_fold_monotonically() {
        let t = DistTelemetry::default();
        let mut q = LeaseQueue::new(1, 3, 100);
        let mut last = LeaseStats::default();
        q.offer(
            0,
            WorkItem {
                url: "http://a/1".into(),
                depth: 0,
                src_topic: None,
            },
        );
        let lease = q.lease(0, 4, 0).unwrap();
        t.record_queue(&q, &mut last);
        q.ack(lease.id);
        t.record_queue(&q, &mut last);
        // Folding twice after the ack must not double-count.
        t.record_queue(&q, &mut last);
        let snap = t.registry.snapshot();
        assert_eq!(snap.counters["dist.lease.issued"], 1);
        assert_eq!(snap.counters["dist.lease.acked"], 1);
        assert_eq!(snap.gauges["dist.queue.pending"], 0);
        assert_eq!(snap.gauges["dist.queue.leased"], 0);
    }
}
