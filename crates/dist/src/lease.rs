//! The journaled lease/ack work queue of the distributed crawl.
//!
//! The coordinator's frontier is a set of per-shard queues of
//! [`WorkItem`]s. A worker node takes work as a **lease**: a batch of
//! items with a virtual-clock deadline. The lease is **acked** — the
//! items leave the queue for good — only once the node's bulk-load has
//! landed durably. A lease whose deadline passes without an ack (its
//! node died or hung) is **expired**: the items go back to their shard
//! with an incremented attempt count, and items that exhaust their
//! poison budget are **quarantined** instead of being re-issued forever
//! — the distributed version of the threaded executor's per-URL poison
//! discipline (PR 5).
//!
//! The whole queue serializes to a single **journal** written through
//! [`DurableFs::atomic_write`], so it obeys the same crash matrix as
//! every other artifact: a kill at any byte of the journal write leaves
//! the previous journal intact. Restoring a journal re-queues the
//! leases that were in flight at journal time — orphaned work is
//! re-leased, never lost.

use bingo_store::DurableFs;
use bingo_textproc::fxhash::{self, FxHashSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Format marker of lease journals.
pub const JOURNAL_MAGIC: &str = "bingo-lease-journal";
/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Conventional journal file name. The `lease-` prefix puts torn
/// `.tmp` siblings of the journal under the stale-scratch sweep
/// ([`bingo_store::reap_stale_spill_files`]).
pub const JOURNAL_FILE: &str = "lease-journal.json";

/// One unit of crawl work: a URL with the crawl context it was
/// discovered under.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// The URL to fetch.
    pub url: String,
    /// Crawl depth it will be fetched at.
    pub depth: u32,
    /// Topic of the page that discovered it, if any.
    pub src_topic: Option<u32>,
}

/// A work item inside the queue: its discovery sequence number (the
/// deterministic ordering key) and how many leases it has already
/// ridden that expired.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueuedItem {
    /// The work.
    pub item: WorkItem,
    /// Expired leases this item has been on so far.
    pub attempts: u32,
    /// Global discovery order (BFS-stable dispatch key).
    pub seq: u64,
}

/// One outstanding lease.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseRecord {
    /// Lease id (monotonic).
    pub id: u64,
    /// Shard (node) the lease was issued to.
    pub shard: usize,
    /// Virtual-clock deadline; unacked past this, the lease expires.
    pub deadline_ms: u64,
    /// The leased items.
    pub items: Vec<QueuedItem>,
}

/// A URL taken out of circulation after exhausting its poison budget.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedItem {
    /// The poisoned URL.
    pub url: String,
    /// Expired leases it rode before quarantine.
    pub attempts: u32,
}

/// Deterministic behavior counters of a [`LeaseQueue`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseStats {
    /// URLs offered (pre-dedup).
    pub offered: u64,
    /// Offers rejected by the seen-URL filter.
    pub deduped: u64,
    /// Leases issued.
    pub issued: u64,
    /// Leases acked after durable bulk-load.
    pub acked: u64,
    /// Leases expired past their deadline (including orphans re-queued
    /// on journal restore).
    pub expired: u64,
    /// Items re-queued from expired leases.
    pub requeued: u64,
    /// Items quarantined after exhausting their poison budget.
    pub quarantined: u64,
}

/// Serialized form of the whole queue — the journal.
#[derive(Debug, Serialize, Deserialize)]
struct Journal {
    magic: String,
    version: u32,
    poison_budget: u32,
    lease_ttl_ms: u64,
    next_seq: u64,
    next_lease: u64,
    /// Per-shard pending items in seq order.
    shards: Vec<Vec<QueuedItem>>,
    /// Leases outstanding at journal time — orphaned on restore.
    in_flight: Vec<LeaseRecord>,
    quarantine: Vec<QuarantinedItem>,
    /// Sorted seen-URL fingerprints.
    seen: Vec<u64>,
    stats: LeaseStats,
}

/// The host-sharded lease/ack queue. All order is deterministic: items
/// dispatch in discovery-sequence order per shard, leases are numbered
/// monotonically, and the journal serializes every set sorted.
#[derive(Debug)]
pub struct LeaseQueue {
    /// `shards[k]` holds node k's pending work, keyed by seq.
    shards: Vec<BTreeMap<u64, QueuedItem>>,
    leased: BTreeMap<u64, LeaseRecord>,
    seen: FxHashSet<u64>,
    quarantine: Vec<QuarantinedItem>,
    next_seq: u64,
    next_lease: u64,
    poison_budget: u32,
    lease_ttl_ms: u64,
    stats: LeaseStats,
}

impl LeaseQueue {
    /// An empty queue over `shards` shards. An item is quarantined once
    /// it has ridden more than `poison_budget` expired leases; leases
    /// expire `lease_ttl_ms` of virtual time after issue.
    pub fn new(shards: usize, poison_budget: u32, lease_ttl_ms: u64) -> Self {
        LeaseQueue {
            shards: (0..shards.max(1)).map(|_| BTreeMap::new()).collect(),
            leased: BTreeMap::new(),
            seen: FxHashSet::default(),
            quarantine: Vec::new(),
            next_seq: 0,
            next_lease: 0,
            poison_budget,
            lease_ttl_ms,
            stats: LeaseStats::default(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Offer a newly discovered URL to `shard`. Returns `false` when
    /// the URL was already seen (offered before, in any state).
    pub fn offer(&mut self, shard: usize, item: WorkItem) -> bool {
        self.stats.offered += 1;
        if !self.seen.insert(fxhash::hash_one(&item.url)) {
            self.stats.deduped += 1;
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let shard = shard % self.shards.len();
        self.shards[shard].insert(
            seq,
            QueuedItem {
                item,
                attempts: 0,
                seq,
            },
        );
        true
    }

    /// Re-queue completed items whose node died before they reached a
    /// committed snapshot cut: they are *known* URLs (the seen filter
    /// keeps rejecting rediscoveries) whose durable state was rolled
    /// back, so they bypass dedup and keep their original seq and
    /// attempt counts.
    pub fn requeue_replay(&mut self, shard: usize, items: Vec<QueuedItem>) -> usize {
        let n = items.len();
        let shard = shard % self.shards.len();
        for q in items {
            self.shards[shard].insert(q.seq, q);
        }
        n
    }

    /// Lease up to `max_items` of `shard`'s pending work at virtual
    /// time `now_ms`. Returns `None` when the shard has nothing
    /// pending.
    pub fn lease(&mut self, shard: usize, max_items: usize, now_ms: u64) -> Option<LeaseRecord> {
        let shard = shard % self.shards.len();
        let queue = &mut self.shards[shard];
        if queue.is_empty() {
            return None;
        }
        let take: Vec<u64> = queue.keys().take(max_items.max(1)).copied().collect();
        let items: Vec<QueuedItem> = take.iter().map(|seq| queue.remove(seq).unwrap()).collect();
        let id = self.next_lease;
        self.next_lease += 1;
        self.stats.issued += 1;
        let record = LeaseRecord {
            id,
            shard,
            deadline_ms: now_ms.saturating_add(self.lease_ttl_ms),
            items,
        };
        self.leased.insert(id, record.clone());
        Some(record)
    }

    /// Ack lease `id` after its durable bulk-load: the items leave the
    /// queue for good. Returns the completed items so the coordinator
    /// can track completions past the last snapshot cut (they must be
    /// replayed if the node dies before the next cut).
    pub fn ack(&mut self, id: u64) -> Option<Vec<QueuedItem>> {
        let lease = self.leased.remove(&id)?;
        self.stats.acked += 1;
        Some(lease.items)
    }

    /// Expire every lease whose deadline has passed at `now_ms`:
    /// re-queue its items with an incremented attempt count, quarantine
    /// the ones past the poison budget. Returns the expired leases
    /// (items already redistributed).
    pub fn expire_due(&mut self, now_ms: u64) -> Vec<LeaseRecord> {
        let due: Vec<u64> = self
            .leased
            .iter()
            .filter(|(_, l)| l.deadline_ms <= now_ms)
            .map(|(&id, _)| id)
            .collect();
        let mut expired = Vec::with_capacity(due.len());
        for id in due {
            let lease = self.leased.remove(&id).unwrap();
            self.stats.expired += 1;
            self.requeue_expired(&lease);
            expired.push(lease);
        }
        expired
    }

    fn requeue_expired(&mut self, lease: &LeaseRecord) {
        for q in &lease.items {
            let attempts = q.attempts + 1;
            if attempts > self.poison_budget {
                self.stats.quarantined += 1;
                self.quarantine.push(QuarantinedItem {
                    url: q.item.url.clone(),
                    attempts,
                });
            } else {
                self.stats.requeued += 1;
                self.shards[lease.shard].insert(
                    q.seq,
                    QueuedItem {
                        item: q.item.clone(),
                        attempts,
                        seq: q.seq,
                    },
                );
            }
        }
    }

    /// Pending items of one shard.
    pub fn pending_len(&self, shard: usize) -> usize {
        self.shards[shard % self.shards.len()].len()
    }

    /// Pending items across all shards.
    pub fn pending_total(&self) -> usize {
        self.shards.iter().map(BTreeMap::len).sum()
    }

    /// Outstanding (unacked, unexpired) leases.
    pub fn leased_total(&self) -> usize {
        self.leased.len()
    }

    /// Earliest deadline among outstanding leases.
    pub fn next_deadline(&self) -> Option<u64> {
        self.leased.values().map(|l| l.deadline_ms).min()
    }

    /// Quarantined URLs, in quarantine order.
    pub fn quarantined(&self) -> &[QuarantinedItem] {
        &self.quarantine
    }

    /// Behavior counters.
    pub fn stats(&self) -> LeaseStats {
        self.stats
    }

    /// Serialize the full queue state — the journal. Byte-deterministic
    /// for a given queue state (sets serialize sorted).
    pub fn journal_bytes(&self) -> Vec<u8> {
        let mut seen: Vec<u64> = self.seen.iter().copied().collect();
        seen.sort_unstable();
        let journal = Journal {
            magic: JOURNAL_MAGIC.to_string(),
            version: JOURNAL_VERSION,
            poison_budget: self.poison_budget,
            lease_ttl_ms: self.lease_ttl_ms,
            next_seq: self.next_seq,
            next_lease: self.next_lease,
            shards: self
                .shards
                .iter()
                .map(|s| s.values().cloned().collect())
                .collect(),
            in_flight: self.leased.values().cloned().collect(),
            quarantine: self.quarantine.clone(),
            seen,
            stats: self.stats,
        };
        serde_json::to_string(&journal)
            .expect("lease journal serialization")
            .into_bytes()
    }

    /// Write the journal to `path` through `fs` (atomic: a crash at any
    /// byte leaves the previous journal intact).
    pub fn save(&self, fs: &dyn DurableFs, path: &Path) -> io::Result<()> {
        fs.atomic_write(path, &self.journal_bytes())
    }

    /// Restore a queue from journal bytes. Leases that were in flight
    /// at journal time are **orphans** — their nodes' work died with
    /// the crash — and are immediately expired back into their shards
    /// (or quarantined, if past the poison budget).
    pub fn from_journal_bytes(bytes: &[u8]) -> io::Result<Self> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| io::Error::other(format!("lease journal not utf-8: {e}")))?;
        let journal: Journal =
            serde_json::from_str(text).map_err(|e| io::Error::other(e.to_string()))?;
        if journal.magic != JOURNAL_MAGIC || journal.version != JOURNAL_VERSION {
            return Err(io::Error::other(format!(
                "bad lease journal header: {:?} v{}",
                journal.magic, journal.version
            )));
        }
        let mut queue = LeaseQueue {
            shards: journal
                .shards
                .into_iter()
                .map(|items| items.into_iter().map(|q| (q.seq, q)).collect())
                .collect(),
            leased: BTreeMap::new(),
            seen: journal.seen.into_iter().collect(),
            quarantine: journal.quarantine,
            next_seq: journal.next_seq,
            next_lease: journal.next_lease,
            poison_budget: journal.poison_budget,
            lease_ttl_ms: journal.lease_ttl_ms,
            stats: journal.stats,
        };
        if queue.shards.is_empty() {
            return Err(io::Error::other("lease journal with zero shards"));
        }
        for lease in journal.in_flight {
            queue.stats.expired += 1;
            queue.requeue_expired(&lease);
        }
        Ok(queue)
    }

    /// Load a journal from `path`.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::from_journal_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(url: &str) -> WorkItem {
        WorkItem {
            url: url.to_string(),
            depth: 1,
            src_topic: Some(0),
        }
    }

    #[test]
    fn lease_ack_drains_the_queue() {
        let mut q = LeaseQueue::new(2, 3, 1000);
        assert!(q.offer(0, item("http://a/1")));
        assert!(q.offer(0, item("http://a/2")));
        assert!(!q.offer(1, item("http://a/1")), "dedup across shards");
        assert!(q.offer(1, item("http://b/1")));
        assert_eq!(q.pending_total(), 3);

        let lease = q.lease(0, 10, 50).unwrap();
        assert_eq!(lease.items.len(), 2);
        assert_eq!(lease.deadline_ms, 1050);
        assert_eq!(q.pending_len(0), 0);
        assert_eq!(q.leased_total(), 1);
        let done = q.ack(lease.id).unwrap();
        assert_eq!(done.len(), 2);
        assert_eq!(q.leased_total(), 0);
        assert!(q.ack(lease.id).is_none(), "double ack is a no-op");
        let s = q.stats();
        assert_eq!((s.issued, s.acked, s.deduped), (1, 1, 1));
    }

    #[test]
    fn expiry_requeues_then_quarantines() {
        let mut q = LeaseQueue::new(1, 1, 100);
        q.offer(0, item("http://a/x"));
        // First expiry: requeued with attempts 1.
        let lease = q.lease(0, 4, 0).unwrap();
        assert!(q.expire_due(99).is_empty(), "deadline not reached");
        assert_eq!(q.expire_due(100).len(), 1);
        assert_eq!(q.pending_len(0), 1);
        // Second expiry: attempts 2 > budget 1 → quarantine.
        let lease2 = q.lease(0, 4, 200).unwrap();
        assert_eq!(lease2.items[0].attempts, 1);
        q.expire_due(10_000);
        assert_eq!(q.pending_len(0), 0);
        assert_eq!(q.quarantined().len(), 1);
        assert_eq!(q.quarantined()[0].url, "http://a/x");
        assert_eq!(q.quarantined()[0].attempts, 2);
        let s = q.stats();
        assert_eq!((s.expired, s.requeued, s.quarantined), (2, 1, 1));
        let _ = lease;
    }

    #[test]
    fn dispatch_order_is_discovery_order_even_after_requeue() {
        let mut q = LeaseQueue::new(1, 5, 100);
        q.offer(0, item("http://a/1"));
        q.offer(0, item("http://a/2"));
        let first = q.lease(0, 1, 0).unwrap();
        assert_eq!(first.items[0].item.url, "http://a/1");
        q.expire_due(1000);
        // After requeue, /1 (seq 0) still dispatches before /2 (seq 1).
        let again = q.lease(0, 2, 2000).unwrap();
        assert_eq!(again.items[0].item.url, "http://a/1");
        assert_eq!(again.items[1].item.url, "http://a/2");
    }

    #[test]
    fn journal_round_trip_orphans_in_flight_leases() {
        let mut q = LeaseQueue::new(2, 3, 500);
        q.offer(0, item("http://a/1"));
        q.offer(0, item("http://a/2"));
        q.offer(1, item("http://b/1"));
        let lease = q.lease(0, 1, 10).unwrap();
        assert_eq!(lease.items[0].item.url, "http://a/1");

        let bytes = q.journal_bytes();
        let restored = LeaseQueue::from_journal_bytes(&bytes).unwrap();
        // The in-flight lease was orphaned back into shard 0.
        assert_eq!(restored.leased_total(), 0);
        assert_eq!(restored.pending_len(0), 2);
        assert_eq!(restored.pending_len(1), 1);
        assert_eq!(restored.stats().expired, q.stats().expired + 1);
        assert_eq!(restored.stats().requeued, q.stats().requeued + 1);
        // Seen filter survived: rediscoveries still dedup.
        let mut restored = restored;
        assert!(!restored.offer(0, item("http://a/1")));

        // Journal bytes are deterministic for the same state.
        assert_eq!(q.journal_bytes(), bytes);
    }

    #[test]
    fn journal_rejects_garbage() {
        assert!(LeaseQueue::from_journal_bytes(b"not json").is_err());
        let wrong = serde_json::json!({
            "magic": "nope", "version": 1, "poison_budget": 1,
            "lease_ttl_ms": 1, "next_seq": 0, "next_lease": 0,
            "shards": [[]], "in_flight": [], "quarantine": [],
            "seen": [], "stats": LeaseStats::default(),
        });
        let bytes = serde_json::to_string(&wrong).unwrap().into_bytes();
        assert!(LeaseQueue::from_journal_bytes(&bytes).is_err());
    }

    #[test]
    fn replay_bypasses_dedup_and_keeps_seq() {
        let mut q = LeaseQueue::new(1, 3, 100);
        q.offer(0, item("http://a/1"));
        let lease = q.lease(0, 1, 0).unwrap();
        let done = q.ack(lease.id).unwrap();
        assert_eq!(q.pending_total(), 0);
        // The node that acked dies before a snapshot cut: replay.
        q.requeue_replay(0, done);
        assert_eq!(q.pending_len(0), 1);
        let again = q.lease(0, 1, 50).unwrap();
        assert_eq!(again.items[0].item.url, "http://a/1");
        assert_eq!(again.items[0].seq, 0, "original seq preserved");
    }
}
