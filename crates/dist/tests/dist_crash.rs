//! Crash matrix for the distributed snapshot protocol: a kill at *any*
//! byte of the lease-journal save or the two-phase generation commit —
//! mid node-store file, between phase one and phase two, inside the
//! manifest — must leave the previous complete generation as the
//! recovery target for the **whole cluster**. There is no state where
//! node 0's snapshot is newer than node 1's.
//!
//! The matrix is seed-driven like the single-node one: set
//! `BINGO_CRASH_SEEDS=7,8,9` to sweep extra pseudo-random crash points.

use bingo_crawler::{BatchJudge, Judgment, PageContext};
use bingo_dist::coordinator::COORD_FILE;
use bingo_dist::lease::{LeaseQueue, WorkItem, JOURNAL_FILE};
use bingo_dist::{Coordinator, DistConfig};
use bingo_store::durable::{self, CrashFs, MANIFEST_FILE};
use bingo_store::spill::reap_stale_spill_files;
use bingo_store::SPILL_FILE_PREFIXES;
use bingo_textproc::{fxhash, AnalyzedDocument};
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::World;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

fn judge() -> Arc<dyn BatchJudge> {
    Arc::new(|_: &AnalyzedDocument, _: &PageContext| Judgment {
        topic: Some(0),
        confidence: 1.0,
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bingo-dist-crash-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Crash seeds for the pseudo-random part of the matrix
/// (`BINGO_CRASH_SEEDS=1,2,3` to override).
fn crash_seeds() -> Vec<u64> {
    match std::env::var("BINGO_CRASH_SEEDS") {
        Ok(s) => s.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 3],
    }
}

fn dist_config(nodes: usize, dir: &PathBuf) -> DistConfig {
    let mut config = DistConfig::new(nodes, dir);
    // Only explicit end-of-run commits: each `run` call commits exactly
    // one generation, which the matrix then targets.
    config.snapshot_every_acks = u64::MAX;
    config.keep_generations = 8;
    // Depth beyond the world's diameter so scheduling order can't move
    // the truncation fringe between runs.
    config.max_depth = 100;
    config
}

fn seeded(world: &Arc<World>, config: DistConfig) -> Coordinator {
    let mut coord = Coordinator::new(world.clone(), judge(), config);
    for id in 1..=6 {
        coord.add_seed(&world.url_of(id), Some(0));
    }
    coord
}

fn sorted_page_ids(coord: &Coordinator) -> Vec<u64> {
    let mut ids: Vec<u64> = coord
        .combined_store()
        .all_documents()
        .into_iter()
        .map(|d| d.id)
        .collect();
    ids.sort_unstable();
    ids
}

#[test]
fn lease_journal_crash_at_every_byte_keeps_the_old_journal() {
    let dir = fresh_dir("journal");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(JOURNAL_FILE);

    let item = |url: &str| WorkItem {
        url: url.into(),
        depth: 0,
        src_topic: Some(0),
    };
    let mut queue = LeaseQueue::new(2, 3, 1_000);
    for i in 0..8 {
        queue.offer(i % 2, item(&format!("http://h{i}.example/p")));
    }
    let lease = queue.lease(0, 3, 100).expect("lease");
    queue.save(&bingo_store::StdFs, &path).expect("clean save");
    let good = std::fs::read(&path).unwrap();

    // More activity the crashed saves will try (and fail) to persist.
    queue.ack(lease.id);
    for i in 8..14 {
        queue.offer(i % 2, item(&format!("http://h{i}.example/p")));
    }
    let dirty = queue.journal_bytes();
    assert_ne!(dirty, good, "journal must have diverged");

    // Every byte boundary of the new journal: the save must fail, the
    // on-disk journal must keep its old bytes, and a load must still
    // come back (orphan-requeuing the in-flight lease).
    for budget in 0..dirty.len() as u64 {
        let fs = CrashFs::with_budget(budget);
        assert!(queue.save(&fs, &path).is_err(), "budget {budget}");
        assert!(fs.crashed(), "budget {budget}: crash must have fired");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            good,
            "budget {budget}: old journal bytes must survive"
        );
        let restored = LeaseQueue::load(&path).expect("load after crash");
        assert_eq!(
            restored.pending_total(),
            8,
            "budget {budget}: in-flight lease orphan-requeued"
        );
        assert_eq!(restored.leased_total(), 0, "budget {budget}");
    }

    // The torn temp files the crashes left behind are exactly what the
    // session-open sweep reaps.
    assert!(
        reap_stale_spill_files(&dir, SPILL_FILE_PREFIXES) >= 1,
        "crashed saves must leave a reapable temp file"
    );

    // A roomy budget goes through and the journal advances.
    let fs = CrashFs::with_budget(dirty.len() as u64);
    queue.save(&fs, &path).expect("exact budget saves fine");
    assert!(!fs.crashed());
    assert_eq!(std::fs::read(&path).unwrap(), dirty);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distributed_commit_crash_at_every_boundary_rolls_back_all_nodes() {
    let nodes = 3;
    let world = Arc::new(WorldConfig::small_test(21).build());
    let dir = fresh_dir("matrix");

    // Base cut: a short run leaves work pending and commits generation
    // A on its way out.
    let mut coord = seeded(&world, dist_config(nodes, &dir));
    coord.run(600).expect("base run");
    let base_stats = coord.stats().clone();
    assert!(base_stats.stored > 0, "base cut too small to test");
    drop(coord);
    let base = durable::find_newest_complete(&dir).expect("base generation");
    let base_gen = base.generation;
    let base_files: BTreeMap<String, Vec<u8>> = base
        .manifest
        .files
        .iter()
        .map(|f| {
            (
                f.name.clone(),
                std::fs::read(base.dir.join(&f.name)).unwrap(),
            )
        })
        .collect();
    for k in 0..nodes {
        assert!(
            base_files.contains_key(&format!("node-{k}/store.jsonl")),
            "generation must cover node {k}"
        );
    }
    assert!(base_files.contains_key(JOURNAL_FILE));
    assert!(base_files.contains_key(COORD_FILE));

    // One clean continuation measures the file sizes of the *next*
    // commit, in write order, for exact boundary budgets...
    let mut probe = Coordinator::resume(world.clone(), judge(), dist_config(nodes, &dir))
        .expect("probe resume");
    assert_eq!(probe.stats(), &base_stats, "resume restores the base cut");
    probe.run(600).expect("probe continuation");
    drop(probe);
    let next = durable::find_newest_complete(&dir).expect("probe generation");
    assert!(next.generation > base_gen, "probe must commit a newer cut");
    let mut write_order: Vec<String> = (0..nodes)
        .map(|k| format!("node-{k}/store.jsonl"))
        .collect();
    write_order.push(JOURNAL_FILE.to_string());
    write_order.push(COORD_FILE.to_string());
    write_order.push(MANIFEST_FILE.to_string());
    let sizes: Vec<u64> = write_order
        .iter()
        .map(|name| std::fs::metadata(next.dir.join(name)).unwrap().len())
        .collect();
    let total: u64 = sizes.iter().sum();
    // ...then rolls back off the disk so generation A is newest again.
    std::fs::remove_dir_all(&next.dir).unwrap();
    assert_eq!(
        durable::find_newest_complete(&dir).map(|g| g.generation),
        Some(base_gen)
    );

    // Exact file edges — first byte of each file, the gap between phase
    // one (node stores) and phase two (journal + coordinator state), the
    // last manifest byte — plus a seed-driven sweep in between.
    let mut budgets: Vec<u64> = vec![0, 1];
    let mut cum = 0u64;
    for len in &sizes {
        cum += len;
        budgets.extend([cum.saturating_sub(1), cum, cum + 1]);
    }
    for seed in crash_seeds() {
        for i in 0u64..4 {
            budgets.push(fxhash::hash_one(&(seed, i)) % total);
        }
    }
    budgets.sort_unstable();
    budgets.dedup();
    budgets.retain(|b| *b < total);

    for budget in budgets {
        let mut doomed = Coordinator::resume(world.clone(), judge(), dist_config(nodes, &dir))
            .unwrap_or_else(|e| panic!("budget {budget}: resume failed: {e}"));
        let fs = Arc::new(CrashFs::with_budget(budget));
        doomed.set_fs(fs.clone());
        assert!(
            doomed.run(600).is_err(),
            "budget {budget}: the commit must report the crash"
        );
        assert!(fs.crashed(), "budget {budget}: crash must have fired");
        drop(doomed);

        // The whole cluster rolls back to generation A: same newest
        // complete generation, every file byte-identical — including
        // budgets where several node stores committed cleanly before
        // the crash.
        let newest = durable::find_newest_complete(&dir)
            .unwrap_or_else(|| panic!("budget {budget}: no complete generation left"));
        assert_eq!(
            newest.generation, base_gen,
            "budget {budget}: a torn commit must not become visible"
        );
        for (name, bytes) in &base_files {
            assert_eq!(
                &std::fs::read(newest.dir.join(name)).unwrap(),
                bytes,
                "budget {budget}: {name} changed under a torn commit"
            );
        }
        let recovered = Coordinator::resume(world.clone(), judge(), dist_config(nodes, &dir))
            .unwrap_or_else(|e| panic!("budget {budget}: post-crash resume failed: {e}"));
        assert_eq!(
            recovered.stats(),
            &base_stats,
            "budget {budget}: recovery must land on the base cut"
        );
    }

    // The recovered cluster is live: a clean continuation drains the
    // crawl and converges to the page set of an uninterrupted run.
    let mut resumed = Coordinator::resume(world.clone(), judge(), dist_config(nodes, &dir))
        .expect("final resume");
    let final_stats = resumed.run(10_000_000).expect("final continuation");
    assert!(
        final_stats.stored > base_stats.stored,
        "no progress after recovery"
    );
    assert!(resumed.quarantined().is_empty());

    let ref_dir = fresh_dir("matrix-ref");
    let mut reference = seeded(&world, dist_config(nodes, &ref_dir));
    reference.run(10_000_000).expect("reference run");
    assert_eq!(
        sorted_page_ids(&resumed),
        sorted_page_ids(&reference),
        "crash-recovered crawl must converge to the uninterrupted page set"
    );
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}
