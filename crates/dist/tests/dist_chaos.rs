//! Node-kill chaos acceptance tests: a distributed crawl under a
//! seeded [`NodeFaultPlan`] is exactly reproducible — same seed, same
//! kills, byte-identical `dist.*` telemetry — and a cluster that loses
//! whole nodes mid-crawl (or the whole process) converges to the
//! harvest of an uninterrupted run, minus nothing but quarantined URLs.

use bingo_crawler::{BatchJudge, Judgment, PageContext};
use bingo_dist::{Coordinator, DistConfig, DistStats, DistTelemetry};
use bingo_textproc::AnalyzedDocument;
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::{NodeFaultKind, NodeFaultPlan, NodeFaultProfile, NodeFaultWindow, World};
use std::path::PathBuf;
use std::sync::Arc;

fn judge() -> Arc<dyn BatchJudge> {
    Arc::new(|_: &AnalyzedDocument, _: &PageContext| Judgment {
        topic: Some(0),
        confidence: 1.0,
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bingo-dist-chaos-{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn dist_config(nodes: usize, dir: &PathBuf) -> DistConfig {
    let mut config = DistConfig::new(nodes, dir);
    config.snapshot_every_acks = 8;
    config.poison_budget = 100;
    config.max_depth = 100;
    config
}

fn seeded(world: &Arc<World>, config: DistConfig) -> Coordinator {
    let mut coord = Coordinator::new(world.clone(), judge(), config);
    for id in 1..=6 {
        coord.add_seed(&world.url_of(id), Some(0));
    }
    coord
}

fn sorted_page_ids(coord: &Coordinator) -> Vec<u64> {
    let mut ids: Vec<u64> = coord
        .combined_store()
        .all_documents()
        .into_iter()
        .map(|d| d.id)
        .collect();
    ids.sort_unstable();
    ids
}

/// Ratio of stored documents to fetch attempts — the distributed
/// analogue of the crawler's harvest ratio.
fn harvest_ratio(stats: &DistStats) -> f64 {
    let visited = stats.fetch_ok + stats.fetch_err + stats.redirects;
    stats.stored as f64 / visited.max(1) as f64
}

/// One full chaos run: metrics snapshot JSON, event log JSONL, final
/// stats, sorted page ids.
fn chaos_run(seed: u64, tag: &str) -> (String, String, DistStats, Vec<u64>) {
    let world = Arc::new(WorldConfig::small_test(seed).build());
    let dir = fresh_dir(tag);
    let mut coord = seeded(&world, dist_config(3, &dir));
    let telemetry = DistTelemetry::default();
    coord.set_telemetry(telemetry.clone());
    let plan = NodeFaultPlan::generate(seed, 3, &NodeFaultProfile::chaos());
    assert!(!plan.is_empty(), "chaos profile must script faults");
    coord.install_faults(plan);
    let stats = coord.run(10_000_000).expect("chaos run");
    let metrics = telemetry.registry.snapshot().deterministic().to_json();
    let events = telemetry.events.to_jsonl();
    let ids = sorted_page_ids(&coord);
    std::fs::remove_dir_all(&dir).ok();
    (metrics, events, stats, ids)
}

#[test]
fn same_seed_chaos_runs_emit_byte_identical_dist_telemetry() {
    let (metrics_a, events_a, stats_a, ids_a) = chaos_run(31, "ident-a");
    let (metrics_b, events_b, stats_b, ids_b) = chaos_run(31, "ident-b");
    assert!(!ids_a.is_empty(), "chaos crawl must store documents");
    assert!(
        stats_a.kills + stats_a.stalls > 0,
        "fault plan must actually fire: {stats_a:?}"
    );
    assert_eq!(stats_a, stats_b, "DistStats must be byte-identical");
    assert_eq!(
        metrics_a, metrics_b,
        "dist.* metrics snapshots must be byte-identical"
    );
    assert_eq!(events_a, events_b, "event logs must be byte-identical");
    assert_eq!(ids_a, ids_b, "harvest sets must be identical");
    assert!(
        metrics_a.contains("dist.lease.issued") && metrics_a.contains("dist.snapshot.commits"),
        "snapshot must carry dist.* metrics"
    );
}

#[test]
fn different_seeds_differ() {
    // Sanity check that the byte-identity test has teeth.
    let (metrics_a, _, _, _) = chaos_run(31, "diff-a");
    let (metrics_b, _, _, _) = chaos_run(32, "diff-b");
    assert_ne!(metrics_a, metrics_b);
}

#[test]
fn node_kills_plus_process_kill_converge_to_calm_harvest() {
    let seed = 33;
    let world = Arc::new(WorldConfig::small_test(seed).build());

    // Uninterrupted calm reference.
    let calm_dir = fresh_dir("calm-ref");
    let mut calm = seeded(&world, dist_config(3, &calm_dir));
    let calm_stats = calm.run(10_000_000).expect("calm run");
    let calm_ratio = harvest_ratio(&calm_stats);
    assert!(
        calm_stats.stored > 20,
        "reference too small: {calm_stats:?}"
    );

    // Chaos leg: scripted node kills, then the whole process dies at a
    // virtual-time budget (run commits its cut on the way out — the
    // resume continues from that generation, like a crash recovery
    // landing on the newest complete cut).
    let dir = fresh_dir("killed");
    let plan = NodeFaultPlan::generate(seed, 3, &NodeFaultProfile::chaos());
    let mut doomed = seeded(&world, dist_config(3, &dir));
    doomed.install_faults(plan.clone());
    let mid_stats = doomed.run(5_000).expect("interrupted run");
    drop(doomed); // process killed

    let mut resumed =
        Coordinator::resume(world.clone(), judge(), dist_config(3, &dir)).expect("resume");
    assert_eq!(resumed.stats().stored, mid_stats.stored, "cut restored");
    resumed.install_faults(plan); // windows already past are skipped
    let final_stats = resumed.run(10_000_000).expect("resumed run");
    assert!(final_stats.kills >= 1, "kills applied: {final_stats:?}");
    assert!(resumed.quarantined().is_empty(), "poison budget too low");

    // Harvest ratio within 2% of the uninterrupted run, page set exact.
    let ratio = harvest_ratio(&final_stats);
    let drift = (ratio - calm_ratio).abs() / calm_ratio;
    assert!(
        drift <= 0.02,
        "harvest ratio drifted {:.2}% (calm {calm_ratio:.4}, chaos {ratio:.4})",
        drift * 100.0
    );
    assert_eq!(
        sorted_page_ids(&resumed),
        sorted_page_ids(&calm),
        "chaos + resume must converge to the calm page set"
    );
    std::fs::remove_dir_all(&calm_dir).ok();
    std::fs::remove_dir_all(&dir).ok();
}

/// Seed-matrix sweep: every seed in `BINGO_NODE_KILL_SEEDS`
/// (comma-separated, default `41,42,43`) gets its own world, its own
/// generated chaos fault plan, a whole-process kill mid-crawl, and a
/// resume that must converge to that seed's calm page set. ci.sh runs
/// this in the crash step; nightly.yml fans much wider seed slices
/// through it.
#[test]
fn node_kill_seed_matrix_converges() {
    let seeds: Vec<u64> = std::env::var("BINGO_NODE_KILL_SEEDS")
        .unwrap_or_else(|_| "41,42,43".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    assert!(!seeds.is_empty(), "BINGO_NODE_KILL_SEEDS parsed empty");
    let mut total_kills = 0u64;
    for seed in seeds {
        let world = Arc::new(WorldConfig::small_test(seed).build());
        let calm_dir = fresh_dir(&format!("matrix-calm-{seed}"));
        let mut calm = seeded(&world, dist_config(3, &calm_dir));
        calm.run(10_000_000).expect("calm run");

        let dir = fresh_dir(&format!("matrix-kill-{seed}"));
        let plan = NodeFaultPlan::generate(seed, 3, &NodeFaultProfile::chaos());
        let mut doomed = seeded(&world, dist_config(3, &dir));
        doomed.install_faults(plan.clone());
        doomed.run(4_000).expect("interrupted run");
        drop(doomed); // process killed at the virtual-time budget

        let mut resumed =
            Coordinator::resume(world.clone(), judge(), dist_config(3, &dir)).expect("resume");
        resumed.install_faults(plan); // windows already past are skipped
        let stats = resumed.run(10_000_000).expect("resumed run");
        total_kills += stats.kills;
        assert!(
            resumed.quarantined().is_empty(),
            "seed {seed}: quarantined at poison budget 100: {stats:?}"
        );
        assert_eq!(
            sorted_page_ids(&resumed),
            sorted_page_ids(&calm),
            "seed {seed}: chaos + resume diverged from the calm page set"
        );
        std::fs::remove_dir_all(&calm_dir).ok();
        std::fs::remove_dir_all(&dir).ok();
    }
    // Not per-seed — a plan's windows can all land after the drain —
    // but a whole sweep without a single node kill means the chaos
    // profile stopped biting.
    assert!(total_kills > 0, "no node kill fired across the seed sweep");
}

#[test]
fn repeatedly_dying_items_quarantine_instead_of_wedging() {
    let world = Arc::new(WorldConfig::small_test(34).build());
    let dir = fresh_dir("poison");
    let mut config = dist_config(3, &dir);
    // Zero tolerance: one lease expiry quarantines the item. Long
    // per-document cost widens the processing spans so scripted kills
    // land mid-batch and their leases die with the node.
    config.poison_budget = 0;
    config.node_proc_ms = 50;
    let mut coord = seeded(&world, config);
    let mut plan = NodeFaultPlan::empty();
    for (node, start) in [(0u64, 150u64), (1, 400), (2, 900), (0, 1_600), (1, 2_500)] {
        plan.insert_window(
            node as usize,
            NodeFaultWindow {
                start_ms: start,
                end_ms: start + 500,
                kind: NodeFaultKind::Kill,
            },
        );
    }
    coord.install_faults(plan);
    let stats = coord.run(10_000_000).expect("poison run");
    assert!(stats.kills >= 3, "kills applied: {stats:?}");
    assert!(
        stats.discarded_batches > 0,
        "no batch died with its node: {stats:?}"
    );
    let quarantined = coord.quarantined();
    assert!(
        !quarantined.is_empty(),
        "expired items must quarantine at budget 0: {stats:?}"
    );
    // The crawl terminated (run returned) and still did real work
    // around the quarantined URLs.
    assert!(stats.stored > 0, "crawl wedged: {stats:?}");
    assert_eq!(
        coord.queue_stats().quarantined,
        quarantined.len() as u64,
        "queue stats agree with the quarantine list"
    );
    std::fs::remove_dir_all(&dir).ok();
}
