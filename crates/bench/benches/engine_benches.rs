//! E10 microbenches at the engine level: per-document classification
//! cost (the inner loop of a crawl), training and retraining cost, and
//! the full crawl-step throughput with the real classifier — this is
//! what bounds crawl speed once the network is fast.

use bingo_core::{BingoEngine, EngineConfig, TopicTree};
use bingo_crawler::{CrawlConfig, Crawler};
use bingo_store::DocumentStore;
use bingo_textproc::DocumentFeatures;
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::{PageKind, World};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn trained_engine(world: &World) -> (BingoEngine, bingo_core::TopicId) {
    let mut engine = BingoEngine::new(EngineConfig {
        archetype_threshold: false,
        ..EngineConfig::default()
    });
    let topic = engine.add_topic(TopicTree::ROOT, "db");
    for a in &world.authors()[..3] {
        engine
            .add_training_url(world, topic, &world.url_of(a.homepage))
            .unwrap();
    }
    let mut added = 0;
    for id in 0..world.page_count() as u64 {
        if matches!(world.true_topic(id), Some(2) | Some(3)) {
            if engine.add_others_url(world, &world.url_of(id)).is_ok() {
                added += 1;
            }
            if added >= 30 {
                break;
            }
        }
    }
    engine.train().unwrap();
    (engine, topic)
}

fn probe_features(engine: &mut BingoEngine, world: &World, n: usize) -> Vec<DocumentFeatures> {
    (0..world.page_count() as u64)
        .filter(|&id| world.page(id).kind == PageKind::Content)
        .filter_map(|id| {
            engine
                .analyze_url(world, &world.url_of(id))
                .ok()
                .map(|(_, _, f)| f)
        })
        .take(n)
        .collect()
}

fn bench_classification(c: &mut Criterion) {
    let world = WorldConfig::small_test(12).build();
    let (mut engine, _topic) = trained_engine(&world);
    let probes = probe_features(&mut engine, &world, 100);
    let mut group = c.benchmark_group("engine_classify");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("meta_100_docs", |b| {
        b.iter(|| {
            let mut acc = 0;
            for f in &probes {
                if engine.classify(black_box(f)).topic.is_some() {
                    acc += 1;
                }
            }
            black_box(acc)
        })
    });
    // Run-time-critical single-classifier mode for comparison.
    engine.config.single_classifier = true;
    group.bench_function("single_100_docs", |b| {
        b.iter(|| {
            let mut acc = 0;
            for f in &probes {
                if engine.classify(black_box(f)).topic.is_some() {
                    acc += 1;
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let world = WorldConfig::small_test(13).build();
    let (engine, _topic) = trained_engine(&world);
    c.bench_function("engine_train_full", |b| {
        b.iter_batched(
            || {
                // Training mutates models only; clone the trained engine
                // state through persistence for an identical baseline.
                let mut buf = Vec::new();
                bingo_core::persist::save_engine(&engine, &mut buf).unwrap();
                bingo_core::persist::load_engine(&buf[..]).unwrap()
            },
            |mut e| {
                e.train().unwrap();
                black_box(e.model(bingo_core::TopicId(1)).is_some())
            },
            criterion::BatchSize::LargeInput,
        )
    });
}

fn bench_crawl_with_classifier(c: &mut Criterion) {
    let world = Arc::new(WorldConfig::small_test(14).build());
    let mut group = c.benchmark_group("focused_crawl");
    group.sample_size(10);
    group.bench_function("two_phase_small_world", |b| {
        b.iter(|| {
            let (mut engine, topic) = trained_engine(&world);
            let mut crawler = Crawler::new(
                Arc::clone(&world),
                CrawlConfig {
                    max_depth: 0,
                    ..CrawlConfig::default()
                },
                DocumentStore::new(),
            );
            for a in &world.authors()[..3] {
                crawler.add_seed(&world.url_of(a.homepage), Some(topic.0));
            }
            engine.crawl_until(&mut crawler, 60_000, 0);
            engine.retrain(&mut crawler);
            engine.switch_to_harvesting(&mut crawler);
            engine.crawl_until(&mut crawler, 400_000, 0);
            black_box(crawler.stats().stored_pages)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_classification,
    bench_training,
    bench_crawl_with_classifier
);
criterion_main!(benches);
