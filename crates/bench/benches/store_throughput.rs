//! E8: storage-pipeline throughput (Section 4.1).
//!
//! The paper's lesson: per-row inserts cannot keep up; per-thread
//! workspaces flushed through a bulk loader sustain "up to ten thousand
//! documents per minute" (on 2002 hardware). These benches measure
//! row-at-a-time vs. batched loading, and the full multi-threaded
//! fetch→convert→analyze→bulk-load pipeline (documents per minute is
//! printed by the pipeline benchmark's throughput estimate).

use bingo_crawler::threaded::{run_pipeline, PipelineOptions};
use bingo_crawler::{CrawlTelemetry, Judgment};
use bingo_store::{BulkLoader, DocumentRow, DocumentStore};
use bingo_textproc::{MimeType, SharedVocabulary};
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::World;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn row(id: u64) -> DocumentRow {
    DocumentRow {
        id,
        url: format!("http://h{}/p{id}", id % 50),
        host: (id % 50) as u32,
        mime: MimeType::Html,
        depth: 1,
        title: format!("doc {id}"),
        topic: Some((id % 5) as u32),
        confidence: 0.5,
        term_freqs: (0..40u32)
            .map(|t| (t * 7 + (id as u32 % 13), 1 + t % 4))
            .collect(),
        size: 2048,
        fetched_at: id,
    }
}

fn bench_insert_strategies(c: &mut Criterion) {
    const N: u64 = 2000;
    let mut group = c.benchmark_group("store_insert");
    group.throughput(Throughput::Elements(N));

    group.bench_function("row_at_a_time", |b| {
        b.iter(|| {
            let store = DocumentStore::new();
            for i in 0..N {
                store.insert_document(row(i)).unwrap();
            }
            black_box(store.document_count())
        })
    });

    for &batch in &[64usize, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::new("bulk_loader", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let store = DocumentStore::new();
                    let mut loader = BulkLoader::with_batch_size(store.clone(), batch);
                    for i in 0..N {
                        loader.add_document(row(i));
                    }
                    loader.flush();
                    black_box(store.document_count())
                })
            },
        );
    }
    group.finish();
}

/// The paper's actual scenario: many crawler threads writing
/// concurrently. Row-at-a-time inserts serialize on the store lock;
/// per-thread workspaces flushed in batches amortize it.
fn bench_contended_inserts(c: &mut Criterion) {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 2000;
    let mut group = c.benchmark_group("store_insert_contended_8_threads");
    group.throughput(Throughput::Elements(THREADS * PER_THREAD));
    group.sample_size(10);

    group.bench_function("row_at_a_time", |b| {
        b.iter(|| {
            let store = DocumentStore::new();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let store = store.clone();
                    scope.spawn(move || {
                        for i in 0..PER_THREAD {
                            store.insert_document(row(t * 1_000_000 + i)).unwrap();
                        }
                    });
                }
            });
            black_box(store.document_count())
        })
    });

    group.bench_function("bulk_loader_256", |b| {
        b.iter(|| {
            let store = DocumentStore::new();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let store = store.clone();
                    scope.spawn(move || {
                        let mut loader = BulkLoader::with_batch_size(store, 256);
                        for i in 0..PER_THREAD {
                            loader.add_document(row(t * 1_000_000 + i));
                        }
                    });
                }
            });
            black_box(store.document_count())
        })
    });
    group.finish();
}

fn healthy_urls(world: &World, n: usize) -> Vec<String> {
    (0..world.page_count() as u64)
        .filter(|&id| {
            world.page(id).size_hint.is_none()
                && world.page(id).redirect_to.is_none()
                && world.host(world.page(id).host).behavior == bingo_webworld::HostBehavior::Normal
        })
        .take(n)
        .map(|id| world.url_of(id))
        .collect()
}

fn no_judge(
    _doc: &bingo_textproc::AnalyzedDocument,
    _ctx: &bingo_crawler::PageContext,
) -> Judgment {
    Judgment {
        topic: None,
        confidence: 0.0,
    }
}

fn bench_full_pipeline(c: &mut Criterion) {
    let world = Arc::new(WorldConfig::small_test(8).build());
    let urls = healthy_urls(&world, 400);
    let mut group = c.benchmark_group("analyze_and_load_pipeline");
    group.throughput(Throughput::Elements(urls.len() as u64));
    group.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let store = DocumentStore::new();
                    let vocab = SharedVocabulary::new();
                    let telemetry = CrawlTelemetry::default();
                    let report = run_pipeline(
                        Arc::clone(&world),
                        store,
                        urls.iter().map(|u| (u.clone(), None)).collect(),
                        &vocab,
                        &no_judge,
                        &telemetry,
                        &PipelineOptions::flat(threads, 256),
                    );
                    black_box(report.documents)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_insert_strategies,
    bench_contended_inserts,
    bench_full_pipeline
);
criterion_main!(benches);
