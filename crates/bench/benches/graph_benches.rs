//! E10 microbenches: HITS link analysis at the base-set sizes the paper
//! mentions ("a node set in the order of a few hundred or a few thousand
//! documents").

use bingo_graph::{expand_base_set, Hits, LinkGraph, LinkSource, PageId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_graph(nodes: usize, avg_degree: usize, hosts: u32, seed: u64) -> LinkGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = LinkGraph::new();
    for p in 0..nodes as PageId {
        g.add_page(p, rng.gen_range(0..hosts));
    }
    for p in 0..nodes as PageId {
        for _ in 0..avg_degree {
            let q = rng.gen_range(0..nodes as PageId);
            if q != p {
                g.add_link(p, q);
            }
        }
    }
    g
}

fn bench_hits(c: &mut Criterion) {
    let mut group = c.benchmark_group("hits");
    for &n in &[200usize, 1000, 4000] {
        let g = random_graph(n, 8, (n / 10).max(2) as u32, 5);
        let nodes: Vec<PageId> = (0..n as PageId).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &nodes, |b, nodes| {
            b.iter(|| black_box(Hits::default().run(&g, black_box(nodes))))
        });
    }
    group.finish();
}

fn bench_base_set_expansion(c: &mut Criterion) {
    let g = random_graph(5000, 10, 100, 9);
    let base: Vec<PageId> = (0..500).collect();
    c.bench_function("expand_base_set_500", |b| {
        b.iter(|| black_box(expand_base_set(&g, black_box(&base), 10)))
    });
}

fn bench_link_queries(c: &mut Criterion) {
    let g = random_graph(5000, 10, 100, 9);
    c.bench_function("successors_lookup_1000", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for p in 0..1000 {
                acc += g.successors(black_box(p)).len();
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    benches,
    bench_hits,
    bench_base_set_expansion,
    bench_link_queries
);
criterion_main!(benches);
