//! E10 microbenches: SVM training/decision, MI feature selection,
//! k-means clustering.

use bingo_ml::feature_selection::{FeatureSelection, FeatureSelectionConfig};
use bingo_ml::kmeans::{KMeans, KMeansConfig};
use bingo_ml::svm::{LinearSvm, SvmConfig};
use bingo_ml::{Classifier, TrainingSet};
use bingo_textproc::SparseVector;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// Synthetic sparse documents: positives concentrate on low feature ids,
/// negatives on high ones, with overlap noise.
fn synthetic_docs(n: usize, dim: u32, nnz: usize, seed: u64) -> Vec<(SparseVector, bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let positive = i % 2 == 0;
            let base = if positive { 0 } else { dim / 2 };
            let pairs: Vec<(u32, f32)> = (0..nnz)
                .map(|_| {
                    let f = base + rng.gen_range(0..dim / 2 + dim / 8) % dim;
                    (f, rng.gen_range(0.1..1.0f32))
                })
                .collect();
            (SparseVector::from_pairs(pairs).normalized(), positive)
        })
        .collect()
}

fn bench_svm_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("svm_train");
    for &n in &[100usize, 400, 1600] {
        let docs = synthetic_docs(n, 2000, 40, 7);
        let mut set = TrainingSet::new();
        for (v, p) in docs {
            set.push(v, p);
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &set, |b, set| {
            b.iter(|| {
                let svm = LinearSvm::new(SvmConfig {
                    max_iterations: 50,
                    ..SvmConfig::default()
                });
                black_box(svm.train(set).unwrap())
            })
        });
    }
    group.finish();
}

fn bench_svm_decide(c: &mut Criterion) {
    let docs = synthetic_docs(400, 2000, 40, 7);
    let mut set = TrainingSet::new();
    for (v, p) in &docs {
        set.push(v.clone(), *p);
    }
    let model = LinearSvm::default().train(&set).unwrap();
    let probe = &docs[13].0;
    // The decision phase is "an m-dimensional scalar product" — this is
    // the per-document classification cost during a crawl.
    c.bench_function("svm_decide", |b| {
        b.iter(|| black_box(model.decide(black_box(probe))))
    });
}

fn bench_feature_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("mi_feature_selection");
    for &n in &[200usize, 800] {
        let docs = synthetic_docs(n, 20_000, 120, 3);
        let occurrences: Vec<(Vec<(u32, u32)>, bool)> = docs
            .iter()
            .map(|(v, p)| {
                (
                    v.entries()
                        .iter()
                        .map(|&(f, w)| (f, (w * 10.0) as u32 + 1))
                        .collect(),
                    *p,
                )
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &occurrences, |b, occ| {
            let labeled: Vec<(&[(u32, u32)], bool)> =
                occ.iter().map(|(o, p)| (o.as_slice(), *p)).collect();
            b.iter(|| {
                let sel = FeatureSelection::new(FeatureSelectionConfig::default())
                    .select(black_box(&labeled));
                black_box(sel)
            })
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let docs: Vec<SparseVector> = synthetic_docs(400, 5000, 60, 11)
        .into_iter()
        .map(|(v, _)| v)
        .collect();
    c.bench_function("kmeans_k4_400docs", |b| {
        b.iter(|| {
            let res = KMeans::new(KMeansConfig {
                k: 4,
                max_iterations: 20,
                seed: 1,
            })
            .run(black_box(&docs))
            .unwrap();
            black_box(res)
        })
    });
}

criterion_group!(
    benches,
    bench_svm_train,
    bench_svm_decide,
    bench_feature_selection,
    bench_kmeans
);
criterion_main!(benches);
