//! E10 microbenches: frontier queue operations, duplicate fingerprints,
//! the caching DNS resolver, and end-to-end crawl-step throughput.

use bingo_crawler::frontier::{Frontier, QueueEntry};
use bingo_crawler::{CachingResolver, CrawlConfig, Crawler, Dedup, Judgment};
use bingo_store::DocumentStore;
use bingo_textproc::Vocabulary;
use bingo_webworld::gen::WorldConfig;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn bench_frontier(c: &mut Criterion) {
    const N: u64 = 10_000;
    let mut group = c.benchmark_group("frontier");
    group.throughput(Throughput::Elements(N));
    group.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut f = Frontier::new(4, 25_000, 1000);
            for i in 0..N {
                let mut e =
                    QueueEntry::seed(&format!("http://h{}/p{i}", i % 97), Some((i % 4) as u32));
                e.priority = (i % 997) as f32 / 997.0;
                f.push(e);
            }
            let mut popped = 0;
            while f.pop().is_some() {
                popped += 1;
            }
            black_box(popped)
        })
    });
    group.finish();
}

fn bench_dedup(c: &mut Criterion) {
    const N: u64 = 10_000;
    let urls: Vec<String> = (0..N)
        .map(|i| format!("http://host{}/page{i}.html", i % 113))
        .collect();
    let mut group = c.benchmark_group("dedup");
    group.throughput(Throughput::Elements(N * 2));
    group.bench_function("fingerprints_10k", |b| {
        b.iter(|| {
            let mut d = Dedup::new();
            for (i, u) in urls.iter().enumerate() {
                d.mark_url(u);
                d.mark_response((i % 113) as u32, u, 1000 + i as u64);
            }
            black_box(d.urls_marked())
        })
    });
    group.finish();
}

fn bench_dns_cache(c: &mut Criterion) {
    let world = WorldConfig::small_test(3).build();
    let names: Vec<String> = (0..world.host_count() as u32)
        .map(|h| world.host(h).name.clone())
        .collect();
    c.bench_function("dns_resolve_cached_1k", |b| {
        let mut resolver = CachingResolver::new();
        // Warm the cache.
        for n in &names {
            let _ = resolver.resolve(&world, n, 0);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                let n = &names[(i as usize) % names.len()];
                if let Ok(r) = resolver.resolve(&world, n, i) {
                    acc += r.ip as u64;
                }
            }
            black_box(acc)
        })
    });
}

fn bench_crawl_steps(c: &mut Criterion) {
    let world = Arc::new(WorldConfig::small_test(9).build());
    let mut group = c.benchmark_group("crawl");
    group.sample_size(10);
    group.bench_function("full_crawl_small_world", |b| {
        b.iter(|| {
            let mut crawler = Crawler::new(
                Arc::clone(&world),
                CrawlConfig {
                    max_depth: 0,
                    ..CrawlConfig::default()
                },
                DocumentStore::new(),
            );
            crawler.add_seed(&world.url_of(1), Some(0));
            let mut vocab = Vocabulary::new();
            let mut judge =
                |_d: &bingo_textproc::AnalyzedDocument, _c: &bingo_crawler::PageContext| Judgment {
                    topic: Some(0),
                    confidence: 1.0,
                };
            let stored = crawler.run_until(u64::MAX, &mut judge, &mut vocab);
            black_box(stored)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_frontier,
    bench_dedup,
    bench_dns_cache,
    bench_crawl_steps
);
criterion_main!(benches);
