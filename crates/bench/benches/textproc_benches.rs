//! E10 microbenches: document analysis — HTML parsing, tokenization,
//! Porter stemming, tf·idf weighting, term-pair extraction.

use bingo_textproc::tfidf::CorpusStats;
use bingo_textproc::{analyze_html, porter_stem, DocumentFeatures, FeatureSpaceKind, Vocabulary};
use bingo_webworld::content_gen;
use bingo_webworld::gen::WorldConfig;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn sample_pages(n: usize) -> Vec<String> {
    let world = WorldConfig::small_test(42).build();
    (0..world.page_count() as u64)
        .filter(|&id| world.page(id).mime == bingo_textproc::MimeType::Html)
        .take(n)
        .map(|id| content_gen::payload(&world, id))
        .collect()
}

fn bench_analyze_html(c: &mut Criterion) {
    let pages = sample_pages(100);
    let bytes: usize = pages.iter().map(String::len).sum();
    let mut group = c.benchmark_group("document_analyzer");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("analyze_100_pages", |b| {
        b.iter(|| {
            let mut vocab = Vocabulary::new();
            for p in &pages {
                black_box(analyze_html(black_box(p), &mut vocab));
            }
        })
    });
    group.finish();
}

fn bench_porter(c: &mut Criterion) {
    let words = [
        "classification",
        "relational",
        "authorities",
        "hyperlinks",
        "crawling",
        "recovery",
        "transactions",
        "generalization",
        "effectiveness",
        "probabilistic",
    ];
    c.bench_function("porter_stem_10_words", |b| {
        b.iter(|| {
            for w in &words {
                black_box(porter_stem(black_box(w)));
            }
        })
    });
}

fn bench_feature_construction(c: &mut Criterion) {
    let pages = sample_pages(50);
    let mut vocab = Vocabulary::new();
    let docs: Vec<_> = pages.iter().map(|p| analyze_html(p, &mut vocab)).collect();
    c.bench_function("term_pair_feature_extraction_50_docs", |b| {
        b.iter(|| {
            for d in &docs {
                black_box(DocumentFeatures::from_document(black_box(d)));
            }
        })
    });
}

fn bench_tfidf(c: &mut Criterion) {
    let pages = sample_pages(100);
    let mut vocab = Vocabulary::new();
    let docs: Vec<_> = pages.iter().map(|p| analyze_html(p, &mut vocab)).collect();
    let mut stats = CorpusStats::new();
    for d in &docs {
        stats.add_document(d.term_freqs.iter().map(|&(t, _)| t));
    }
    let weighter = stats.weighter();
    c.bench_function("tfidf_weigh_100_docs", |b| {
        b.iter(|| {
            for d in &docs {
                black_box(weighter.weigh(black_box(&d.term_freqs)));
            }
        })
    });
}

fn bench_feature_space_vectors(c: &mut Criterion) {
    let pages = sample_pages(50);
    let mut vocab = Vocabulary::new();
    let docs: Vec<_> = pages
        .iter()
        .map(|p| DocumentFeatures::from_document(&analyze_html(p, &mut vocab)))
        .collect();
    c.bench_function("combined_space_occurrences_50_docs", |b| {
        b.iter(|| {
            for f in &docs {
                black_box(f.occurrences(FeatureSpaceKind::Combined));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_analyze_html,
    bench_porter,
    bench_feature_construction,
    bench_tfidf,
    bench_feature_space_vectors
);
criterion_main!(benches);
