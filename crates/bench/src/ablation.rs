//! E9: ablations of the design choices Sections 3.1-3.3 motivate.
//!
//! Each variant runs the same seeded portal crawl on the same world with
//! one mechanism altered, and reports harvest volume and precision
//! against the ground-truth topic labels.

use crate::populate_others;
use bingo_core::{BingoEngine, EngineConfig, TopicTree};
use bingo_crawler::{CrawlConfig, Crawler};
use bingo_store::DocumentStore;
use bingo_webworld::fetch::host_of_url;
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::{PageKind, World};
use std::sync::Arc;

/// Which mechanism a variant alters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The full system: learning phase then harvesting, tunnelling,
    /// systematic OTHERS, archetype retraining.
    Full,
    /// Tunnelling disabled (`max_tunnel = 0`, Section 3.3).
    NoTunnelling,
    /// Never leave the sharp-focus learning configuration (Section 3.3).
    SharpOnly,
    /// Harvest from the start: no learning phase, no archetypes
    /// (Section 2.6).
    SoftOnly,
    /// Archetype promotion without the mean-confidence threshold
    /// (Section 3.2's topic-drift hazard).
    NoThreshold,
    /// OTHERS populated with a handful of arbitrary far-away documents
    /// instead of the systematic category sample (Section 3.1).
    NaiveOthers,
}

impl Variant {
    /// All variants in report order.
    pub const ALL: [Variant; 6] = [
        Variant::Full,
        Variant::NoTunnelling,
        Variant::SharpOnly,
        Variant::SoftOnly,
        Variant::NoThreshold,
        Variant::NaiveOthers,
    ];

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Full => "full system",
            Variant::NoTunnelling => "no tunnelling",
            Variant::SharpOnly => "sharp focus only (no harvest phase)",
            Variant::SoftOnly => "soft focus from the start",
            Variant::NoThreshold => "no archetype threshold",
            Variant::NaiveOthers => "naive OTHERS negatives",
        }
    }
}

/// Measured outcome of one variant.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// The variant.
    pub variant: Variant,
    /// Pages stored.
    pub stored: u64,
    /// Pages positively classified into the topic.
    pub classified: u64,
    /// Classified pages whose ground-truth topic matches.
    pub true_positives: u64,
    /// Classified pages belonging to a *different* topic.
    pub false_positives: u64,
    /// Precision over topically labeled classified pages.
    pub precision: f64,
}

/// Shared experiment parameters.
#[derive(Debug, Clone)]
pub struct AblationConfig {
    /// World seed.
    pub seed: u64,
    /// Author directory size.
    pub authors: usize,
    /// Learning budget (virtual ms).
    pub learning_ms: u64,
    /// Total budget (virtual ms).
    pub total_ms: u64,
}

impl Default for AblationConfig {
    fn default() -> Self {
        AblationConfig {
            seed: 99,
            authors: 300,
            learning_ms: 120_000,
            total_ms: 900_000,
        }
    }
}

/// Run one variant on a freshly built copy of the world.
pub fn run_variant(cfg: &AblationConfig, variant: Variant) -> VariantResult {
    let world = Arc::new(WorldConfig::portal(cfg.seed, cfg.authors, 1).build());
    let seeds: Vec<String> = world.authors()[..2]
        .iter()
        .map(|a| world.url_of(a.homepage))
        .collect();

    let mut engine = BingoEngine::new(EngineConfig {
        archetype_threshold: !matches!(variant, Variant::NoThreshold),
        ..EngineConfig::default()
    });
    let topic = engine.add_topic(TopicTree::ROOT, "database research");
    for url in &seeds {
        engine
            .add_training_url(&world, topic, url)
            .expect("seed fetch");
    }
    match variant {
        Variant::NaiveOthers => {
            // A handful of arbitrary far-away documents (the first
            // approach of Section 3.1).
            arbitrary_others(&mut engine, &world, 5);
        }
        _ => {
            // Systematic: ~50 documents across the noise categories.
            populate_others(&mut engine, &world, &[3, 4, 5, 6], 50);
        }
    }
    engine.train().expect("train");

    let seed_hosts = seeds
        .iter()
        .map(|u| host_of_url(u).unwrap().to_string())
        .collect();
    let mut learn_config = CrawlConfig {
        allowed_hosts: Some(seed_hosts),
        ..CrawlConfig::default()
    };
    if variant == Variant::NoTunnelling {
        learn_config.max_tunnel = 0;
    }
    let mut config = learn_config.clone();
    if variant == Variant::SoftOnly {
        config = config.harvesting();
        if variant == Variant::NoTunnelling {
            config.max_tunnel = 0;
        }
    }
    let mut crawler = Crawler::new(world.clone(), config, DocumentStore::new());
    for url in &seeds {
        crawler.add_seed(url, Some(topic.0));
    }

    match variant {
        Variant::SoftOnly => {
            engine.switch_to_harvesting(&mut crawler);
            // switch_to_harvesting resets tunnel config from the
            // learning config; keep the variant's tunnel setting.
            engine.crawl_until(&mut crawler, cfg.total_ms, 0);
        }
        Variant::SharpOnly => {
            engine.crawl_until(&mut crawler, cfg.learning_ms, 0);
            engine.retrain(&mut crawler);
            // Stay sharp: lift only the domain restriction so the crawl
            // can proceed, but keep sharp focus and depth-first order.
            crawler.config.allowed_hosts = None;
            crawler.config.max_depth = 0;
            engine.crawl_until(&mut crawler, cfg.total_ms, 0);
        }
        _ => {
            engine.crawl_until(&mut crawler, cfg.learning_ms, 0);
            engine.retrain(&mut crawler);
            engine.switch_to_harvesting(&mut crawler);
            if variant == Variant::NoTunnelling {
                crawler.config.max_tunnel = 0;
            }
            engine.crawl_until(&mut crawler, cfg.total_ms, 0);
        }
    }

    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut classified = 0u64;
    crawler.store().for_each_document(|row| {
        if row.topic == Some(topic.0) {
            classified += 1;
            match world.true_topic(row.id) {
                Some(0) => tp += 1,
                Some(_) => fp += 1,
                None => {}
            }
        }
    });
    VariantResult {
        variant,
        stored: crawler.stats().stored_pages,
        classified,
        true_positives: tp,
        false_positives: fp,
        precision: if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else {
            0.0
        },
    }
}

/// Topic-drift demonstration (Section 3.2) on the expert world: with the
/// archetype threshold disabled, the needle pages (which blend recovery
/// and open-source vocabulary) get promoted as archetypes and drag the
/// crawl into the open-source topic; the threshold prevents it.
#[derive(Debug, Clone)]
pub struct DriftResult {
    /// Whether the threshold was enforced.
    pub threshold: bool,
    /// Pages classified into the ARIES topic.
    pub classified: u64,
    /// Classified pages truly about recovery (the intended topic).
    pub on_topic: u64,
    /// Classified pages from the open-source topic (the drift target).
    pub drifted: u64,
}

/// Run the §3.2 drift experiment once per threshold setting.
pub fn run_threshold_drift(seed: u64, threshold: bool) -> DriftResult {
    use bingo_webworld::gen::WorldConfig as WC;
    let world = Arc::new(WC::expert(seed).build());
    let seed_names = [
        "seed:bell-labs-slides",
        "seed:cmu-lecture",
        "seed:harvard-reading",
        "seed:brandeis-abstract",
        "mohan-page",
        "seed:stanford-seminar",
        "seed:vldb-paper",
    ];
    let mut engine = BingoEngine::new(EngineConfig {
        archetype_threshold: threshold,
        ..EngineConfig::default()
    });
    let topic = engine.add_topic(TopicTree::ROOT, "ARIES");
    for name in seed_names {
        let url = world.url_of(world.named_page(name).expect("scenario"));
        engine.add_training_url(&world, topic, &url).expect("seed");
    }
    populate_others(&mut engine, &world, &[3, 4], 30);
    engine.train().expect("train");
    let mut crawler = Crawler::new(
        world.clone(),
        CrawlConfig {
            max_depth: 0,
            ..CrawlConfig::default()
        },
        DocumentStore::new(),
    );
    for name in seed_names {
        let url = world.url_of(world.named_page(name).unwrap());
        crawler.add_seed(&url, Some(topic.0));
    }
    engine.crawl_until(&mut crawler, 120_000, 0);
    engine.retrain(&mut crawler);
    engine.switch_to_harvesting(&mut crawler);
    // Periodic retraining lets unguarded drift compound: the first round
    // promotes mixed-vocabulary pages, the next rounds promote documents
    // of the neighbouring topic outright.
    engine.crawl_until(&mut crawler, 900_000, 100);

    let mut classified = 0;
    let mut on_topic = 0;
    let mut drifted = 0;
    crawler.store().for_each_document(|row| {
        if row.topic == Some(topic.0) {
            classified += 1;
            match world.true_topic(row.id) {
                Some(1) => on_topic += 1,
                Some(2) => drifted += 1,
                _ => {}
            }
        }
    });
    DriftResult {
        threshold,
        classified,
        on_topic,
        drifted,
    }
}

/// "Arbitrarily chosen documents that were semantically far away": a few
/// pages from a single far-away category.
fn arbitrary_others(engine: &mut BingoEngine, world: &World, n: usize) {
    let mut added = 0;
    for id in 0..world.page_count() as u64 {
        if world.true_topic(id) == Some(5) && world.page(id).kind == PageKind::Content {
            if engine.add_others_url(world, &world.url_of(id)).is_ok() {
                added += 1;
            }
            if added >= n {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> AblationConfig {
        AblationConfig {
            seed: 5,
            authors: 80,
            learning_ms: 60_000,
            total_ms: 300_000,
        }
    }

    #[test]
    fn tunnelling_increases_harvest() {
        let cfg = quick_cfg();
        let full = run_variant(&cfg, Variant::Full);
        let no_tunnel = run_variant(&cfg, Variant::NoTunnelling);
        assert!(
            full.classified > no_tunnel.classified,
            "tunnelling should reach more topical pages: {} vs {}",
            full.classified,
            no_tunnel.classified
        );
    }

    #[test]
    fn soft_harvest_beats_sharp_only_on_volume() {
        let cfg = quick_cfg();
        let full = run_variant(&cfg, Variant::Full);
        assert!(full.classified > 0);
        assert!(full.true_positives > 0);
        assert!(full.precision > 0.5, "precision {}", full.precision);
    }
}
