//! The portal-generation experiment of Section 5.2 (Tables 1, 2, 3).
//!
//! A single-topic directory ("database research") is seeded with the
//! homepages of the two most prolific authors (the paper used David
//! DeWitt and Jim Gray). The learning phase crawls depth-first within
//! the seed domains; after retraining, the harvesting phase crawls
//! breadth-first with SVM-confidence prioritization. Snapshots are taken
//! at two budgets whose ratio matches the paper's 90 minutes : 12 hours.

use crate::single_topic_engine;
use bingo_core::{BingoEngine, EngineConfig, TopicId};
use bingo_crawler::{CrawlConfig, CrawlStats, Crawler};
use bingo_store::DocumentStore;
use bingo_webworld::dblp::{author_prefix_of, evaluate_found_authors};
use bingo_webworld::fetch::host_of_url;
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::World;
use std::sync::Arc;

/// Experiment parameters (defaults scale the paper's setup ~1:15 in
/// authors and 1:10 in wall clock).
#[derive(Debug, Clone)]
pub struct PortalExperimentConfig {
    /// World seed.
    pub seed: u64,
    /// Synthetic authors in the directory (paper/DBLP: 31,582).
    pub authors: usize,
    /// Noise-web scale factor.
    pub noise_scale: usize,
    /// First snapshot, virtual ms (≙ paper's 90 minutes at 1:10).
    pub t1_ms: u64,
    /// Final snapshot, virtual ms (≙ paper's 12 hours at 1:10).
    pub t2_ms: u64,
    /// Virtual time reserved for the learning phase.
    pub learning_ms: u64,
    /// "Top 1000 DBLP" column: how many top-ranked authors count.
    pub top_authors: usize,
    /// "Best crawl results" row cutoffs (paper: 1,000 / 5,000 / all).
    pub result_cutoffs: Vec<usize>,
    /// OTHERS negatives (paper: ~50, plus 400 in the experiment).
    pub n_others: usize,
    /// Retrain after this many positive classifications (0 = only at the
    /// phase switch).
    pub retrain_every: u64,
}

impl Default for PortalExperimentConfig {
    fn default() -> Self {
        PortalExperimentConfig {
            seed: 2003,
            authors: 5000,
            noise_scale: 4,
            t1_ms: 540_000,   // 9 virtual minutes  ≙ 90 paper-minutes
            t2_ms: 4_320_000, // 72 virtual minutes ≙ 12 paper-hours
            learning_ms: 120_000,
            top_authors: 500,
            result_cutoffs: vec![500, 2500],
            n_others: 50,
            retrain_every: 400,
        }
    }
}

/// One snapshot's numbers: crawl summary (Table 1 column) plus the
/// precision/recall evaluation (Table 2/3).
#[derive(Debug, Clone)]
pub struct PortalSnapshot {
    /// Label ("t1"/"t2").
    pub label: String,
    /// Crawl counters at the snapshot.
    pub stats: CrawlStats,
    /// `(result cutoff, found among top authors, found among all)` rows.
    pub evaluation: Vec<(usize, usize, usize)>,
    /// The same evaluation after homepage-recognition postprocessing —
    /// the improvement §5.2 predicts: "our crawler is not intended to be
    /// a homepage finder ... [URL pattern matching] could be easily added
    /// for postprocessing the crawl result and would most probably
    /// improve precision".
    pub evaluation_postprocessed: Vec<(usize, usize, usize)>,
    /// Positively classified documents at the snapshot.
    pub results_ranked: usize,
}

/// Full experiment outcome.
#[derive(Debug, Clone)]
pub struct PortalOutcome {
    /// Snapshot at `t1_ms` (Table 1 col 1 + Table 2).
    pub t1: PortalSnapshot,
    /// Snapshot at `t2_ms` (Table 1 col 2 + Table 3).
    pub t2: PortalSnapshot,
    /// World page count (context for the scaled numbers).
    pub world_pages: usize,
    /// Authors in the ground-truth directory.
    pub authors: usize,
    /// Archetypes promoted during the run.
    pub archetypes: usize,
}

/// Evaluate the crawl result against the author directory at the current
/// moment.
fn snapshot(
    label: &str,
    engine: &BingoEngine,
    topic: TopicId,
    crawler: &Crawler,
    world: &World,
    cfg: &PortalExperimentConfig,
) -> PortalSnapshot {
    let _ = engine;
    // Ranked result list: positively classified docs by descending
    // confidence (the paper sorts by classification confidence).
    let mut results: Vec<(f32, String)> = Vec::new();
    crawler.store().for_each_document(|row| {
        if row.topic == Some(topic.0) {
            results.push((row.confidence, row.url.clone()));
        }
    });
    results.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let urls: Vec<String> = results.into_iter().map(|(_, u)| u).collect();

    let mut cutoffs: Vec<usize> = cfg
        .result_cutoffs
        .iter()
        .copied()
        .filter(|&c| c < urls.len())
        .collect();
    cutoffs.push(urls.len());
    cutoffs.dedup();
    let evaluation = evaluate_found_authors(&urls, world.authors(), cfg.top_authors, &cutoffs);

    // Homepage-recognition postprocessing: results whose URL matches the
    // personal-homepage pattern (`/~name/...`) are promoted to the front
    // of the ranking, order otherwise preserved.
    let (homepagey, rest): (Vec<String>, Vec<String>) = urls
        .iter()
        .cloned()
        .partition(|u| author_prefix_of(u).is_some());
    let reranked: Vec<String> = homepagey.into_iter().chain(rest).collect();
    let evaluation_postprocessed =
        evaluate_found_authors(&reranked, world.authors(), cfg.top_authors, &cutoffs);

    PortalSnapshot {
        label: label.to_string(),
        stats: crawler.stats().clone(),
        evaluation,
        evaluation_postprocessed,
        results_ranked: urls.len(),
    }
}

/// Run the full portal-generation experiment.
pub fn run(cfg: &PortalExperimentConfig) -> PortalOutcome {
    let world = Arc::new(WorldConfig::portal(cfg.seed, cfg.authors, cfg.noise_scale).build());

    // Seeds: the two most prolific authors' homepages.
    let seeds: Vec<String> = world.authors()[..2]
        .iter()
        .map(|a| world.url_of(a.homepage))
        .collect();
    // §5.2: the archetype threshold was not enforced for this experiment.
    let engine_cfg = EngineConfig {
        archetype_threshold: false,
        ..EngineConfig::default()
    };
    // Paper: negatives drawn from Yahoo-style top-level categories.
    let (mut engine, topic) = single_topic_engine(
        &world,
        "database research",
        &seeds,
        &[3, 4, 5, 6],
        cfg.n_others.max(1),
        engine_cfg,
    );

    // Learning phase: depth-first, sharp focus, depth ≤ 4, tunnel ≤ 2,
    // restricted to the seed domains.
    let seed_hosts = seeds
        .iter()
        .map(|u| host_of_url(u).unwrap().to_string())
        .collect();
    let learn_config = CrawlConfig {
        allowed_hosts: Some(seed_hosts),
        ..CrawlConfig::default()
    };
    let mut crawler = Crawler::new(world.clone(), learn_config, DocumentStore::new());
    for (url, _a) in seeds.iter().zip(world.authors()) {
        crawler.add_seed(url, Some(topic.0));
    }
    engine.crawl_until(&mut crawler, cfg.learning_ms, 0);
    engine.retrain(&mut crawler);

    // Harvesting: breadth-first/best-first, soft focus, no restrictions.
    engine.switch_to_harvesting(&mut crawler);
    engine.crawl_until(&mut crawler, cfg.t1_ms, cfg.retrain_every);
    let t1 = snapshot("t1", &engine, topic, &crawler, &world, cfg);
    engine.crawl_until(&mut crawler, cfg.t2_ms, cfg.retrain_every);
    let t2 = snapshot("t2", &engine, topic, &crawler, &world, cfg);

    PortalOutcome {
        t1,
        t2,
        world_pages: world.page_count(),
        authors: world.authors().len(),
        archetypes: engine.archetype_count(topic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature end-to-end run of the whole experiment pipeline.
    #[test]
    fn miniature_portal_run_produces_sane_shape() {
        let cfg = PortalExperimentConfig {
            authors: 120,
            noise_scale: 1,
            t1_ms: 150_000,
            t2_ms: 1_200_000,
            learning_ms: 60_000,
            top_authors: 20,
            result_cutoffs: vec![50],
            n_others: 30,
            retrain_every: 200,
            seed: 77,
        };
        let out = run(&cfg);
        // Table 1 shape: t2 strictly extends t1.
        assert!(out.t2.stats.visited_urls > out.t1.stats.visited_urls);
        assert!(out.t2.stats.stored_pages >= out.t1.stats.stored_pages);
        assert!(out.t1.stats.positively_classified > 0);
        // Tables 2/3 shape: recall grows (or holds) with budget.
        let t1_all = out.t1.evaluation.last().unwrap().2;
        let t2_all = out.t2.evaluation.last().unwrap().2;
        assert!(t2_all >= t1_all, "recall shrank: {t1_all} -> {t2_all}");
        assert!(t2_all > 0, "no authors found at all");
        assert!(out.archetypes > 0, "no archetypes were ever promoted");
    }
}
