//! Authority-blend ablation: does blending host-graph authority into
//! frontier priorities (`α·confidence + β·authority`) lift the harvest?
//!
//! Two measurements, both baseline-vs-blended on identical seeded
//! worlds:
//!
//! 1. **Portal harvest** (§5.2 world): the standard learning → retrain →
//!    harvesting crawl, measuring harvest ratio (stored / visited),
//!    on-topic yield (true positives / visited) and precision against
//!    ground-truth labels.
//! 2. **Expert recall** (§5.3 world): the needle-in-a-haystack ARIES
//!    crawl, measuring how many known needle pages surface in the
//!    top-10 of the local "source code release" query.
//!
//! The blend is the tentpole of the incremental host graph
//! ([`bingo_crawler::HostAuthority`]); this experiment is its
//! effectiveness evidence, recorded in `EXPERIMENTS.md`.

use crate::expert::{self, ExpertExperimentConfig};
use crate::populate_others;
use bingo_core::{BingoEngine, EngineConfig, TopicTree};
use bingo_crawler::{AuthorityConfig, CrawlConfig, Crawler};
use bingo_store::DocumentStore;
use bingo_webworld::fetch::host_of_url;
use bingo_webworld::gen::WorldConfig;
use std::sync::Arc;

/// Experiment parameters (portal leg).
#[derive(Debug, Clone)]
pub struct AuthorityExperimentConfig {
    /// World seed.
    pub seed: u64,
    /// Author directory size.
    pub authors: usize,
    /// Learning budget (virtual ms).
    pub learning_ms: u64,
    /// Total budget (virtual ms).
    pub total_ms: u64,
    /// Blend weight of the content priority.
    pub alpha: f32,
    /// Blend weight of the host authority.
    pub beta: f32,
}

impl Default for AuthorityExperimentConfig {
    fn default() -> Self {
        AuthorityExperimentConfig {
            seed: 99,
            authors: 300,
            learning_ms: 60_000,
            total_ms: 150_000,
            alpha: 0.7,
            beta: 0.3,
        }
    }
}

/// Measured outcome of one portal crawl.
#[derive(Debug, Clone)]
pub struct AuthorityOutcome {
    /// "baseline" or "blended".
    pub label: String,
    /// URLs visited.
    pub visited: u64,
    /// Pages stored.
    pub stored: u64,
    /// Pages positively classified into the topic.
    pub classified: u64,
    /// Classified pages whose ground-truth topic matches.
    pub true_positives: u64,
    /// Classified pages belonging to a different topic.
    pub false_positives: u64,
    /// stored / visited.
    pub harvest_ratio: f64,
    /// true positives / visited: on-topic pages per fetched URL — the
    /// focused-crawling figure of merit.
    pub on_topic_yield: f64,
    /// Precision over topically labeled classified pages.
    pub precision: f64,
    /// Hosts in the authority graph (0 for the baseline).
    pub graph_hosts: usize,
    /// Distinct inter-host edges (0 for the baseline).
    pub graph_edges: usize,
    /// Authority recomputations performed (0 for the baseline).
    pub recomputes: u64,
    /// Top hosts by authority (empty for the baseline).
    pub top_hosts: Vec<(String, f64)>,
}

/// Run the §5.2-style portal crawl, with or without the blend.
pub fn run_portal(cfg: &AuthorityExperimentConfig, blended: bool) -> AuthorityOutcome {
    let world = Arc::new(WorldConfig::portal(cfg.seed, cfg.authors, 1).build());
    let seeds: Vec<String> = world.authors()[..2]
        .iter()
        .map(|a| world.url_of(a.homepage))
        .collect();

    let mut engine = BingoEngine::new(EngineConfig::default());
    let topic = engine.add_topic(TopicTree::ROOT, "database research");
    for url in &seeds {
        engine
            .add_training_url(&world, topic, url)
            .expect("seed fetch");
    }
    populate_others(&mut engine, &world, &[3, 4, 5, 6], 50);
    engine.train().expect("train");

    let seed_hosts = seeds
        .iter()
        .map(|u| host_of_url(u).unwrap().to_string())
        .collect();
    let authority = if blended {
        AuthorityConfig {
            enabled: true,
            alpha: cfg.alpha,
            beta: cfg.beta,
            ..AuthorityConfig::default()
        }
    } else {
        AuthorityConfig::default()
    };
    let config = CrawlConfig {
        allowed_hosts: Some(seed_hosts),
        authority,
        ..CrawlConfig::default()
    };
    let mut crawler = Crawler::new(world.clone(), config, DocumentStore::new());
    for url in &seeds {
        crawler.add_seed(url, Some(topic.0));
    }
    engine.crawl_until(&mut crawler, cfg.learning_ms, 0);
    engine.retrain(&mut crawler);
    engine.switch_to_harvesting(&mut crawler);
    engine.crawl_until(&mut crawler, cfg.total_ms, 0);

    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut classified = 0u64;
    crawler.store().for_each_document(|row| {
        if row.topic == Some(topic.0) {
            classified += 1;
            match world.true_topic(row.id) {
                Some(0) => tp += 1,
                Some(_) => fp += 1,
                None => {}
            }
        }
    });
    let stats = crawler.stats().clone();
    let visited = stats.visited_urls.max(1);
    let (graph_hosts, graph_edges, recomputes, top_hosts) = match crawler.authority() {
        Some(auth) => (
            auth.host_count(),
            auth.edge_count(),
            auth.recomputes(),
            auth.top_hosts(5),
        ),
        None => (0, 0, 0, Vec::new()),
    };
    AuthorityOutcome {
        label: if blended { "blended" } else { "baseline" }.to_string(),
        visited: stats.visited_urls,
        stored: stats.stored_pages,
        classified,
        true_positives: tp,
        false_positives: fp,
        harvest_ratio: stats.stored_pages as f64 / visited as f64,
        on_topic_yield: tp as f64 / visited as f64,
        precision: if tp + fp > 0 {
            tp as f64 / (tp + fp) as f64
        } else {
            0.0
        },
        graph_hosts,
        graph_edges,
        recomputes,
        top_hosts,
    }
}

/// Expert-search recall with or without the blend: needles found in the
/// focused top-10 of the §5.3 experiment.
pub fn run_expert_recall(seed: u64, cfg: &AuthorityExperimentConfig, blended: bool) -> usize {
    let authority = if blended {
        AuthorityConfig {
            enabled: true,
            alpha: cfg.alpha,
            beta: cfg.beta,
            ..AuthorityConfig::default()
        }
    } else {
        AuthorityConfig::default()
    };
    let out = expert::run(&ExpertExperimentConfig {
        seed,
        authority,
        ..ExpertExperimentConfig::default()
    });
    out.needles_in_focused_top10
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short blended run must actually exercise the graph machinery;
    /// effectiveness numbers live in `exp_authority` / EXPERIMENTS.md,
    /// not in CI assertions.
    #[test]
    fn blended_portal_crawl_builds_the_graph() {
        let cfg = AuthorityExperimentConfig {
            seed: 141,
            authors: 60,
            learning_ms: 40_000,
            total_ms: 120_000,
            ..AuthorityExperimentConfig::default()
        };
        let blended = run_portal(&cfg, true);
        assert!(blended.stored > 0);
        assert!(blended.graph_hosts > 1, "graph empty: {blended:?}");
        assert!(blended.graph_edges > 0);
        let baseline = run_portal(&cfg, false);
        assert_eq!(baseline.graph_hosts, 0);
        assert!(baseline.stored > 0);
    }
}
