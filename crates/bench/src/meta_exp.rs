//! Meta-classification precision experiment (Section 3.5's claim that
//! unanimous/weighted meta decisions lift precision from ~80% to >90%)
//! and the feature-selection example of Section 2.3.

use crate::populate_others;
use bingo_core::{BingoEngine, EngineConfig, TopicTree};
use bingo_ml::feature_selection::{FeatureSelection, FeatureSelectionConfig};
use bingo_ml::{NaiveBayes, TrainingSet};
use bingo_textproc::features::{namespace_of, Namespace};
use bingo_textproc::{DocumentFeatures, FeatureSpaceKind, TermId};
use bingo_webworld::gen::WorldConfig;
use bingo_webworld::{PageKind, World};

/// Precision/recall of one decision method on the held-out set.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method label.
    pub method: String,
    /// Precision among accepted documents.
    pub precision: f64,
    /// Recall over true positives.
    pub recall: f64,
    /// Documents accepted.
    pub accepted: usize,
}

/// Experiment outcome: one row per decision method.
#[derive(Debug, Clone)]
pub struct MetaOutcome {
    /// Per-method results (single spaces first, then meta functions).
    pub rows: Vec<MethodResult>,
    /// Held-out positives / negatives evaluated.
    pub test_pos: usize,
    /// Held-out negatives evaluated.
    pub test_neg: usize,
}

fn held_out_pages(world: &World, topic: u32, skip: usize, take: usize) -> Vec<u64> {
    (0..world.page_count() as u64)
        .filter(|&id| {
            world.true_topic(id) == Some(topic) && world.page(id).kind == PageKind::Content
        })
        .skip(skip)
        .take(take)
        .collect()
}

/// Run the meta-classification experiment: train a db-research topic
/// model on a modest seed set, then measure per-space and per-policy
/// precision on held-out pages including *related-topic* hard negatives
/// (data mining, web IR) that share vocabulary with the positives.
pub fn run_meta(seed: u64) -> MetaOutcome {
    let world = WorldConfig::portal(seed, 200, 1).build();

    let mut engine = BingoEngine::new(EngineConfig::default());
    let topic = engine.add_topic(TopicTree::ROOT, "database research");

    // Training positives: 16 db-research pages.
    for id in held_out_pages(&world, 0, 0, 16) {
        engine
            .add_training_url(&world, topic, &world.url_of(id))
            .expect("training page");
    }
    // Negatives: a mix of hard (related topics) and easy (noise) pages.
    for id in held_out_pages(&world, 1, 0, 10) {
        engine.add_others_url(&world, &world.url_of(id)).ok();
    }
    for id in held_out_pages(&world, 2, 0, 10) {
        engine.add_others_url(&world, &world.url_of(id)).ok();
    }
    populate_others(&mut engine, &world, &[3, 4], 20);
    engine.train().expect("training");

    // Held-out evaluation set.
    let pos_ids = held_out_pages(&world, 0, 16, 120);
    let mut neg_ids = held_out_pages(&world, 1, 10, 60);
    neg_ids.extend(held_out_pages(&world, 2, 10, 60));
    neg_ids.extend(held_out_pages(&world, 3, 0, 30));

    let analyze = |engine: &mut BingoEngine, ids: &[u64]| -> Vec<DocumentFeatures> {
        ids.iter()
            .filter_map(|&id| {
                engine
                    .analyze_url(&world, &world.url_of(id))
                    .ok()
                    .map(|(_, _, f)| f)
            })
            .collect()
    };
    let pos = analyze(&mut engine, &pos_ids);
    let neg = analyze(&mut engine, &neg_ids);
    let model = engine.model(topic).expect("model").clone();

    // A genuinely different fourth classifier for the committee: a
    // multinomial Naive Bayes over raw single-term counts (the paper's
    // meta classifier combines alternative learning methods, not only
    // alternative feature spaces).
    let nb_vector = |f: &DocumentFeatures| {
        bingo_textproc::SparseVector::from_pairs(
            f.occurrences(FeatureSpaceKind::SingleTerms)
                .into_iter()
                .map(|(i, c)| (i, c as f32))
                .collect(),
        )
    };
    let mut nb_set = TrainingSet::new();
    for d in engine.tree.node(topic).training.iter() {
        nb_set.push(nb_vector(&d.features), true);
    }
    for d in engine.tree.others.iter() {
        nb_set.push(nb_vector(&d.features), false);
    }
    let nb = NaiveBayes::train(&nb_set).expect("naive bayes");

    // The committee: per-member accept function plus its ξα-style weight
    // (the SVMs use their ξα precision estimate; the NB is weighted by
    // its training-set precision).
    type Member<'a> = (String, Box<dyn Fn(&DocumentFeatures) -> bool + 'a>, f64);
    let mut members: Vec<Member<'_>> = Vec::new();
    for (i, space) in model.spaces.iter().enumerate() {
        let m = &model;
        members.push((
            format!("{:?} (single)", space.kind),
            Box::new(move |f: &DocumentFeatures| m.spaces[i].confidence(f) >= 0.0),
            (space.xi_precision() as f64).max(0.05),
        ));
    }
    {
        let nb_ref = &nb;
        let train_tp = engine
            .tree
            .node(topic)
            .training
            .iter()
            .filter(|d| nb_ref.score(&nb_vector(&d.features)) >= 0.0)
            .count();
        let train_fp = engine
            .tree
            .others
            .iter()
            .filter(|d| nb_ref.score(&nb_vector(&d.features)) >= 0.0)
            .count();
        let nb_weight = if train_tp + train_fp > 0 {
            (train_tp as f64 / (train_tp + train_fp) as f64).max(0.05)
        } else {
            0.05
        };
        members.push((
            "NaiveBayes (single)".to_string(),
            Box::new(move |f: &DocumentFeatures| nb_ref.score(&nb_vector(f)) >= 0.0),
            nb_weight,
        ));
    }

    let mut rows = Vec::new();
    let mut measure = |method: &str, decide: &dyn Fn(&DocumentFeatures) -> bool| {
        let tp = pos.iter().filter(|f| decide(f)).count();
        let fp = neg.iter().filter(|f| decide(f)).count();
        let accepted = tp + fp;
        rows.push(MethodResult {
            method: method.to_string(),
            precision: if accepted > 0 {
                tp as f64 / accepted as f64
            } else {
                0.0
            },
            recall: tp as f64 / pos.len().max(1) as f64,
            accepted,
        });
    };

    for (label, decide, _w) in &members {
        measure(label, decide.as_ref());
    }
    let h = members.len() as f64;
    // Meta decision functions over the committee (Section 3.5 formula).
    let vote = |f: &DocumentFeatures, weighted: bool| -> f64 {
        members
            .iter()
            .map(|(_, d, w)| {
                let res = if d(f) { 1.0 } else { -1.0 };
                if weighted {
                    w * res
                } else {
                    res
                }
            })
            .sum()
    };
    measure("meta: majority", &|f| vote(f, false) > 0.0);
    measure("meta: unanimous", &|f| vote(f, false) > h - 0.5);
    measure("meta: weighted (xi-alpha)", &|f| vote(f, true) > 0.0);

    MetaOutcome {
        rows,
        test_pos: pos.len(),
        test_neg: neg.len(),
    }
}

/// The Section 2.3 example: MI feature selection for a "Data Mining"
/// class against its competing siblings. Returns the top stems — the
/// paper reports `mine, knowledg, olap, frame, pattern, genet, discov,
/// cluster, dataset`.
pub fn run_feature_example(seed: u64, top_n: usize) -> Vec<String> {
    let world = WorldConfig::portal(seed, 100, 1).build();
    let mut engine = BingoEngine::new(EngineConfig::default());

    // Documents: data-mining pages (the class) vs. db-research and
    // web-IR pages (competing siblings at the same tree level).
    let mining = held_out_pages(&world, 1, 0, 40);
    let mut competing = held_out_pages(&world, 0, 0, 40);
    competing.extend(held_out_pages(&world, 2, 0, 40));

    let analyze = |engine: &mut BingoEngine, ids: &[u64]| -> Vec<DocumentFeatures> {
        ids.iter()
            .filter_map(|&id| {
                engine
                    .analyze_url(&world, &world.url_of(id))
                    .ok()
                    .map(|(_, _, f)| f)
            })
            .collect()
    };
    let pos = analyze(&mut engine, &mining);
    let neg = analyze(&mut engine, &competing);

    let pos_occ: Vec<Vec<(u32, u32)>> = pos
        .iter()
        .map(|f| f.occurrences(FeatureSpaceKind::SingleTerms))
        .collect();
    let neg_occ: Vec<Vec<(u32, u32)>> = neg
        .iter()
        .map(|f| f.occurrences(FeatureSpaceKind::SingleTerms))
        .collect();
    let labeled: Vec<(&[(u32, u32)], bool)> = pos_occ
        .iter()
        .map(|o| (o.as_slice(), true))
        .chain(neg_occ.iter().map(|o| (o.as_slice(), false)))
        .collect();
    let selector = FeatureSelection::new(FeatureSelectionConfig::default()).select(&labeled);

    selector
        .ranked()
        .iter()
        .filter(|&&(f, _)| namespace_of(f) == Namespace::Term)
        .take(top_n)
        .map(|&(f, _)| engine.vocab.term(TermId(f)).to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_improves_precision_over_singles() {
        let out = run_meta(11);
        assert!(out.test_pos > 50 && out.test_neg > 50);
        let single_best = out
            .rows
            .iter()
            .filter(|r| r.method.contains("single"))
            .map(|r| r.precision)
            .fold(0.0, f64::max);
        let unanimous = out
            .rows
            .iter()
            .find(|r| r.method.contains("unanimous"))
            .unwrap();
        assert!(
            unanimous.precision >= single_best - 1e-9,
            "unanimous {:.3} must not trail the best single {:.3}",
            unanimous.precision,
            single_best
        );
        assert!(unanimous.precision > 0.85, "unanimous too weak: {out:#?}");
        assert!(unanimous.accepted > 0);
    }

    #[test]
    fn feature_example_surfaces_mining_stems() {
        let stems = run_feature_example(11, 12);
        assert!(!stems.is_empty());
        let expected = ["mine", "knowledg", "pattern", "cluster", "olap", "dataset"];
        let hits = expected
            .iter()
            .filter(|w| stems.iter().any(|s| s == *w))
            .count();
        assert!(hits >= 3, "expected mining stems in top-12, got {stems:?}");
    }
}
