//! Experiment harnesses regenerating every table and figure of the
//! paper's evaluation (Section 5), plus shared scaffolding for the
//! Criterion microbenches.
//!
//! | experiment | binary | paper artifact |
//! |---|---|---|
//! | portal generation | `exp_portal` | Table 1 (crawl summary), Tables 2/3 (precision/recall vs. the author directory) |
//! | expert search | `exp_expert` | Figure 4 (training seeds), Figure 5 (top-10 postprocessing results), baseline contrast |
//! | meta classification | `exp_meta` | §3.5 claim (precision ~80% → >90%), §2.3 feature-selection example |
//! | focus ablations | `exp_ablation` | §3.1-3.3 design lessons |
//! | authority blend | `exp_authority` | host-graph authority-blended frontier ordering (extension; baseline vs blended) |
//! | fault scenarios | `exp_faults` | §4.2 failure handling: chaos resilience + checkpoint/resume convergence |
//!
//! Scaling: the synthetic web is orders of magnitude smaller than the
//! 2002 Web and runs on a virtual clock (host latencies approximate web
//! round trips; budgets are scaled 1:10 against the paper's wall clock,
//! preserving the 90-minute : 12-hour ratio). `EXPERIMENTS.md` records
//! the paper-vs-measured comparison for every artifact.

pub mod ablation;
pub mod authority_exp;
pub mod expert;
pub mod faults_exp;
pub mod gate;
pub mod meta_exp;
pub mod portal;
pub mod report;

use bingo_core::{BingoEngine, EngineConfig, TopicId, TopicTree};
use bingo_webworld::{PageKind, World};

/// Pick `n` noise content pages (the "Yahoo top-level categories"
/// material of Section 3.1) to populate the OTHERS class. The harness
/// plays the human role here, so it may consult ground truth.
pub fn populate_others(
    engine: &mut BingoEngine,
    world: &World,
    noise_topics: &[u32],
    n: usize,
) -> usize {
    let mut added = 0;
    let mut topic_idx = 0;
    // Round-robin over noise topics for diversity.
    let mut cursors = vec![0u64; noise_topics.len()];
    while added < n && !noise_topics.is_empty() {
        let t = noise_topics[topic_idx % noise_topics.len()];
        let cursor = &mut cursors[topic_idx % noise_topics.len()];
        topic_idx += 1;
        let mut found = false;
        while (*cursor as usize) < world.page_count() {
            let id = *cursor;
            *cursor += 1;
            if world.true_topic(id) == Some(t) && world.page(id).kind == PageKind::Content {
                if engine.add_others_url(world, &world.url_of(id)).is_ok() {
                    added += 1;
                    found = true;
                }
                break;
            }
        }
        if !found && cursors.iter().all(|&c| c as usize >= world.page_count()) {
            break;
        }
    }
    added
}

/// Standard single-topic engine setup used by several experiments:
/// a fresh engine with one topic, trained from the given seed URLs and
/// `n_others` noise negatives.
pub fn single_topic_engine(
    world: &World,
    topic_name: &str,
    seed_urls: &[String],
    noise_topics: &[u32],
    n_others: usize,
    config: EngineConfig,
) -> (BingoEngine, TopicId) {
    let mut engine = BingoEngine::new(config);
    let topic = engine.add_topic(TopicTree::ROOT, topic_name);
    for url in seed_urls {
        engine
            .add_training_url(world, topic, url)
            .unwrap_or_else(|e| panic!("seed {url}: {e}"));
    }
    populate_others(&mut engine, world, noise_topics, n_others);
    engine.train().expect("initial training");
    (engine, topic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bingo_webworld::gen::WorldConfig;

    #[test]
    fn populate_others_draws_from_noise_topics() {
        let world = WorldConfig::small_test(61).build();
        let mut engine = BingoEngine::new(EngineConfig::default());
        engine.add_topic(TopicTree::ROOT, "t");
        let added = populate_others(&mut engine, &world, &[2, 3], 20);
        assert_eq!(added, 20);
        assert_eq!(engine.tree.others.len(), 20);
    }

    #[test]
    fn single_topic_engine_trains() {
        let world = WorldConfig::small_test(61).build();
        let seeds = vec![world.url_of(world.authors()[0].homepage)];
        let (engine, topic) =
            single_topic_engine(&world, "db", &seeds, &[2, 3], 20, EngineConfig::default());
        assert!(engine.model(topic).is_some());
    }
}
