//! E1-E3: the portal-generation experiment (Section 5.2; Tables 1-3).
//!
//! ```text
//! cargo run --release -p bingo-bench --bin exp_portal [-- --quick]
//! ```
//!
//! Prints the crawl summary (Table 1) and the precision/recall
//! evaluation against the synthetic author directory (Tables 2 and 3),
//! and writes a JSON report next to the text output.

use bingo_bench::portal::{PortalExperimentConfig, PortalOutcome, PortalSnapshot};
use bingo_bench::report::{count, table};

fn print_snapshot_eval(title: &str, snap: &PortalSnapshot) {
    let rows: Vec<Vec<String>> = snap
        .evaluation
        .iter()
        .zip(&snap.evaluation_postprocessed)
        .map(|(&(cutoff, top, all), &(_, ptop, pall))| {
            vec![
                if cutoff >= snap.results_ranked {
                    format!("all ({})", count(snap.results_ranked as u64))
                } else {
                    count(cutoff as u64)
                },
                count(top as u64),
                count(all as u64),
                count(ptop as u64),
                count(pall as u64),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            title,
            &[
                "Best crawl results",
                "Top authors",
                "All authors",
                "Top (homepage pp.)",
                "All (homepage pp.)",
            ],
            &rows,
        )
    );
    println!();
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        PortalExperimentConfig {
            authors: 400,
            noise_scale: 1,
            t1_ms: 240_000,
            t2_ms: 1_920_000,
            top_authors: 50,
            result_cutoffs: vec![100, 500],
            ..PortalExperimentConfig::default()
        }
    } else {
        PortalExperimentConfig::default()
    };

    eprintln!(
        "portal experiment: {} authors, seed {}, budgets {}s/{}s virtual{}",
        cfg.authors,
        cfg.seed,
        cfg.t1_ms / 1000,
        cfg.t2_ms / 1000,
        if quick { " (--quick)" } else { "" }
    );
    let started = std::time::Instant::now();
    let out: PortalOutcome = bingo_bench::portal::run(&cfg);
    eprintln!("completed in {:.1}s wall", started.elapsed().as_secs_f64());

    println!("# Portal generation for a single topic (paper §5.2)\n");
    println!(
        "world: {} pages, {} authors in the directory; {} archetypes promoted\n",
        count(out.world_pages as u64),
        count(out.authors as u64),
        out.archetypes
    );

    // Table 1: crawl summary data.
    let s1 = &out.t1.stats;
    let s2 = &out.t2.stats;
    let rows = vec![
        vec![
            "Visited URLs".into(),
            count(s1.visited_urls),
            count(s2.visited_urls),
        ],
        vec![
            "Stored pages".into(),
            count(s1.stored_pages),
            count(s2.stored_pages),
        ],
        vec![
            "Extracted links".into(),
            count(s1.extracted_links),
            count(s2.extracted_links),
        ],
        vec![
            "Positively classified".into(),
            count(s1.positively_classified),
            count(s2.positively_classified),
        ],
        vec![
            "Visited hosts".into(),
            count(s1.visited_hosts),
            count(s2.visited_hosts),
        ],
        vec![
            "Max crawling depth".into(),
            s1.max_depth.to_string(),
            s2.max_depth.to_string(),
        ],
        vec![
            "Duplicates dismissed".into(),
            count(s1.duplicates),
            count(s2.duplicates),
        ],
        vec![
            "Fetch errors".into(),
            count(s1.fetch_errors),
            count(s2.fetch_errors),
        ],
    ];
    print!(
        "{}",
        table(
            "Table 1 analog: crawl summary data",
            &["Property", "t1 (≙ 90 min)", "t2 (≙ 12 hours)"],
            &rows,
        )
    );
    println!();

    print_snapshot_eval("Table 2 analog: BINGO! precision at t1", &out.t1);
    print_snapshot_eval("Table 3 analog: BINGO! precision at t2", &out.t2);

    // JSON report for EXPERIMENTS.md bookkeeping.
    let json = serde_json::json!({
        "experiment": "portal",
        "config": {
            "authors": cfg.authors,
            "seed": cfg.seed,
            "t1_ms": cfg.t1_ms,
            "t2_ms": cfg.t2_ms,
            "top_authors": cfg.top_authors,
        },
        "world_pages": out.world_pages,
        "archetypes": out.archetypes,
        "t1": { "stats": s1, "evaluation": out.t1.evaluation },
        "t2": { "stats": s2, "evaluation": out.t2.evaluation },
    });
    bingo_bench::report::write_json_report("experiments_portal.json", &json);
}
