//! E5: the fault-scenario experiment (crawler robustness, paper §4.2).
//!
//! ```text
//! cargo run --release -p bingo-bench --bin exp_faults [-- --quick]
//! ```
//!
//! Compares a fault-free crawl, an uninterrupted chaos crawl and a
//! chaos crawl killed at 50% of the document budget and resumed from
//! its last automatic checkpoint, then writes a JSON report.

use bingo_bench::faults_exp::{run, FaultsConfig};
use bingo_bench::report::{count, table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        FaultsConfig {
            seed: 77,
            ..FaultsConfig::default()
        }
    } else {
        FaultsConfig::default()
    };

    eprintln!(
        "fault-scenario experiment: seed {}, checkpoint every {} docs{}",
        cfg.seed,
        cfg.checkpoint_every_docs,
        if quick { " (--quick)" } else { "" }
    );
    let started = std::time::Instant::now();
    let out = run(&cfg);
    eprintln!("completed in {:.1}s wall", started.elapsed().as_secs_f64());

    println!("# Crawl robustness under deterministic faults (paper §4.2)\n");
    println!(
        "{} faulty hosts in the chaos plan; crawl killed at {} stored documents\n",
        out.faulty_hosts,
        count(out.killed_at_docs),
    );

    let rows: Vec<Vec<String>> = out
        .crawls
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                count(c.stats.visited_urls),
                count(c.stats.stored_pages),
                format!("{:.3}", c.harvest_ratio),
                count(c.stats.fetch_errors),
                count(c.stats.retries),
                count(c.stats.breaker_opened),
                count(c.stats.breaker_closed),
                count(c.stats.hosts_dead),
                count(c.stats.backoff_wait_ms),
            ]
        })
        .collect();
    print!(
        "{}",
        table(
            "Crawl outcomes: clean vs chaos vs kill-at-50%+resume",
            &[
                "Crawl",
                "Visited",
                "Stored",
                "Harvest",
                "Fetch errors",
                "Retries",
                "Breaker opened",
                "Breaker closed",
                "Hosts dead",
                "Backoff wait (virt. ms)",
            ],
            &rows,
        )
    );
    println!();
    println!(
        "resume convergence: harvest-ratio drift {:.2}% (acceptance bound 2%), harvest overlap {:.1}%",
        out.resume_ratio_drift * 100.0,
        out.resume_harvest_overlap * 100.0
    );

    let json = serde_json::json!({
        "experiment": "faults",
        "config": { "seed": cfg.seed, "checkpoint_every_docs": cfg.checkpoint_every_docs },
        "outcome": out,
    });
    bingo_bench::report::write_json_report("experiments_faults.json", &json);
}
