//! E9: ablation study of the effectiveness mechanisms (Sections 3.1-3.3).
//!
//! ```text
//! cargo run --release -p bingo-bench --bin exp_ablation
//! ```

use bingo_bench::ablation::{run_threshold_drift, run_variant, AblationConfig, Variant};
use bingo_bench::report::table;

fn main() {
    let cfg = AblationConfig::default();
    eprintln!(
        "ablation study: seed {}, {} authors, budget {}s virtual per variant",
        cfg.seed,
        cfg.authors,
        cfg.total_ms / 1000
    );

    let mut rows = Vec::new();
    for variant in Variant::ALL {
        eprintln!("running: {}", variant.label());
        let r = run_variant(&cfg, variant);
        rows.push(vec![
            variant.label().to_string(),
            r.stored.to_string(),
            r.classified.to_string(),
            r.true_positives.to_string(),
            r.false_positives.to_string(),
            format!("{:.1}%", r.precision * 100.0),
        ]);
    }
    println!("# Ablations of the §3.1-3.3 mechanisms\n");
    print!(
        "{}",
        table(
            "Harvest volume and precision per variant",
            &[
                "Variant",
                "Stored",
                "Classified",
                "True pos",
                "False pos",
                "Precision",
            ],
            &rows,
        )
    );
    println!(
        "\nreading guide: tunnelling and the harvesting phase buy volume \
         (recall); the archetype threshold and systematic OTHERS protect \
         precision."
    );

    // The §3.2 topic-drift demonstration on the expert world.
    eprintln!("running: threshold drift (expert world)");
    let mut drift_rows = Vec::new();
    for threshold in [true, false] {
        let d = run_threshold_drift(2003, threshold);
        drift_rows.push(vec![
            if d.threshold {
                "threshold enforced"
            } else {
                "threshold disabled"
            }
            .to_string(),
            d.classified.to_string(),
            d.on_topic.to_string(),
            d.drifted.to_string(),
        ]);
    }
    println!();
    print!(
        "{}",
        table(
            "Topic drift via unguarded archetypes (ARIES crawl, §3.2)",
            &[
                "Archetype selection",
                "Classified",
                "On recovery",
                "Drifted to open-source"
            ],
            &drift_rows,
        )
    );
    println!(
        "\nwithout the mean-confidence gate, mixed-vocabulary archetypes \
         pull the crawl into the neighbouring topic."
    );

    let json = serde_json::json!({
        "experiment": "ablation",
        "rows": rows,
        "drift": drift_rows,
    });
    bingo_bench::report::write_json_report("experiments_ablation.json", &json);
}
