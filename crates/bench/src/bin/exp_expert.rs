//! E4-E5: the expert Web search experiment (Section 5.3; Figures 4-5).
//!
//! ```text
//! cargo run --release -p bingo-bench --bin exp_expert
//! ```
//!
//! Reproduces the ARIES case study: the Figure-4 training seeds, the
//! 10-minute focused crawl, the Figure-5 top-10 for "source code
//! release", and the keyword-baseline contrast.

use bingo_bench::expert::{run, ExpertExperimentConfig};
use bingo_bench::report::count;

fn main() {
    let cfg = ExpertExperimentConfig::default();
    eprintln!(
        "expert-search experiment: seed {}, crawl budget {}s virtual",
        cfg.seed,
        cfg.crawl_ms / 1000
    );
    let started = std::time::Instant::now();
    let out = run(&cfg);
    eprintln!("completed in {:.1}s wall", started.elapsed().as_secs_f64());

    println!("# Expert Web search: ARIES open-source implementations (paper §5.3)\n");

    println!("## Figure 4 analog: initial training documents");
    for (i, url) in out.seeds.iter().enumerate() {
        println!("{} {url}", i + 1);
    }
    println!();

    println!("## Focused crawl (10 virtual minutes)");
    println!("visited URLs:          {}", count(out.stats.visited_urls));
    println!("stored pages:          {}", count(out.stats.stored_pages));
    println!("positively classified: {}", count(out.positive));
    println!("max crawl depth:       {}", out.stats.max_depth);
    println!();

    println!("## Figure 5 analog: top 10 results for query \"source code release\"");
    for r in &out.focused_top10 {
        println!("{:.3}  {}", r.score, r.url);
    }
    println!(
        "\nopen-source ARIES system pages (Shore/MiniBase/Exodus analogs) in top 10: {}",
        out.needles_in_focused_top10
    );
    println!();

    println!("## Baseline: direct keyword search over the whole corpus");
    println!("query: \"public domain open source aries recovery\"");
    for r in &out.baseline_top10 {
        println!("{:.3}  {}", r.score, r.url);
    }
    println!(
        "\nneedle pages in baseline top 10: {} (the paper: \"lots of results about binaries and libraries\")",
        out.needles_in_baseline_top10
    );

    let json = serde_json::json!({
        "experiment": "expert",
        "seeds": out.seeds,
        "visited_urls": out.stats.visited_urls,
        "positive": out.positive,
        "focused_top10": out.focused_top10.iter().map(|r| (r.score, r.url.clone())).collect::<Vec<_>>(),
        "baseline_top10": out.baseline_top10.iter().map(|r| (r.score, r.url.clone())).collect::<Vec<_>>(),
        "needles_in_focused_top10": out.needles_in_focused_top10,
        "needles_in_baseline_top10": out.needles_in_baseline_top10,
    });
    bingo_bench::report::write_json_report("experiments_expert.json", &json);
}
