//! E6-E7: meta-classification precision (Section 3.5) and the
//! feature-selection example (Section 2.3).
//!
//! ```text
//! cargo run --release -p bingo-bench --bin exp_meta [-- --features]
//! ```

use bingo_bench::meta_exp::{run_feature_example, run_meta};
use bingo_bench::report::table;

fn main() {
    let features_only = std::env::args().any(|a| a == "--features");

    if !features_only {
        eprintln!("meta-classification experiment...");
        let out = run_meta(2003);
        println!("# Meta classification (paper §3.5)\n");
        println!(
            "held-out evaluation set: {} positives, {} negatives \
             (incl. related-topic hard negatives)\n",
            out.test_pos, out.test_neg
        );
        let rows: Vec<Vec<String>> = out
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.method.clone(),
                    format!("{:.1}%", r.precision * 100.0),
                    format!("{:.1}%", r.recall * 100.0),
                    r.accepted.to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            table(
                "Classification precision by decision method",
                &["Method", "Precision", "Recall", "Accepted"],
                &rows,
            )
        );
        println!(
            "\npaper's observation: \"unanimous and weighted average decisions improved \
             precision from values around 80 percent to values above 90 percent\"\n"
        );

        let json = serde_json::json!({
            "experiment": "meta",
            "test_pos": out.test_pos,
            "test_neg": out.test_neg,
            "rows": out.rows.iter().map(|r| serde_json::json!({
                "method": r.method, "precision": r.precision,
                "recall": r.recall, "accepted": r.accepted,
            })).collect::<Vec<_>>(),
        });
        bingo_bench::report::write_json_report("experiments_meta.json", &json);
    }

    eprintln!("feature-selection example...");
    let stems = run_feature_example(2003, 12);
    println!("# MI feature selection for the \"Data Mining\" class (paper §2.3)\n");
    println!(
        "paper's example stems: mine, knowledg, olap, frame, pattern, genet, \
         discov, cluster, dataset\n"
    );
    println!("top {} stems by Mutual Information here:", stems.len());
    for (i, s) in stems.iter().enumerate() {
        println!("{:2}. {s}", i + 1);
    }
}
