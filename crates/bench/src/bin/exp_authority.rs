//! Authority-blend ablation: baseline vs authority-blended frontier
//! ordering on the portal (§5.2) and expert (§5.3) worlds.
//!
//! ```text
//! cargo run --release -p bingo-bench --bin exp_authority
//! ```

use bingo_bench::authority_exp::{run_expert_recall, run_portal, AuthorityExperimentConfig};
use bingo_bench::report::table;

fn main() {
    let cfg = AuthorityExperimentConfig::default();
    eprintln!(
        "authority blend: seed {}, {} authors, budget {}s virtual per run, α={} β={}",
        cfg.seed,
        cfg.authors,
        cfg.total_ms / 1000,
        cfg.alpha,
        cfg.beta
    );

    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    for blended in [false, true] {
        eprintln!("running portal crawl: blended={blended}");
        let r = run_portal(&cfg, blended);
        rows.push(vec![
            r.label.clone(),
            r.visited.to_string(),
            r.stored.to_string(),
            r.true_positives.to_string(),
            format!("{:.3}", r.harvest_ratio),
            format!("{:.3}", r.on_topic_yield),
            format!("{:.1}%", r.precision * 100.0),
        ]);
        outcomes.push(r);
    }
    println!("# Authority-blended frontier ordering\n");
    print!(
        "{}",
        table(
            "Portal crawl (§5.2 world): baseline vs blend",
            &[
                "Variant",
                "Visited",
                "Stored",
                "True pos",
                "Harvest ratio",
                "On-topic yield",
                "Precision",
            ],
            &rows,
        )
    );
    let blended = &outcomes[1];
    println!(
        "\nhost graph: {} hosts, {} edges, {} authority recomputes",
        blended.graph_hosts, blended.graph_edges, blended.recomputes
    );
    if !blended.top_hosts.is_empty() {
        println!("top hosts by authority:");
        for (host, score) in &blended.top_hosts {
            println!("  {score:.4}  {host}");
        }
    }

    // Expert recall: needles in the focused top-10, per variant.
    let mut recall_rows = Vec::new();
    for blended in [false, true] {
        eprintln!("running expert crawl: blended={blended}");
        let needles = run_expert_recall(2003, &cfg, blended);
        recall_rows.push(vec![
            if blended { "blended" } else { "baseline" }.to_string(),
            format!("{needles}/5"),
        ]);
    }
    println!();
    print!(
        "{}",
        table(
            "Expert search (§5.3 world): needles in focused top-10",
            &["Variant", "Needle recall"],
            &recall_rows,
        )
    );
    println!(
        "\nreading guide: β pulls the frontier toward hosts the harvest \
         itself links to — inter-host endorsement — on top of the SVM's \
         per-page confidence. The blend is off by default; baselines \
         replay bit-identically without it."
    );

    let json = serde_json::json!({
        "experiment": "authority",
        "alpha": cfg.alpha,
        "beta": cfg.beta,
        "rows": rows,
        "recall": recall_rows,
        "graph_hosts": blended.graph_hosts,
        "graph_edges": blended.graph_edges,
        "recomputes": blended.recomputes,
    });
    bingo_bench::report::write_json_report("experiments_authority.json", &json);
}
