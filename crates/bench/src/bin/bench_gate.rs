//! The CI bench-regression gate.
//!
//! ```text
//! cargo run --release -p bingo-bench --bin bench_gate [-- FLAGS]
//!
//!   --smoke          run the reduced smoke sizes (fast CI runs)
//!   --update         re-record the BENCH_<scenario>.json baselines
//!                    (runs both smoke and full sizes)
//!   --only LIST      run a subset of scenarios: a comma-separated list
//!                    of (crawl | classify | pipeline | recovery |
//!                    serve | scale | scale10m | dist), e.g. `--only
//!                    crawl,serve`; repeatable. Unknown or empty lists
//!                    are usage errors listing the valid names.
//!   --out DIR        artifact directory (default target/bench_gate)
//! ```
//!
//! Each scenario runs twice; the deterministic telemetry (metrics
//! snapshot + event log) of the two runs must match byte for byte.
//! Reports are then compared against the checked-in baselines with
//! per-metric tolerances. Exit code 0 = pass, 1 = regression or
//! determinism failure, 2 = usage/setup error.

use bingo_bench::gate::{
    baseline_file, calibrate_cpu_ms, check_determinism, default_out_dir, diff_reports,
    load_baseline, markdown_diff_table, run_classify_scenario, run_crawl_scenario,
    run_dist_scenario, run_pipeline_scenario, run_recovery_scenario, run_scale10m_scenario,
    run_scale_scenario, run_serve_scenario, write_run_artifacts, GateMode, MetricDiff, MetricSpec,
    ScenarioRun, CLASSIFY_SPECS, CRAWL_SPECS, DIST_SPECS, PIPELINE_SPECS, RECOVERY_SPECS,
    SCALE10M_SPECS, SCALE_SPECS, SERVE_SPECS,
};
use serde_json::{json, Value};
use std::path::{Path, PathBuf};

struct Scenario {
    name: &'static str,
    specs: &'static [MetricSpec],
    run: fn(GateMode) -> ScenarioRun,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "crawl",
        specs: CRAWL_SPECS,
        run: run_crawl_scenario,
    },
    Scenario {
        name: "classify",
        specs: CLASSIFY_SPECS,
        run: run_classify_scenario,
    },
    Scenario {
        name: "pipeline",
        specs: PIPELINE_SPECS,
        run: run_pipeline_scenario,
    },
    Scenario {
        name: "recovery",
        specs: RECOVERY_SPECS,
        run: run_recovery_scenario,
    },
    Scenario {
        name: "serve",
        specs: SERVE_SPECS,
        run: run_serve_scenario,
    },
    Scenario {
        name: "scale",
        specs: SCALE_SPECS,
        run: run_scale_scenario,
    },
    Scenario {
        name: "scale10m",
        specs: SCALE10M_SPECS,
        run: run_scale10m_scenario,
    },
    Scenario {
        name: "dist",
        specs: DIST_SPECS,
        run: run_dist_scenario,
    },
];

fn main() {
    let mut smoke = false;
    let mut update = false;
    let mut only: Vec<String> = Vec::new();
    let mut out_dir = default_out_dir();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--update" => update = true,
            "--only" => match args.next() {
                Some(list) => {
                    let before = only.len();
                    for name in list.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                        if SCENARIOS.iter().any(|s| s.name == name) {
                            only.push(name.to_string());
                        } else {
                            eprintln!(
                                "--only: unknown scenario {name:?} (expected a comma-separated \
                                 list of: {})",
                                SCENARIOS
                                    .iter()
                                    .map(|s| s.name)
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            );
                            std::process::exit(2);
                        }
                    }
                    // An --only whose list trims away entirely ("", " , ")
                    // must not fall through to "no filter = run everything".
                    if only.len() == before {
                        eprintln!(
                            "--only: no scenario names in {list:?} (expected a comma-separated \
                             list of: {})",
                            SCENARIOS
                                .iter()
                                .map(|s| s.name)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        std::process::exit(2);
                    }
                }
                None => {
                    eprintln!(
                        "--only requires a scenario name (one of: {})",
                        SCENARIOS
                            .iter()
                            .map(|s| s.name)
                            .collect::<Vec<_>>()
                            .join(", ")
                    );
                    std::process::exit(2);
                }
            },
            "--out" => match args.next() {
                Some(dir) => out_dir = PathBuf::from(dir),
                None => {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench_gate [--smoke] [--update] [--only SCENARIO] [--out DIR]");
                std::process::exit(2);
            }
        }
    }

    let calib_ms = calibrate_cpu_ms();
    eprintln!("cpu calibration: {calib_ms:.1} ms");
    let modes: &[GateMode] = if update {
        &[GateMode::Smoke, GateMode::Full]
    } else if smoke {
        &[GateMode::Smoke]
    } else {
        &[GateMode::Full]
    };

    let selected: Vec<&Scenario> = SCENARIOS
        .iter()
        .filter(|s| only.is_empty() || only.iter().any(|n| n == s.name))
        .collect();

    let mut failures: Vec<String> = Vec::new();
    // Structured per-metric diffs plus the scenario/mode runs that
    // failed — for the $GITHUB_STEP_SUMMARY table and the telemetry
    // copies under out_dir/failed/.
    let mut diffs: Vec<MetricDiff> = Vec::new();
    let mut failed_runs: Vec<String> = Vec::new();
    for scenario in &selected {
        let mut sections: Vec<(GateMode, Value)> = Vec::new();
        for &mode in modes {
            eprintln!(
                "running {}.{} (twice, for determinism) ...",
                scenario.name,
                mode.key()
            );
            let started = std::time::Instant::now();
            let first = (scenario.run)(mode);
            let second = (scenario.run)(mode);
            eprintln!(
                "  {}.{}: {:.1}s wall for both runs",
                scenario.name,
                mode.key(),
                started.elapsed().as_secs_f64()
            );
            let label = format!("{}.{}", scenario.name, mode.key());
            let determinism = check_determinism(&label, &first.evidence, &second.evidence);
            if !determinism.is_empty() {
                failed_runs.push(label);
            }
            failures.extend(determinism);
            if let Err(e) = write_run_artifacts(&out_dir, scenario.name, mode, &first) {
                eprintln!(
                    "warning: could not write artifacts to {}: {e}",
                    out_dir.display()
                );
            }
            sections.push((mode, first.report));
        }

        if update {
            let mut entries = vec![("calibration_ms".to_string(), json!(calib_ms))];
            for (mode, report) in &sections {
                entries.push((mode.key().to_string(), report.clone()));
            }
            let doc = Value::Object(entries);
            let path = baseline_file(scenario.name);
            match serde_json::to_string_pretty(&doc) {
                Ok(text) => {
                    if let Err(e) = std::fs::write(&path, text + "\n") {
                        eprintln!("error: could not write baseline {path}: {e}");
                        std::process::exit(2);
                    }
                    eprintln!("baseline recorded: {path}");
                }
                Err(e) => {
                    eprintln!("error: could not serialize baseline {path}: {e}");
                    std::process::exit(2);
                }
            }
            continue;
        }

        let Some(baseline) = load_baseline(Path::new("."), scenario.name) else {
            failures.push(format!(
                "{}: baseline {} missing or unreadable (record with --update)",
                scenario.name,
                baseline_file(scenario.name)
            ));
            continue;
        };
        let base_calib = baseline
            .get("calibration_ms")
            .and_then(Value::as_f64)
            .unwrap_or(calib_ms);
        // < 1 means this machine is slower than the baseline recorder.
        let calib_scale = (base_calib / calib_ms).clamp(0.05, 20.0);
        for (mode, report) in &sections {
            let label = format!("{}.{}", scenario.name, mode.key());
            let Some(section) = baseline.get(mode.key()) else {
                failures.push(format!(
                    "{label}: baseline has no \"{}\" section (re-record with --update)",
                    mode.key()
                ));
                failed_runs.push(label);
                continue;
            };
            let run_diffs = diff_reports(&label, section, report, scenario.specs, calib_scale);
            if run_diffs.iter().any(|d| !d.ok) {
                failed_runs.push(label);
            }
            failures.extend(run_diffs.iter().filter_map(MetricDiff::failure_line));
            diffs.extend(run_diffs);
        }
    }

    if update {
        eprintln!("baselines updated; artifacts in {}", out_dir.display());
        if !failures.is_empty() {
            eprintln!("\nDETERMINISM FAILURES (baselines NOT trustworthy):");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
        return;
    }

    if failures.is_empty() {
        eprintln!("bench gate: PASS ({} scenario(s))", selected.len());
    } else {
        eprintln!("bench gate: FAIL");
        for f in &failures {
            eprintln!("  - {f}");
        }
        failed_runs.sort();
        failed_runs.dedup();
        publish_step_summary(&failures, &diffs, &failed_runs);
        stage_failed_telemetry(&out_dir, &failed_runs);
        std::process::exit(1);
    }
}

/// On gate failure under GitHub Actions, append the per-metric
/// baseline-vs-actual diff table (plus the raw failure lines) to the
/// job's step summary. A no-op when `$GITHUB_STEP_SUMMARY` is unset
/// (local runs).
fn publish_step_summary(failures: &[String], diffs: &[MetricDiff], failed_runs: &[String]) {
    let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    let mut body = String::from("## Bench gate: FAIL\n\n");
    for f in failures {
        body.push_str(&format!("- `{f}`\n"));
    }
    // Show the full metric table only for runs that failed; passing
    // scenarios would drown the signal.
    let shown: Vec<MetricDiff> = diffs
        .iter()
        .filter(|d| failed_runs.iter().any(|r| r == &d.scenario))
        .cloned()
        .collect();
    if !shown.is_empty() {
        body.push_str("\n### Baseline vs actual\n\n");
        body.push_str(&markdown_diff_table(&shown));
    }
    body.push_str(
        "\nTelemetry of the failing scenario(s) is uploaded as the `bench-gate-failed` artifact.\n",
    );
    use std::io::Write;
    match std::fs::OpenOptions::new().append(true).open(&path) {
        Ok(mut f) => {
            if let Err(e) = f.write_all(body.as_bytes()) {
                eprintln!("warning: could not write step summary {path}: {e}");
            }
        }
        Err(e) => eprintln!("warning: could not open step summary {path}: {e}"),
    }
}

/// Copy the offending scenario runs' telemetry (report, metrics
/// snapshot, event log) into `out_dir/failed/` so CI can upload just
/// the failures as a dedicated artifact.
fn stage_failed_telemetry(out_dir: &Path, failed_runs: &[String]) {
    if failed_runs.is_empty() {
        return;
    }
    let failed_dir = out_dir.join("failed");
    if let Err(e) = std::fs::create_dir_all(&failed_dir) {
        eprintln!("warning: could not create {}: {e}", failed_dir.display());
        return;
    }
    for run in failed_runs {
        for suffix in ["report.json", "metrics.json", "events.jsonl", "spill.json"] {
            let name = format!("{run}.{suffix}");
            let src = out_dir.join(&name);
            if src.is_file() {
                if let Err(e) = std::fs::copy(&src, failed_dir.join(&name)) {
                    eprintln!("warning: could not copy {}: {e}", src.display());
                }
            }
        }
    }
    eprintln!(
        "failing-scenario telemetry staged in {}",
        failed_dir.display()
    );
}
