//! Plain-text table rendering for experiment reports, mirroring the
//! layout of the paper's tables, plus the shared JSON report writer used
//! by every experiment binary.

/// Write a pretty-printed JSON report to `path` and announce it on
/// stderr. Returns whether the write succeeded (experiment binaries
/// treat an unwritable report as non-fatal: the console output already
/// carries the numbers).
pub fn write_json_report(path: &str, value: &serde_json::Value) -> bool {
    let written = serde_json::to_string_pretty(value)
        .ok()
        .and_then(|text| std::fs::write(path, text).ok())
        .is_some();
    if written {
        eprintln!("json report written to {path}");
    } else {
        eprintln!("warning: could not write json report to {path}");
    }
    written
}

/// Render a table with a header row and aligned columns.
pub fn table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  | ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 5 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Format a large count with thousands separators.
pub fn count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_separators() {
        assert_eq!(count(0), "0");
        assert_eq!(count(999), "999");
        assert_eq!(count(1000), "1,000");
        assert_eq!(count(3001982), "3,001,982");
    }

    #[test]
    fn table_renders_aligned() {
        let t = table(
            "Demo",
            &["Property", "Value"],
            &[
                vec!["Visited URLs".into(), "100,209".into()],
                vec!["Stored".into(), "38,176".into()],
            ],
        );
        assert!(t.contains("## Demo"));
        assert!(t.contains("Visited URLs"));
        assert!(t.lines().count() >= 5);
    }
}
