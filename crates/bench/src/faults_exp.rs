//! Fault-scenario experiment: crawl robustness under deterministic
//! chaos (ISSUE 2 tentpole; extends the paper's Section 4.2 failure
//! handling with measurements the paper never reports).
//!
//! Three crawls over the same scenario seed:
//!
//! 1. **clean** — the fault-free world, as an upper bound,
//! 2. **chaos** — the same world with the chaos fault plan (5xx
//!    bursts, outages, slow drips, truncated/garbled bodies, DNS
//!    flaps, redirect loops), uninterrupted,
//! 3. **chaos, killed + resumed** — the same chaos crawl killed at 50%
//!    of the uninterrupted document budget and resumed from its last
//!    automatic checkpoint.
//!
//! The report compares harvest ratios (stored / visited) and surfaces
//! the breaker/retry counters, demonstrating the acceptance criterion:
//! the resumed crawl converges to the uninterrupted harvest ratio.

use bingo_crawler::{CrawlConfig, CrawlStats, Crawler, Judgment, StepOutcome};
use bingo_store::DocumentStore;
use bingo_textproc::Vocabulary;
use bingo_webworld::gen::WorldConfig;
use serde::Serialize;
use std::sync::Arc;

/// Tuning for the fault-scenario experiment.
#[derive(Debug, Clone)]
pub struct FaultsConfig {
    /// Scenario seed (world layout and fault plan).
    pub seed: u64,
    /// Automatic checkpoint interval (stored documents).
    pub checkpoint_every_docs: u64,
    /// Directory the kill/resume session is written into.
    pub session_dir: std::path::PathBuf,
}

impl Default for FaultsConfig {
    fn default() -> Self {
        FaultsConfig {
            seed: 91,
            checkpoint_every_docs: 10,
            session_dir: std::env::temp_dir().join("bingo-faults-exp"),
        }
    }
}

/// One crawl's summary in the report.
#[derive(Debug, Clone, Serialize)]
pub struct CrawlSummary {
    /// Which crawl this is ("clean", "chaos", "chaos-resumed").
    pub label: String,
    /// Harvest ratio: stored / visited URLs.
    pub harvest_ratio: f64,
    /// Full crawl counters.
    pub stats: CrawlStats,
}

/// The whole experiment's result.
#[derive(Debug, Clone, Serialize)]
pub struct FaultsOutcome {
    /// Scenario seed.
    pub seed: u64,
    /// Faulty hosts in the chaos plan.
    pub faulty_hosts: usize,
    /// The three crawls.
    pub crawls: Vec<CrawlSummary>,
    /// Stored documents at which the chaos crawl was killed.
    pub killed_at_docs: u64,
    /// |resumed ratio - uninterrupted ratio| / uninterrupted ratio.
    pub resume_ratio_drift: f64,
    /// Fraction of the uninterrupted harvest also present after resume.
    pub resume_harvest_overlap: f64,
}

fn accept_all(
) -> impl FnMut(&bingo_textproc::AnalyzedDocument, &bingo_crawler::PageContext) -> Judgment {
    |_doc, _ctx| Judgment {
        topic: Some(0),
        confidence: 1.0,
    }
}

fn crawl_to_end(crawler: &mut Crawler) -> (CrawlSummary, Vec<u64>) {
    let mut judge = accept_all();
    let mut vocab = Vocabulary::new();
    crawler.run_until(u64::MAX, &mut judge, &mut vocab);
    let stats = crawler.stats().clone();
    let mut ids: Vec<u64> = crawler
        .store()
        .all_documents()
        .iter()
        .map(|d| d.id)
        .collect();
    ids.sort_unstable();
    (
        CrawlSummary {
            label: String::new(),
            harvest_ratio: stats.stored_pages as f64 / stats.visited_urls.max(1) as f64,
            stats,
        },
        ids,
    )
}

/// Run the experiment.
pub fn run(cfg: &FaultsConfig) -> FaultsOutcome {
    let base = CrawlConfig {
        max_depth: 0,
        ..CrawlConfig::default()
    };
    let seed_crawler = |world: &Arc<bingo_webworld::World>, config: CrawlConfig| {
        let mut c = Crawler::new(world.clone(), config, DocumentStore::new());
        c.add_seed(&world.url_of(1), Some(0));
        c
    };

    // 1. Fault-free upper bound.
    let clean_world = Arc::new(WorldConfig::small_test(cfg.seed).build());
    let mut clean = seed_crawler(&clean_world, base.clone());
    let (mut clean_summary, _) = crawl_to_end(&mut clean);
    clean_summary.label = "clean".into();

    // 2. Chaos, uninterrupted.
    let chaos_world = Arc::new(WorldConfig::chaos(cfg.seed).build());
    let faulty_hosts = chaos_world.faults().faulty_hosts();
    let mut chaos = seed_crawler(&chaos_world, base.clone());
    let (mut chaos_summary, chaos_ids) = crawl_to_end(&mut chaos);
    chaos_summary.label = "chaos".into();
    let budget = chaos_summary.stats.stored_pages;

    // 3. Chaos, killed at 50% of the budget and resumed from the last
    // automatic checkpoint.
    std::fs::remove_dir_all(&cfg.session_dir).ok();
    let ckpt_config = CrawlConfig {
        checkpoint_every_docs: cfg.checkpoint_every_docs,
        checkpoint_dir: Some(cfg.session_dir.clone()),
        ..base.clone()
    };
    let killed_at_docs = {
        let mut doomed = seed_crawler(&chaos_world, ckpt_config);
        let mut judge = accept_all();
        let mut vocab = Vocabulary::new();
        while doomed.stats().stored_pages < budget / 2 {
            if doomed.step(&mut judge, &mut vocab) == StepOutcome::FrontierEmpty {
                break;
            }
        }
        doomed.stats().stored_pages
        // Dropped here: everything after the last checkpoint is lost.
    };
    let mut resumed = Crawler::resume_session(chaos_world.clone(), base, &cfg.session_dir)
        .expect("resume from checkpoint");
    let (mut resumed_summary, resumed_ids) = crawl_to_end(&mut resumed);
    resumed_summary.label = "chaos-resumed".into();
    std::fs::remove_dir_all(&cfg.session_dir).ok();

    let drift = (resumed_summary.harvest_ratio - chaos_summary.harvest_ratio).abs()
        / chaos_summary.harvest_ratio.max(f64::EPSILON);
    let overlap = resumed_ids
        .iter()
        .filter(|id| chaos_ids.binary_search(id).is_ok())
        .count() as f64
        / chaos_ids.len().max(1) as f64;

    FaultsOutcome {
        seed: cfg.seed,
        faulty_hosts,
        crawls: vec![clean_summary, chaos_summary, resumed_summary],
        killed_at_docs,
        resume_ratio_drift: drift,
        resume_harvest_overlap: overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_meets_acceptance_criteria() {
        let cfg = FaultsConfig {
            session_dir: std::env::temp_dir().join("bingo-faults-exp-test"),
            ..FaultsConfig::default()
        };
        let out = run(&cfg);
        assert_eq!(out.crawls.len(), 3);
        assert!(out.faulty_hosts > 0);
        let chaos = &out.crawls[1];
        assert!(chaos.stats.retries > 0);
        assert!(chaos.stats.breaker_opened > 0);
        assert!(
            out.resume_ratio_drift <= 0.02,
            "drift {:.4} over 2%",
            out.resume_ratio_drift
        );
        assert!(out.resume_harvest_overlap >= 0.98);
    }
}
